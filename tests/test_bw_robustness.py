"""Additional robustness tests for the Byzantine-Witness algorithm.

These go beyond the canonical behaviours of ``test_bw_algorithm.py``:
mid-execution crashes, asymmetric silence, message duplication, multiple
epsilon regimes, FIFO versus non-FIFO links, and determinism of the whole
stack for a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.adversary.adversary import FaultPlan
from repro.adversary.behaviors import (
    CrashAfterBehavior,
    HonestBehavior,
    ReplayBehavior,
    SelectiveSilenceBehavior,
)
from repro.algorithms.base import ConsensusConfig
from repro.algorithms.topology import TopologyKnowledge
from repro.graphs.generators import complete_digraph
from repro.network.delays import UniformDelay
from repro.runner.experiment import run_bw_experiment


GRAPH = complete_digraph(4)
TOPOLOGY = TopologyKnowledge(GRAPH, 1, "redundant")
INPUTS = {0: 0.0, 1: 1.0, 2: 0.35, 3: 0.65}
CONFIG = ConsensusConfig(f=1, epsilon=0.25, input_low=0.0, input_high=1.0)


def run_with(behavior_factory, faulty=3, seed=1, config=CONFIG, delay=None):
    plan = FaultPlan(frozenset({faulty}), behavior_factory)
    return run_bw_experiment(
        GRAPH, INPUTS, config, plan, seed=seed, topology=TOPOLOGY,
        delay_model=delay,
    )


class TestUnusualBehaviours:
    def test_crash_after_some_sends(self):
        outcome = run_with(lambda node: CrashAfterBehavior(honest_sends=5))
        assert outcome.correct

    def test_tampered_complete_announcements(self):
        # The adversary attacks the witness machinery itself: it forges the
        # value maps inside its COMPLETE announcements.  The Completeness
        # condition prevents honest nodes from acting on announcements whose
        # values cannot be confirmed through uncoverable path sets, so
        # Definition 1 still holds.
        from repro.adversary.behaviors import CompleteTamperBehavior

        outcome = run_with(lambda node: CompleteTamperBehavior(-500.0))
        assert outcome.correct

    def test_selective_silence_towards_one_victim(self):
        outcome = run_with(lambda node: SelectiveSilenceBehavior(silent_towards=[0]))
        assert outcome.correct

    def test_replaying_adversary_does_not_break_deduplication(self):
        outcome = run_with(lambda node: ReplayBehavior(copies=3))
        assert outcome.correct

    def test_faulty_node_behaving_honestly(self):
        outcome = run_with(lambda node: HonestBehavior())
        assert outcome.correct
        # An honest "fault" keeps every node inside the global input range.
        assert all(0.0 <= value <= 1.0 for value in outcome.outputs.values())


class TestEpsilonRegimes:
    @pytest.mark.parametrize("epsilon,expected_rounds", [(0.6, 1), (0.3, 2), (0.06, 5)])
    def test_round_count_scales_with_epsilon(self, epsilon, expected_rounds):
        config = ConsensusConfig(f=1, epsilon=epsilon, input_low=0.0, input_high=1.0)
        outcome = run_with(lambda node: CrashAfterBehavior(3), config=config)
        assert outcome.rounds == expected_rounds == config.rounds_needed()
        assert outcome.correct

    def test_tiny_epsilon_still_converges(self):
        config = ConsensusConfig(f=1, epsilon=0.01, input_low=0.0, input_high=1.0)
        outcome = run_with(lambda node: SelectiveSilenceBehavior([1]), config=config)
        assert outcome.correct
        assert outcome.output_range < 0.01


class TestDeterminismAndNetworkVariants:
    def test_fixed_seed_reproduces_outputs_exactly(self):
        first = run_with(lambda node: CrashAfterBehavior(2), seed=123)
        second = run_with(lambda node: CrashAfterBehavior(2), seed=123)
        assert first.outputs == second.outputs
        assert first.messages_delivered == second.messages_delivered

    def test_different_seeds_still_correct(self):
        for seed in (5, 6, 7):
            assert run_with(lambda node: CrashAfterBehavior(2), seed=seed).correct

    def test_fifo_links_do_not_change_correctness(self):
        from repro.adversary.behaviors import EquivocateBehavior
        from repro.network.simulator import Simulator
        from repro.algorithms.bw import create_bw_processes

        processes = create_bw_processes(GRAPH, INPUTS, CONFIG, topology=TOPOLOGY)
        plan = FaultPlan(frozenset({3}), lambda node: EquivocateBehavior({0: -3.0, 1: 3.0}))
        wrapped = plan.apply(processes)
        simulator = Simulator(GRAPH, UniformDelay(0.5, 2.0), seed=2, fifo_links=True)
        simulator.add_processes(wrapped.values())
        simulator.run(max_events=2_000_000)
        outputs = [processes[node].output for node in (0, 1, 2)]
        assert all(value is not None for value in outputs)
        assert max(outputs) - min(outputs) < CONFIG.epsilon

    def test_extreme_delay_spread(self):
        outcome = run_with(
            lambda node: CrashAfterBehavior(4),
            delay=UniformDelay(0.01, 50.0),
            seed=9,
        )
        assert outcome.correct
