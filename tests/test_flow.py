"""Unit tests for vertex-disjoint path / connectivity computations."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.flow import (
    find_vertex_disjoint_paths,
    max_disjoint_paths_from_set,
    max_vertex_disjoint_paths,
    vertex_connectivity,
    vertex_connectivity_between,
)
from repro.graphs.generators import (
    bidirected_cycle,
    bidirected_wheel,
    complete_digraph,
    directed_cycle,
    directed_path,
)


class TestPairwiseDisjointPaths:
    def test_clique_has_n_minus_one_disjoint_paths(self):
        clique = complete_digraph(5)
        assert max_vertex_disjoint_paths(clique, 0, 4) == 4

    def test_directed_cycle_has_single_path(self):
        cycle = directed_cycle(5)
        assert max_vertex_disjoint_paths(cycle, 0, 3) == 1

    def test_no_path_gives_zero(self):
        graph = DiGraph(edges=[(0, 1)])
        graph.add_node(2)
        assert max_vertex_disjoint_paths(graph, 0, 2) == 0
        assert max_vertex_disjoint_paths(graph, 1, 0) == 0

    def test_same_node_raises(self):
        graph = complete_digraph(3)
        with pytest.raises(GraphError):
            max_vertex_disjoint_paths(graph, 1, 1)

    def test_two_internally_disjoint_routes(self):
        graph = DiGraph(edges=[(0, 1), (1, 3), (0, 2), (2, 3)])
        assert max_vertex_disjoint_paths(graph, 0, 3) == 2

    def test_shared_internal_node_limits_count(self):
        graph = DiGraph(edges=[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        # Every path from 0 to 4 goes through node 3.
        assert max_vertex_disjoint_paths(graph, 0, 4) == 1

    def test_restrict_to_subset(self):
        graph = DiGraph(edges=[(0, 1), (1, 3), (0, 2), (2, 3)])
        assert max_vertex_disjoint_paths(graph, 0, 3, restrict_to={0, 1, 3}) == 1
        assert max_vertex_disjoint_paths(graph, 0, 3, restrict_to={0, 3}) == 0

    def test_figure_1b_has_exactly_four_disjoint_paths(self, fig1b):
        # The paper's point: v1 and w1 are joined by only 2f = 4 disjoint paths,
        # so all-pair reliable message transmission is impossible, yet consensus
        # is achievable (3-reach holds, see test_figures.py).
        assert max_vertex_disjoint_paths(fig1b, "v1", "w1") == 4

    def test_vertex_connectivity_between_alias(self):
        clique = complete_digraph(4)
        assert vertex_connectivity_between(clique, 0, 1) == max_vertex_disjoint_paths(clique, 0, 1)


class TestSetToNodeDisjointPaths:
    def test_disjoint_paths_from_set(self):
        graph = DiGraph(edges=[(0, 2), (1, 2)])
        assert max_disjoint_paths_from_set(graph, {0, 1}, 2) == 2

    def test_target_in_source_set_is_trivially_satisfied(self):
        graph = complete_digraph(3)
        assert max_disjoint_paths_from_set(graph, {0, 1}, 1) == 3

    def test_sources_share_relay(self):
        graph = DiGraph(edges=[(0, 2), (1, 2), (2, 3)])
        assert max_disjoint_paths_from_set(graph, {0, 1}, 3) == 1

    def test_empty_source_set(self):
        graph = complete_digraph(3)
        assert max_disjoint_paths_from_set(graph, set(), 0) == 0

    def test_restricted_subgraph(self):
        graph = complete_digraph(4)
        assert max_disjoint_paths_from_set(graph, {1, 2}, 0, restrict_to={0, 1, 2}) == 2


class TestGlobalConnectivity:
    def test_clique_connectivity(self):
        assert vertex_connectivity(complete_digraph(5)) == 4

    def test_cycle_connectivity(self):
        assert vertex_connectivity(bidirected_cycle(6)) == 2

    def test_wheel_connectivity(self):
        assert vertex_connectivity(bidirected_wheel(6)) == 3

    def test_path_connectivity(self):
        assert vertex_connectivity(directed_path(4)) == 0

    def test_tiny_graphs(self):
        assert vertex_connectivity(DiGraph(nodes=[1])) == 0
        assert vertex_connectivity(DiGraph(nodes=[1, 2])) == 0

    def test_matches_networkx_on_random_graphs(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.generators import random_bidirected_graph

        for seed in range(5):
            graph = random_bidirected_graph(7, 0.5, seed=seed)
            nx_graph = networkx.Graph()
            nx_graph.add_nodes_from(graph.nodes)
            nx_graph.add_edges_from({tuple(sorted(edge)) for edge in graph.to_undirected_edges()})
            expected = networkx.node_connectivity(nx_graph)
            assert vertex_connectivity(graph) == expected


class TestGreedyPathExtraction:
    def test_extract_two_paths(self):
        graph = DiGraph(edges=[(0, 1), (1, 3), (0, 2), (2, 3)])
        paths = find_vertex_disjoint_paths(graph, 0, 3, 2)
        assert paths is not None and len(paths) == 2
        internal = [set(path[1:-1]) for path in paths]
        assert not (internal[0] & internal[1])

    def test_extraction_fails_when_not_enough_paths(self):
        cycle = directed_cycle(4)
        assert find_vertex_disjoint_paths(cycle, 0, 2, 2) is None
