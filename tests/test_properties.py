"""Unit tests for structural graph properties (Table 1 ingredients)."""

from __future__ import annotations

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    bidirected_cycle,
    bidirected_wheel,
    complete_digraph,
    directed_path,
    figure_1a,
    star_out,
)
from repro.graphs.properties import (
    critical_edges_for_connectivity,
    degree_summary,
    density,
    directed_vertex_connectivity,
    is_complete,
    min_in_degree,
    min_out_degree,
    undirected_feasibility,
    undirected_vertex_connectivity,
)


class TestBasicProperties:
    def test_is_complete(self):
        assert is_complete(complete_digraph(4))
        assert not is_complete(bidirected_cycle(4))

    def test_min_degrees(self):
        star = star_out(4)
        assert min_in_degree(star) == 0
        assert min_out_degree(star) == 0
        assert min_in_degree(complete_digraph(4)) == 3
        assert min_in_degree(DiGraph()) == 0

    def test_density(self):
        assert density(complete_digraph(5)) == 1.0
        assert density(DiGraph(nodes=[1])) == 0.0
        assert 0 < density(bidirected_cycle(5)) < 1

    def test_degree_summary(self):
        summary = degree_summary(bidirected_wheel(6))
        assert summary["max_out"] == 5  # the hub
        assert summary["min_out"] == 3
        assert degree_summary(DiGraph())["avg_out"] == 0.0


class TestConnectivity:
    def test_undirected_connectivity_of_wheel(self):
        assert undirected_vertex_connectivity(bidirected_wheel(6)) == 3

    def test_undirected_connectivity_symmetrizes(self):
        # A directed path has κ = 0 as a digraph but 1 when symmetrized.
        path = directed_path(4)
        assert directed_vertex_connectivity(path) == 0
        assert undirected_vertex_connectivity(path) == 1

    def test_figure_1a_connectivity(self):
        # Figure 1(a): κ(G) = 3 > 2f for f = 1.
        assert undirected_vertex_connectivity(figure_1a()) == 3

    def test_single_node(self):
        assert undirected_vertex_connectivity(DiGraph(nodes=[1])) == 0


class TestUndirectedFeasibility:
    def test_clique_feasibility(self):
        verdict = undirected_feasibility(complete_digraph(7), f=2)
        assert verdict.crash_synchronous
        assert verdict.crash_asynchronous
        assert verdict.byzantine_synchronous
        assert verdict.byzantine_asynchronous

    def test_cycle_only_tolerates_crash(self):
        verdict = undirected_feasibility(bidirected_cycle(6), f=1)
        assert verdict.kappa == 2
        assert verdict.crash_synchronous
        assert verdict.crash_asynchronous
        assert not verdict.byzantine_synchronous

    def test_byzantine_needs_three_f_plus_one_nodes(self):
        verdict = undirected_feasibility(complete_digraph(3), f=1)
        assert not verdict.byzantine_synchronous
        assert verdict.crash_synchronous

    def test_figure_1a_feasible_for_one_byzantine(self):
        verdict = undirected_feasibility(figure_1a(), f=1)
        assert verdict.byzantine_synchronous
        assert verdict.byzantine_asynchronous
        verdict2 = undirected_feasibility(figure_1a(), f=2)
        assert not verdict2.byzantine_synchronous


class TestCriticalEdges:
    def test_every_figure_1a_edge_is_critical(self):
        # The paper notes that removing any edge of Figure 1(a) drops κ(G)
        # below 2f + 1 = 3 and makes Byzantine consensus impossible.
        graph = figure_1a()
        critical = critical_edges_for_connectivity(graph, threshold=3)
        assert len(critical) == 8  # every undirected edge

    def test_clique_edges_not_critical_for_low_threshold(self):
        graph = complete_digraph(5)
        assert critical_edges_for_connectivity(graph, threshold=2) == []
