"""Integration tests for the Byzantine-Witness algorithm (Algorithm 1).

These tests run the full event-driven protocol on small graphs satisfying
3-reach and check the three properties of Definition 1 under a variety of
Byzantine behaviours, delay models and fault placements, plus the per-round
geometric contraction of Lemma 15.
"""

from __future__ import annotations

import pytest

from repro.adversary.adversary import FaultPlan, no_faults
from repro.adversary.behaviors import (
    CrashBehavior,
    EquivocateBehavior,
    FixedValueBehavior,
    OffsetValueBehavior,
    RandomValueBehavior,
)
from repro.algorithms.base import ConsensusConfig
from repro.algorithms.bw import BWProcess, create_bw_processes
from repro.algorithms.topology import TopologyKnowledge
from repro.exceptions import InfeasibleTopologyError, ProtocolError
from repro.graphs.generators import clique_with_feeders, complete_digraph, directed_cycle, figure_1a
from repro.network.delays import ConstantDelay, ExponentialDelay, UniformDelay
from repro.network.simulator import Simulator
from repro.runner.metrics import geometric_bound_satisfied, per_round_ranges


def run_bw(graph, inputs, f, epsilon, faulty=(), behavior=None, seed=1,
           policy="redundant", delay=None, topology=None):
    """Minimal driver used by the tests (the runner package has a richer one)."""
    config = ConsensusConfig(
        f=f, epsilon=epsilon,
        input_low=min(inputs.values()), input_high=max(inputs.values()),
        path_policy=policy,
    )
    shared = topology or TopologyKnowledge(graph, f, policy)
    processes = create_bw_processes(graph, inputs, config, topology=shared)
    plan = FaultPlan(frozenset(faulty), lambda node: behavior()) if faulty else no_faults()
    wrapped = plan.apply(processes)
    simulator = Simulator(graph, delay or UniformDelay(0.5, 2.0), seed=seed)
    simulator.add_processes(wrapped.values())
    simulator.run(max_events=3_000_000)
    honest = {node: processes[node] for node in graph.nodes if node not in set(faulty)}
    return honest, config


def assert_definition1(honest, config, inputs, faulty=()):
    """Assert Termination + Convergence + Validity for the honest processes."""
    outputs = {node: process.output for node, process in honest.items()}
    assert all(process.decided for process in honest.values()), "termination violated"
    values = list(outputs.values())
    assert max(values) - min(values) < config.epsilon, "convergence violated"
    honest_inputs = [inputs[node] for node in honest]
    low, high = min(honest_inputs), max(honest_inputs)
    assert all(low - 1e-9 <= value <= high + 1e-9 for value in values), "validity violated"


class TestFaultFree:
    def test_clique_no_faults(self, clique4_topology):
        graph = complete_digraph(4)
        inputs = {0: 0.0, 1: 1.0, 2: 0.25, 3: 0.75}
        honest, config = run_bw(graph, inputs, f=1, epsilon=0.2, topology=clique4_topology)
        assert_definition1(honest, config, inputs)

    def test_zero_rounds_when_inputs_already_close(self):
        graph = complete_digraph(4)
        inputs = {0: 0.5, 1: 0.5, 2: 0.5, 3: 0.5}
        honest, config = run_bw(graph, inputs, f=1, epsilon=0.3)
        assert config.rounds_needed() == 0
        assert all(process.output == 0.5 for process in honest.values())

    def test_geometric_contraction(self, clique4_topology):
        graph = complete_digraph(4)
        inputs = {0: 0.0, 1: 1.0, 2: 0.5, 3: 0.9}
        honest, config = run_bw(graph, inputs, f=1, epsilon=0.05, topology=clique4_topology)
        ranges = per_round_ranges({node: process.value_history for node, process in honest.items()})
        assert len(ranges) >= 4
        assert geometric_bound_satisfied(ranges, initial_range=1.0)

    def test_value_history_length_matches_rounds(self, clique4_topology):
        graph = complete_digraph(4)
        inputs = {0: 0.0, 1: 1.0, 2: 0.4, 3: 0.6}
        honest, config = run_bw(graph, inputs, f=1, epsilon=0.2, topology=clique4_topology)
        for process in honest.values():
            assert process.rounds_completed == config.rounds_needed()
            assert len(process.value_history) == config.rounds_needed() + 1
            assert process.round_filter_result(0) is not None


class TestByzantineBehaviours:
    INPUTS = {0: 0.0, 1: 1.0, 2: 0.3, 3: 0.7}

    @pytest.mark.parametrize(
        "behavior",
        [
            CrashBehavior,
            lambda: FixedValueBehavior(1e6),
            lambda: FixedValueBehavior(-1e6),
            lambda: RandomValueBehavior(-100, 100),
            lambda: EquivocateBehavior(default_offset=10.0),
            lambda: OffsetValueBehavior(5.0),
        ],
        ids=["crash", "fixed-high", "fixed-low", "random", "equivocate", "offset"],
    )
    def test_clique_with_one_byzantine(self, behavior, clique4_topology):
        graph = complete_digraph(4)
        honest, config = run_bw(
            graph, self.INPUTS, f=1, epsilon=0.25, faulty={3}, behavior=behavior,
            topology=clique4_topology,
        )
        assert_definition1(honest, config, self.INPUTS, faulty={3})

    def test_every_fault_placement_on_clique(self, clique4_topology):
        graph = complete_digraph(4)
        for faulty_node in graph.nodes:
            honest, config = run_bw(
                graph, self.INPUTS, f=1, epsilon=0.25,
                faulty={faulty_node}, behavior=lambda: FixedValueBehavior(50.0),
                topology=clique4_topology, seed=faulty_node,
            )
            assert_definition1(honest, config, self.INPUTS, faulty={faulty_node})

    def test_different_delay_models(self, clique4_topology):
        graph = complete_digraph(4)
        for delay in (ConstantDelay(1.0), UniformDelay(0.1, 5.0), ExponentialDelay(1.0)):
            honest, config = run_bw(
                graph, self.INPUTS, f=1, epsilon=0.25, faulty={2},
                behavior=lambda: EquivocateBehavior({0: -10.0, 1: 10.0}),
                delay=delay, topology=clique4_topology,
            )
            assert_definition1(honest, config, self.INPUTS, faulty={2})


class TestDirectedGraphs:
    def test_figure_1a_with_byzantine_node(self):
        graph = figure_1a()
        inputs = {"v1": 0.0, "v2": 1.0, "v3": 0.5, "v4": 0.2, "v5": 0.8}
        honest, config = run_bw(
            graph, inputs, f=1, epsilon=0.3, faulty={"v4"},
            behavior=lambda: FixedValueBehavior(-99.0),
        )
        assert_definition1(honest, config, inputs, faulty={"v4"})

    def test_genuinely_directed_graph(self):
        graph = clique_with_feeders(4, 1)
        inputs = {node: index / 4 for index, node in enumerate(sorted(graph.nodes))}
        honest, config = run_bw(
            graph, inputs, f=1, epsilon=0.3, faulty={"c0"},
            behavior=lambda: EquivocateBehavior(default_offset=3.0), policy="simple",
        )
        assert_definition1(honest, config, inputs, faulty={"c0"})

    def test_simple_policy_matches_redundant_on_clique(self, clique4_topology):
        graph = complete_digraph(4)
        inputs = {0: 0.0, 1: 1.0, 2: 0.4, 3: 0.6}
        honest_simple, config = run_bw(graph, inputs, f=1, epsilon=0.2, policy="simple")
        honest_redundant, _ = run_bw(graph, inputs, f=1, epsilon=0.2, topology=clique4_topology)
        assert_definition1(honest_simple, config, inputs)
        assert_definition1(honest_redundant, config, inputs)


class TestConfigurationAndErrors:
    def test_strict_topology_check_rejects_weak_graph(self):
        graph = directed_cycle(4)
        config = ConsensusConfig(f=1, epsilon=0.1, strict_topology_check=True)
        with pytest.raises(InfeasibleTopologyError):
            BWProcess(0, graph, 0.5, config)

    def test_strict_topology_check_accepts_clique(self):
        graph = complete_digraph(4)
        config = ConsensusConfig(f=1, epsilon=0.1, strict_topology_check=True)
        assert BWProcess(0, graph, 0.5, config).total_rounds == config.rounds_needed()

    def test_input_outside_declared_range_rejected(self):
        graph = complete_digraph(4)
        config = ConsensusConfig(f=1, epsilon=0.1, input_low=0.0, input_high=1.0)
        with pytest.raises(ProtocolError):
            BWProcess(0, graph, 5.0, config)

    def test_create_processes_requires_all_inputs(self):
        graph = complete_digraph(3)
        config = ConsensusConfig(f=0, epsilon=0.1)
        with pytest.raises(ProtocolError):
            create_bw_processes(graph, {0: 0.1}, config)

    def test_rounds_needed_formula(self):
        config = ConsensusConfig(f=1, epsilon=0.1, input_low=0.0, input_high=1.0)
        assert config.rounds_needed() == 4  # 1/2^4 = 0.0625 < 0.1
        assert ConsensusConfig(f=1, epsilon=2.0, input_low=0.0, input_high=1.0).rounds_needed() == 0
        assert ConsensusConfig(f=1, epsilon=0.1, max_rounds=2).rounds_needed() == 2

    def test_repr_mentions_progress(self):
        graph = complete_digraph(4)
        config = ConsensusConfig(f=1, epsilon=0.5)
        process = BWProcess(0, graph, 0.5, config)
        assert "BWProcess" in repr(process)
