"""Tests for the baseline algorithms (clique, iterative, crash-tolerant, control)."""

from __future__ import annotations

import pytest

from repro.adversary.adversary import FaultPlan, no_faults
from repro.adversary.behaviors import CrashBehavior, EquivocateBehavior
from repro.algorithms.base import ConsensusConfig
from repro.algorithms.baselines.abraham import AbrahamCliqueProcess, create_clique_processes
from repro.algorithms.baselines.crash_async import create_crash_processes
from repro.algorithms.baselines.iterative import (
    messages_per_round,
    rounds_to_epsilon,
    run_iterative_consensus,
    trimmed_mean_update,
)
from repro.algorithms.baselines.local_average import (
    mean_update,
    run_local_average,
    validity_violation,
)
from repro.algorithms.baselines.synchronous import run_synchronous_rounds
from repro.exceptions import InfeasibleTopologyError, ProtocolError
from repro.graphs.generators import complete_digraph, directed_cycle, figure_1a
from repro.network.delays import UniformDelay
from repro.network.simulator import Simulator


def run_async_processes(graph, processes, faulty, behavior, seed=1):
    plan = FaultPlan(frozenset(faulty), lambda node: behavior()) if faulty else no_faults()
    wrapped = plan.apply(processes)
    simulator = Simulator(graph, UniformDelay(0.5, 2.0), seed=seed)
    simulator.add_processes(wrapped.values())
    simulator.run(max_events=500_000)
    return {node: processes[node] for node in graph.nodes if node not in set(faulty)}


class TestCliqueBaseline:
    INPUTS = {0: 0.0, 1: 1.0, 2: 0.3, 3: 0.7}

    def _run(self, faulty=(), behavior=None, n=4, f=1, epsilon=0.2):
        graph = complete_digraph(n)
        inputs = {node: self.INPUTS.get(node, 0.5) for node in graph.nodes}
        config = ConsensusConfig(f=f, epsilon=epsilon, input_low=0.0, input_high=1.0)
        processes = create_clique_processes(graph, inputs, config)
        honest = run_async_processes(graph, processes, faulty, behavior)
        return honest, config, inputs

    def test_fault_free_agreement(self):
        honest, config, inputs = self._run()
        outputs = [process.output for process in honest.values()]
        assert all(process.decided for process in honest.values())
        assert max(outputs) - min(outputs) < config.epsilon

    def test_tolerates_equivocating_node(self):
        honest, config, inputs = self._run(faulty={3}, behavior=lambda: EquivocateBehavior({0: -9.0, 1: 9.0}))
        outputs = [process.output for process in honest.values()]
        assert max(outputs) - min(outputs) < config.epsilon
        assert all(0.0 <= value <= 1.0 for value in outputs)

    def test_tolerates_crash(self):
        honest, config, inputs = self._run(faulty={2}, behavior=CrashBehavior)
        assert all(process.decided for process in honest.values())

    def test_strict_check_rejects_incomplete_graph(self):
        config = ConsensusConfig(f=1, epsilon=0.2, strict_topology_check=True)
        with pytest.raises(InfeasibleTopologyError):
            AbrahamCliqueProcess(0, directed_cycle(4), 0.5, config)

    def test_strict_check_rejects_too_small_clique(self):
        config = ConsensusConfig(f=1, epsilon=0.2, strict_topology_check=True)
        with pytest.raises(InfeasibleTopologyError):
            AbrahamCliqueProcess(0, complete_digraph(3), 0.5, config)

    def test_missing_inputs_rejected(self):
        config = ConsensusConfig(f=1, epsilon=0.2)
        with pytest.raises(ProtocolError):
            create_clique_processes(complete_digraph(3), {0: 0.5}, config)

    def test_zero_round_configuration(self):
        graph = complete_digraph(4)
        config = ConsensusConfig(f=1, epsilon=5.0, input_low=0.0, input_high=1.0)
        processes = create_clique_processes(graph, {n: 0.5 for n in graph.nodes}, config)
        honest = run_async_processes(graph, processes, (), None)
        assert all(process.output == 0.5 for process in honest.values())


class TestCrashBaseline:
    def test_crash_tolerant_on_figure_1a(self):
        graph = figure_1a()
        inputs = {"v1": 0.0, "v2": 1.0, "v3": 0.5, "v4": 0.25, "v5": 0.75}
        config = ConsensusConfig(f=1, epsilon=0.2, input_low=0.0, input_high=1.0)
        processes = create_crash_processes(graph, inputs, config)
        honest = run_async_processes(graph, processes, {"v5"}, CrashBehavior)
        outputs = [process.output for process in honest.values()]
        assert all(process.decided for process in honest.values())
        assert max(outputs) - min(outputs) < config.epsilon
        assert all(0.0 <= value <= 1.0 for value in outputs)

    def test_crash_tolerant_without_faults_on_clique(self):
        graph = complete_digraph(5)
        inputs = {node: node / 4 for node in graph.nodes}
        config = ConsensusConfig(f=2, epsilon=0.3, input_low=0.0, input_high=1.0)
        processes = create_crash_processes(graph, inputs, config)
        honest = run_async_processes(graph, processes, (), None)
        outputs = [process.output for process in honest.values()]
        assert max(outputs) - min(outputs) < config.epsilon

    def test_strict_check_requires_two_reach(self):
        config = ConsensusConfig(f=1, epsilon=0.2, strict_topology_check=True)
        with pytest.raises(InfeasibleTopologyError):
            create_crash_processes(directed_cycle(5), {n: 0.0 for n in range(5)}, config)

    def test_missing_inputs_rejected(self):
        config = ConsensusConfig(f=1, epsilon=0.2)
        with pytest.raises(ProtocolError):
            create_crash_processes(complete_digraph(3), {0: 0.1}, config)


class TestSynchronousEngine:
    def test_round_count_and_states(self):
        graph = complete_digraph(3)
        trace = run_synchronous_rounds(
            graph, {0: 0.0, 1: 1.0, 2: 0.5}, rounds=3,
            update_rule=lambda node, own, received, r: own,
        )
        assert trace.rounds == 3
        assert len(trace.states) == 4
        assert trace.nonfaulty_range(0) == 1.0

    def test_faulty_nodes_do_not_update(self):
        graph = complete_digraph(3)
        trace = run_synchronous_rounds(
            graph, {0: 0.0, 1: 1.0, 2: 0.5}, rounds=2,
            update_rule=lambda node, own, received, r: 9.9,
            faulty_nodes={2},
        )
        assert trace.states[-1][2] == 0.5
        assert trace.final_outputs() == {0: 9.9, 1: 9.9}

    def test_byzantine_value_callback_controls_messages(self):
        graph = complete_digraph(3)
        seen = []

        def update(node, own, received, round_index):
            seen.append(dict(received))
            return own

        run_synchronous_rounds(
            graph, {0: 0.0, 1: 1.0, 2: 0.5}, rounds=1, update_rule=update,
            faulty_nodes={2}, byzantine_value=lambda node, receiver, r, value: None,
        )
        assert all(2 not in inbox for inbox in seen)

    def test_validation(self):
        graph = complete_digraph(3)
        with pytest.raises(ProtocolError):
            run_synchronous_rounds(graph, {0: 0.0}, 1, lambda n, o, r, i: o)
        with pytest.raises(ProtocolError):
            run_synchronous_rounds(graph, {0: 0.0, 1: 0.0, 2: 0.0}, -1, lambda n, o, r, i: o)


class TestIterativeBaseline:
    def test_trimmed_mean_update_discards_extremes(self):
        received = {1: 100.0, 2: 0.4, 3: 0.6, 4: -100.0}
        assert trimmed_mean_update(0.5, received, f=1) == pytest.approx(0.5)

    def test_trimmed_mean_keeps_everything_when_f_zero(self):
        received = {1: 1.0, 2: 0.0}
        assert trimmed_mean_update(0.5, received, f=0) == pytest.approx(0.5)

    def test_trimmed_mean_rejects_negative_f(self):
        with pytest.raises(ProtocolError):
            trimmed_mean_update(0.5, {}, f=-1)

    def test_iterative_converges_on_clique_with_byzantine(self):
        graph = complete_digraph(5)
        inputs = {node: node / 4 for node in graph.nodes}
        trace = run_iterative_consensus(
            graph, inputs, f=1, rounds=25, faulty_nodes={4},
            byzantine_value=lambda node, receiver, r, value: 1e3,
        )
        final = list(trace.final_outputs().values())
        assert max(final) - min(final) < 0.05
        assert all(0.0 <= value <= 0.75 + 1e-9 for value in final)

    def test_rounds_to_epsilon(self):
        graph = complete_digraph(4)
        inputs = {node: float(node % 2) for node in graph.nodes}
        trace = run_iterative_consensus(graph, inputs, f=0, rounds=15)
        hit = rounds_to_epsilon(trace, 0.01)
        assert hit is not None and 0 < hit <= 15
        no_rounds = run_iterative_consensus(graph, inputs, f=0, rounds=0)
        assert rounds_to_epsilon(no_rounds, 0.5) is None

    def test_messages_per_round(self):
        assert messages_per_round(complete_digraph(4)) == 12


class TestLocalAverageControl:
    def test_converges_without_faults(self):
        graph = complete_digraph(4)
        inputs = {node: float(node) for node in graph.nodes}
        trace = run_local_average(graph, inputs, rounds=10)
        final = list(trace.final_outputs().values())
        assert max(final) - min(final) < 1e-6

    def test_single_byzantine_destroys_validity(self):
        graph = complete_digraph(4)
        inputs = {0: 0.0, 1: 0.5, 2: 1.0, 3: 0.5}
        trace = run_local_average(
            graph, inputs, rounds=10, faulty_nodes={3},
            byzantine_value=lambda node, receiver, r, value: 1e6,
        )
        damage = validity_violation(trace, input_low=0.0, input_high=1.0)
        assert damage > 100.0

    def test_mean_update(self):
        assert mean_update(0.0, {1: 1.0}) == pytest.approx(0.5)
        assert mean_update(2.0, {}) == pytest.approx(2.0)

    def test_validity_violation_zero_when_within_range(self):
        graph = complete_digraph(3)
        trace = run_local_average(graph, {0: 0.2, 1: 0.4, 2: 0.6}, rounds=3)
        assert validity_violation(trace, 0.0, 1.0) == 0.0
