"""End-to-end integration tests spanning the whole stack.

These tests mirror the benchmark scripts at a reduced scale: they check that
the main theorem's two directions are visible *behaviourally* — the algorithm
succeeds on 3-reach graphs under every implemented attack, and consensus
demonstrably fails on graphs violating the condition — and that the paper's
quantitative claims (geometric contraction, round bound) hold on real runs.
"""

from __future__ import annotations

import pytest

from repro.adversary.adversary import FaultPlan
from repro.adversary.behaviors import STANDARD_BEHAVIOR_FACTORIES
from repro.algorithms.base import ConsensusConfig
from repro.algorithms.topology import TopologyKnowledge
from repro.analysis.convergence import all_within_bound, required_rounds
from repro.analysis.necessity import demonstrate_disagreement, find_violation
from repro.conditions.reach_conditions import check_three_reach
from repro.graphs.generators import complete_digraph, directed_cycle, figure_1a
from repro.runner.experiment import run_bw_experiment, run_iterative_experiment
from repro.runner.harness import spread_inputs, sweep_behaviors
from repro.runner.metrics import aggregate_success_rate


@pytest.fixture(scope="module")
def clique_topology():
    topology = TopologyKnowledge(complete_digraph(4), 1, "redundant")
    topology.precompute_all()
    return topology


class TestSufficiencyDirection:
    """On 3-reach graphs, the algorithm satisfies Definition 1 under every attack."""

    def test_behavior_sweep_on_clique(self, clique_topology):
        graph = complete_digraph(4)
        inputs = spread_inputs(graph, 0.0, 1.0)
        config = ConsensusConfig(f=1, epsilon=0.25, input_low=0.0, input_high=1.0)

        def run_one(plan, seed, behavior_name):
            return run_bw_experiment(
                graph, inputs, config, plan, seed=seed,
                topology=clique_topology, behavior_name=behavior_name,
            )

        results = sweep_behaviors(run_one, graph, f=1, seeds=(1, 2),
                                  behaviors=STANDARD_BEHAVIOR_FACTORIES)
        assert results
        for cell in results:
            assert cell.success_rate == 1.0, cell.label

    def test_round_bound_and_contraction(self, clique_topology):
        graph = complete_digraph(4)
        inputs = {0: 0.0, 1: 1.0, 2: 0.2, 3: 0.8}
        config = ConsensusConfig(f=1, epsilon=0.1, input_low=0.0, input_high=1.0)
        plan = FaultPlan(frozenset({2}), lambda node: STANDARD_BEHAVIOR_FACTORIES["equivocate"]())
        outcome = run_bw_experiment(graph, inputs, config, plan, seed=3, topology=clique_topology)
        assert outcome.correct
        assert outcome.rounds == required_rounds(1.0, 0.1) == config.rounds_needed()
        assert all_within_bound(outcome.per_round_ranges, initial_range=1.0)

    def test_directed_figure_graph(self):
        graph = figure_1a()
        inputs = spread_inputs(graph, 0.0, 1.0)
        config = ConsensusConfig(
            f=1, epsilon=0.3, input_low=0.0, input_high=1.0, path_policy="simple"
        )
        plan = FaultPlan(frozenset({"v2"}), lambda node: STANDARD_BEHAVIOR_FACTORIES["fixed-high"]())
        outcome = run_bw_experiment(graph, inputs, config, plan, seed=4)
        assert outcome.correct


class TestNecessityDirection:
    """On graphs violating 3-reach, consensus demonstrably fails."""

    def test_cycle_disagreement(self):
        graph = directed_cycle(6)
        assert not check_three_reach(graph, 1).holds
        violation = find_violation(graph, 1)
        result = demonstrate_disagreement(graph, violation, epsilon=1.0, rounds=12)
        assert result.convergence_violated


class TestBaselineComparison:
    """The headline comparison: BW works where the simple approaches break."""

    def test_bw_beats_unprotected_averaging(self, clique_topology):
        graph = complete_digraph(4)
        inputs = spread_inputs(graph, 0.0, 1.0)
        config = ConsensusConfig(f=1, epsilon=0.25, input_low=0.0, input_high=1.0)
        plan = FaultPlan(frozenset({3}), lambda node: STANDARD_BEHAVIOR_FACTORIES["fixed-high"]())
        protected = run_bw_experiment(graph, inputs, config, plan, seed=1, topology=clique_topology)
        from repro.runner.experiment import run_local_average_experiment

        unprotected = run_local_average_experiment(
            graph, inputs, config, rounds=6, faulty_nodes={3},
            byzantine_value=lambda n, r, k, v: 1e6,
        )
        assert protected.correct
        assert not unprotected.validity

    def test_bw_and_iterative_agree_when_both_apply(self, clique_topology):
        graph = complete_digraph(4)
        inputs = spread_inputs(graph, 0.0, 1.0)
        config = ConsensusConfig(f=1, epsilon=0.25, input_low=0.0, input_high=1.0)
        plan = FaultPlan(frozenset({1}), lambda node: STANDARD_BEHAVIOR_FACTORIES["fixed-low"]())
        bw = run_bw_experiment(graph, inputs, config, plan, seed=2, topology=clique_topology)
        iterative = run_iterative_experiment(
            graph, inputs, config, rounds=20, faulty_nodes={1},
            byzantine_value=lambda n, r, k, v: -1e6,
        )
        assert bw.correct and iterative.correct
        # The message-complexity gap is the point of the comparison benchmark:
        # BW floods paths, the iterative baseline sends one value per edge.
        assert bw.messages_delivered > iterative.messages_delivered

    def test_success_rate_aggregation(self, clique_topology):
        graph = complete_digraph(4)
        inputs = spread_inputs(graph, 0.0, 1.0)
        config = ConsensusConfig(f=1, epsilon=0.25, input_low=0.0, input_high=1.0)
        outcomes = [
            run_bw_experiment(graph, inputs, config, seed=seed, topology=clique_topology)
            for seed in (1, 2, 3)
        ]
        assert aggregate_success_rate(outcomes) == 1.0
