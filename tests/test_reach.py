"""Unit tests for reach sets, reduced graphs, source components, propagation."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import complete_digraph, directed_cycle
from repro.graphs.reach import (
    ReachSetCache,
    SourceComponentCache,
    is_strongly_connected_subset,
    propagates,
    reach_set,
    reach_sets_for_all_nodes,
    reduced_graph,
    source_component,
    theorem5_holds_for,
)


class TestReachSets:
    def test_reach_contains_self(self, diamond):
        assert 3 in reach_set(diamond, 3)

    def test_reach_in_strongly_connected_graph_is_everything(self, diamond):
        assert reach_set(diamond, 0) == frozenset(diamond.nodes)

    def test_reach_excludes_faulty_and_cut_off(self):
        cycle = directed_cycle(5)
        # Removing node 1 cuts 0's only incoming chain at that point:
        # ancestors of 0 avoiding {1} are 2, 3, 4.
        assert reach_set(cycle, 0, {1}) == frozenset({0, 2, 3, 4})
        # Removing node 4 (0's only in-neighbour) isolates 0.
        assert reach_set(cycle, 0, {4}) == frozenset({0})

    def test_reach_on_dag(self):
        graph = DiGraph(edges=[(0, 1), (1, 2)])
        assert reach_set(graph, 2) == frozenset({0, 1, 2})
        assert reach_set(graph, 0) == frozenset({0})

    def test_node_cannot_be_excluded_from_own_reach(self, diamond):
        with pytest.raises(ValueError):
            reach_set(diamond, 0, {0})

    def test_missing_node_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            reach_set(diamond, 99)

    def test_reach_sets_for_all_nodes_matches_single_queries(self, fig1a):
        excluded = {"v3"}
        batch = reach_sets_for_all_nodes(fig1a, excluded)
        for node in fig1a.nodes:
            if node in excluded:
                assert node not in batch
            else:
                assert batch[node] == reach_set(fig1a, node, excluded)

    def test_reach_cache(self, diamond):
        cache = ReachSetCache(diamond)
        first = cache.get(3, {0})
        second = cache.get(3, {0})
        assert first == second == reach_set(diamond, 3, {0})
        assert len(cache) == 1


class TestReducedGraphAndSourceComponent:
    def test_reduced_graph_removes_outgoing_only(self, diamond):
        reduced = reduced_graph(diamond, {0}, set())
        assert set(reduced.nodes) == set(diamond.nodes)
        assert not reduced.has_edge(0, 1)
        assert reduced.has_edge(3, 0)

    def test_source_component_of_clique(self):
        clique = complete_digraph(4)
        assert source_component(clique, {0}, set()) == frozenset({1, 2, 3})

    def test_source_component_symmetric_in_arguments(self, fig1a):
        assert source_component(fig1a, {"v2"}, {"v4"}) == source_component(fig1a, {"v4"}, {"v2"})

    def test_source_component_empty_when_no_root(self):
        # Two disjoint 2-cycles: nobody reaches everyone.
        graph = DiGraph(edges=[(0, 1), (1, 0), (2, 3), (3, 2)])
        assert source_component(graph, set(), set()) == frozenset()

    def test_source_component_is_strongly_connected(self, fig1a):
        component = source_component(fig1a, {"v1"}, {"v2"})
        assert component
        assert is_strongly_connected_subset(fig1a, component)

    def test_source_component_disjoint_from_fault_sets(self, fig1a):
        component = source_component(fig1a, {"v1"}, {"v2"})
        assert not (component & {"v1", "v2"})

    def test_source_component_cache(self, diamond):
        cache = SourceComponentCache(diamond)
        assert cache.get({0}, set()) == source_component(diamond, {0}, set())
        cache.get(set(), {0})
        assert len(cache) == 1  # keyed on the union


class TestPropagation:
    def test_propagation_to_empty_target_is_trivial(self, diamond):
        assert propagates(diamond, {0}, set(), set(diamond.nodes), f=5)

    def test_propagation_in_clique(self):
        clique = complete_digraph(5)
        everyone = set(clique.nodes)
        assert propagates(clique, {0, 1}, {4}, everyone, f=1)
        assert not propagates(clique, {0}, {4}, everyone, f=1)

    def test_propagation_requires_disjoint_sets(self, diamond):
        with pytest.raises(ValueError):
            propagates(diamond, {0}, {0, 1}, set(diamond.nodes), f=1)

    def test_propagation_requires_target_within_containment(self, diamond):
        with pytest.raises(ValueError):
            propagates(diamond, {0}, {3}, {0, 1}, f=0)

    def test_theorem5_on_figure_1a(self, fig1a):
        # Figure 1(a) satisfies 3-reach for f = 1, so Theorem 5 must hold for
        # every pair of candidate fault sets.
        assert theorem5_holds_for(fig1a, {"v2"}, {"v4"}, f=1)
        assert theorem5_holds_for(fig1a, {"v1"}, set(), f=1)

    def test_theorem5_fails_on_weak_graph(self):
        cycle = directed_cycle(5)
        # The directed cycle violates 3-reach for f = 1 and indeed the source
        # component loses its f+1 disjoint-path guarantee.
        assert not theorem5_holds_for(cycle, {0}, {1}, f=1)


class TestStrongConnectivityHelper:
    def test_subset_strong_connectivity(self, diamond):
        assert is_strongly_connected_subset(diamond, {0, 1, 2, 3})
        assert is_strongly_connected_subset(diamond, {1})
        assert not is_strongly_connected_subset(diamond, {1, 2})
        assert not is_strongly_connected_subset(diamond, set())
