"""Reproduction checks for the paper's Figure 1 and its surrounding claims.

Figure 1(a): a 5-node undirected graph where synchronous exact Byzantine
consensus is feasible for f = 1 — all-pair RMT is possible (κ(G) = 3 ≥ 2f+1)
and removing any edge breaks it.

Figure 1(b): two 7-node cliques plus eight directed edges, f = 2 — some node
pairs are joined by only 2f = 4 vertex-disjoint paths (so all-pair RMT is
impossible) yet the 3-reach condition holds and consensus is achievable.
"""

from __future__ import annotations


from repro.conditions.partition_conditions import check_bcs
from repro.conditions.reach_conditions import check_three_reach, max_tolerable_f
from repro.graphs.flow import max_vertex_disjoint_paths
from repro.graphs.generators import figure_1a, two_cliques_bridged
from repro.graphs.properties import critical_edges_for_connectivity, undirected_vertex_connectivity


class TestFigure1a:
    def test_all_pair_rmt_possible(self):
        graph = figure_1a()
        # κ(G) = 3 = 2f + 1 for f = 1: every pair has 3 vertex-disjoint routes.
        assert undirected_vertex_connectivity(graph) == 3
        for u in graph.nodes:
            for v in graph.nodes:
                if u != v:
                    assert max_vertex_disjoint_paths(graph, u, v) >= 3

    def test_feasible_for_one_byzantine_fault(self):
        graph = figure_1a()
        assert check_three_reach(graph, 1).holds
        assert max_tolerable_f(graph, k=3) == 1

    def test_not_feasible_for_two_faults(self):
        assert not check_three_reach(figure_1a(), 2).holds

    def test_removing_any_edge_breaks_feasibility(self):
        # "removing any edge will reduce κ(G), which will make both RMT and
        #  consensus impossible" (Section 1).
        graph = figure_1a()
        assert len(critical_edges_for_connectivity(graph, threshold=3)) == 8
        for u, v in list({tuple(sorted(edge)) for edge in graph.to_undirected_edges()}):
            trimmed = graph.copy()
            trimmed.remove_edge(u, v)
            trimmed.remove_edge(v, u)
            assert not check_three_reach(trimmed, 1).holds, (u, v)


class TestFigure1b:
    def test_structure(self, fig1b):
        assert fig1b.num_nodes == 14
        assert fig1b.num_edges == 2 * 2 * 21 + 8

    def test_limited_disjoint_paths_block_rmt(self, fig1b):
        # Only 2f = 4 vertex-disjoint (v1, w1)-paths: fewer than the 2f + 1
        # needed for reliable message transmission, so all-pair RMT fails.
        assert max_vertex_disjoint_paths(fig1b, "v1", "w1") == 4

    def test_three_reach_holds_for_two_faults(self, fig1b):
        report = check_three_reach(fig1b, 2)
        assert report.holds

    def test_bcs_agrees_for_two_faults(self, fig1b):
        assert check_bcs(fig1b, 2).holds

    def test_three_reach_fails_for_three_faults(self, fig1b):
        assert not check_three_reach(fig1b, 3).holds

    def test_parametric_family_needs_enough_bridges(self):
        # With only 2 bridges per direction the two-clique construction cannot
        # tolerate 1 Byzantine fault... it actually needs > 2f bridges.
        assert not check_three_reach(two_cliques_bridged(5, 2, 2), 2).holds
        assert check_three_reach(two_cliques_bridged(5, 3, 3), 1).holds
