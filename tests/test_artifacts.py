"""Tests for sweep artifacts: round-trip, schema validation, drift gating."""

from __future__ import annotations

import copy
import json

import pytest

from repro.exceptions import ArtifactError
from repro.runner.artifacts import (
    ARTIFACT_KIND,
    SCHEMA_VERSION,
    artifact_cells,
    artifact_payload,
    compare,
    compare_files,
    dumps_canonical,
    environment_metadata,
    git_metadata,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.runner.harness import SweepEngine
from repro.runner.scenarios import get_scenario


@pytest.fixture(scope="module")
def run_result():
    return SweepEngine(workers=1).run(get_scenario("table1").grid(quick=True))


@pytest.fixture
def payload(run_result):
    return artifact_payload(run_result, mode="quick")


class TestPayload:
    def test_envelope(self, payload):
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == ARTIFACT_KIND
        assert payload["scenario"] == "table1"
        assert payload["mode"] == "quick"
        assert payload["totals"]["cells"] == len(payload["cells"])
        assert payload["totals"]["successes"] == sum(
            1 for cell in payload["cells"] if cell["success"]
        )

    def test_payload_is_deterministic(self, run_result):
        first = artifact_payload(run_result, mode="quick")
        second = artifact_payload(run_result, mode="quick")
        assert dumps_canonical(first) == dumps_canonical(second)

    def test_invalid_mode_rejected(self, run_result):
        with pytest.raises(ArtifactError):
            artifact_payload(run_result, mode="smoke")

    def test_provenance_helpers(self):
        env = environment_metadata()
        assert set(env) == {
            "python",
            "implementation",
            "platform",
            "machine",
            "bitset_backend",
        }
        git = git_metadata()
        assert git is None or {"commit", "dirty"} <= set(git)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path, run_result):
        path = tmp_path / "artifacts" / "table1.quick.json"
        written = write_artifact(path, run_result, mode="quick")
        loaded = load_artifact(path)
        assert loaded == json.loads(dumps_canonical(written))
        cells = artifact_cells(loaded)
        assert cells == run_result.cells

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            load_artifact(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)


class TestValidation:
    def test_missing_keys(self, payload):
        broken = {key: value for key, value in payload.items() if key != "totals"}
        with pytest.raises(ArtifactError, match="missing required keys"):
            validate_artifact(broken)

    def test_wrong_kind(self, payload):
        broken = dict(payload, kind="something-else")
        with pytest.raises(ArtifactError, match="not a sweep artifact"):
            validate_artifact(broken)

    def test_wrong_schema_version(self, payload):
        broken = dict(payload, schema_version=SCHEMA_VERSION + 1)
        with pytest.raises(ArtifactError, match="schema version"):
            validate_artifact(broken)

    def test_totals_must_match_cells(self, payload):
        broken = copy.deepcopy(payload)
        broken["totals"]["cells"] += 1
        with pytest.raises(ArtifactError, match="disagrees"):
            validate_artifact(broken)

    def test_bad_mode(self, payload):
        broken = dict(payload, mode="nightly")
        with pytest.raises(ArtifactError, match="mode"):
            validate_artifact(broken)

    def test_groups_must_be_a_list_of_complete_objects(self, payload):
        broken = dict(payload, groups={})
        with pytest.raises(ArtifactError, match="'groups' must be a list"):
            validate_artifact(broken)
        broken = dict(payload, groups=["not-an-object"])
        with pytest.raises(ArtifactError, match="must be an object"):
            validate_artifact(broken)
        clipped = copy.deepcopy(payload)
        del clipped["groups"][0]["success_rate"]
        with pytest.raises(ArtifactError, match="missing fields"):
            validate_artifact(clipped)


class TestCompare:
    def test_identical_artifacts_pass(self, payload):
        report = compare(payload, copy.deepcopy(payload))
        assert report.ok
        assert report.groups_checked == len(payload["groups"])
        assert "OK" in report.describe()

    def test_success_rate_drift_detected(self, payload):
        drifted = copy.deepcopy(payload)
        drifted["groups"][0]["success_rate"] -= 0.5
        report = compare(payload, drifted)
        assert not report.ok
        assert any(drift.kind == "success-rate" for drift in report.drifts)
        assert "DRIFT" in report.describe()

    def test_mean_rounds_drift_detected(self, payload):
        drifted = copy.deepcopy(payload)
        drifted["groups"][0]["mean_rounds"] += 1.0
        report = compare(payload, drifted)
        assert any(drift.kind == "mean-rounds" for drift in report.drifts)

    def test_tolerances_permit_small_drift(self, payload):
        drifted = copy.deepcopy(payload)
        drifted["groups"][0]["success_rate"] -= 0.05
        drifted["groups"][0]["mean_rounds"] += 0.5
        assert not compare(payload, drifted).ok
        assert compare(payload, drifted, tol_success=0.1, tol_rounds=1.0).ok

    def test_missing_and_new_groups_detected(self, payload):
        drifted = copy.deepcopy(payload)
        removed = drifted["groups"].pop(0)
        report = compare(payload, drifted)
        assert any(drift.kind == "missing-group" for drift in report.drifts)
        added = dict(removed, topology="invented-graph")
        drifted["groups"].append(added)
        report = compare(payload, drifted)
        assert any(drift.kind == "new-group" for drift in report.drifts)

    def test_run_count_change_detected(self, payload):
        drifted = copy.deepcopy(payload)
        drifted["groups"][0]["runs"] += 1
        report = compare(payload, drifted)
        assert any(drift.kind == "runs" for drift in report.drifts)

    def test_envelope_mismatches_detected(self, payload):
        drifted = copy.deepcopy(payload)
        drifted["mode"] = "full"
        report = compare(payload, drifted)
        assert any(drift.kind == "mode" for drift in report.drifts)

    def test_compare_files(self, tmp_path, run_result):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        write_artifact(baseline, run_result, mode="quick")
        write_artifact(current, run_result, mode="quick")
        assert compare_files(baseline, current).ok
