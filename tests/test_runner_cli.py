"""Smoke tests for the ``python -m repro.runner`` command line."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys


from repro.runner.artifacts import load_artifact
from repro.runner.cli import main

REPO_ROOT = pathlib.Path(__file__).parent.parent
SRC_DIR = REPO_ROOT / "src"


def _run_module(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.runner", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
    )


class TestInProcess:
    """Drive ``main()`` directly — fast, covers the plumbing."""

    def test_list_shows_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure1a", "figure1b", "definition1", "table1", "necessity"):
            assert name in out

    def test_list_shows_grid_axes_from_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "grid axes" in out
        assert "f=1,2" in out  # resilience/table grids sweep two fault bounds
        assert "two-cliques" in out

    def test_list_plugins_shows_every_registry(self, capsys):
        assert main(["list", "--plugins"]) == 0
        out = capsys.readouterr().out
        for section in ("topologies", "behaviors", "placements", "algorithms", "delays"):
            assert section in out
        assert "offset:offset" in out  # behaviour parameter schema rendered
        assert "check-necessity" in out and "consensus" in out
        assert "uniform:low,high" in out

    def test_run_scenario_file(self, tmp_path, capsys):
        scenario_file = tmp_path / "tiny.toml"
        scenario_file.write_text(
            "\n".join(
                (
                    'name = "tiny_probe"',
                    'description = "one-cell scenario-file smoke test"',
                    "[spec]",
                    'algorithms = ["check-reach"]',
                    "f_values = [1]",
                    'behaviors = ["-"]',
                    'placements = ["-"]',
                    "seeds = [0]",
                    "[[spec.topologies]]",
                    'family = "clique"',
                    "params = { n = 4 }",
                )
            ),
            encoding="utf-8",
        )
        target = tmp_path / "tiny.json"
        code = main(
            ["run", "--scenario-file", str(scenario_file), "--output", str(target),
             "--no-table"]
        )
        assert code == 0
        payload = load_artifact(target)
        assert payload["scenario"] == "tiny_probe"
        assert payload["totals"]["cells"] == 1

    def test_run_scenario_file_with_unknown_plugin_is_a_clean_error(self, tmp_path, capsys):
        scenario_file = tmp_path / "bad.toml"
        scenario_file.write_text(
            "\n".join(
                (
                    'name = "bad_probe"',
                    "[spec]",
                    'algorithms = ["check-rech"]',
                    'behaviors = ["-"]',
                    'placements = ["-"]',
                    "[[spec.topologies]]",
                    'family = "clique"',
                    "params = { n = 4 }",
                )
            ),
            encoding="utf-8",
        )
        code = main(["run", "--scenario-file", str(scenario_file), "--output",
                     str(tmp_path / "bad.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert "check-reach" in err  # the did-you-mean suggestion

    def test_run_without_selection_is_a_clean_error(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_run_with_unimportable_plugin_module_is_a_clean_error(self, capsys):
        code = main(["run", "--plugins", "no_such_plugin_module", "--scenario", "necessity"])
        assert code == 2
        assert "no_such_plugin_module" in capsys.readouterr().err

    def test_run_writes_artifact_and_prints_table(self, tmp_path, capsys):
        target = tmp_path / "table1.json"
        code = main(
            ["run", "--scenario", "table1", "--quick", "--workers", "2",
             "--output", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table1" in out and "cells" in out
        payload = load_artifact(target)
        assert payload["scenario"] == "table1" and payload["mode"] == "quick"

    def test_run_multiple_scenarios_into_directory(self, tmp_path, capsys):
        code = main(
            ["run", "--scenario", "table1,necessity", "--quick",
             "--output", str(tmp_path), "--no-table"]
        )
        assert code == 0
        assert (tmp_path / "table1.quick.json").exists()
        assert (tmp_path / "necessity.quick.json").exists()

    def test_compare_gate(self, tmp_path, capsys):
        target = tmp_path / "current.json"
        assert main(["run", "--scenario", "table1", "--quick", "--no-table",
                     "--output", str(target)]) == 0
        assert main(["compare", str(target), str(target)]) == 0
        assert "OK" in capsys.readouterr().out

        drifted_path = tmp_path / "drifted.json"
        payload = json.loads(target.read_text(encoding="utf-8"))
        payload["groups"][0]["success_rate"] = 0.0
        drifted_path.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["compare", str(target), str(drifted_path)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_unknown_scenario_is_a_clean_error(self, tmp_path, capsys):
        code = main(["run", "--scenario", "nope", "--output", str(tmp_path)])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_reports_phases_and_top_functions(self, tmp_path, capsys):
        raw = tmp_path / "profile.pstats"
        code = main(
            ["profile", "--scenario", "figure1a", "--quick", "--top", "5",
             "--sort", "tottime", "--output", str(raw)]
        )
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("expand", "precompute", "execute"):
            assert phase in out
        assert "cells/s" in out
        assert "ncalls" in out  # the pstats table made it to stdout
        assert raw.exists()

    def test_profile_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["profile", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSubprocess:
    """One true ``python -m repro.runner`` invocation end to end."""

    def test_module_entry_point(self, tmp_path):
        listed = _run_module(["list"], cwd=tmp_path)
        assert listed.returncode == 0, listed.stderr
        assert "definition1" in listed.stdout

        ran = _run_module(
            ["run", "--scenario", "necessity", "--quick", "--workers", "2",
             "--output", str(tmp_path / "necessity.json")],
            cwd=tmp_path,
        )
        assert ran.returncode == 0, ran.stderr
        payload = load_artifact(tmp_path / "necessity.json")
        assert payload["totals"]["cells"] == 2

    def test_plugins_module_and_scenario_file(self, tmp_path):
        """The full third-party flow: --plugins registers a custom topology,
        a scenario TOML references it, the sweep runs sharded."""
        (tmp_path / "cli_probe_plugins.py").write_text(
            "\n".join(
                (
                    "from repro.api import TOPOLOGIES, DiGraph",
                    "",
                    "",
                    '@TOPOLOGIES.register("cli-probe-path")',
                    "def probe_path(n):",
                    "    graph = DiGraph(name=f'probe-{n}')",
                    "    for node in range(n):",
                    "        graph.add_node(node)",
                    "    for node in range(n - 1):",
                    "        graph.add_bidirectional_edge(node, node + 1)",
                    "    return graph",
                )
            ),
            encoding="utf-8",
        )
        (tmp_path / "probe.toml").write_text(
            "\n".join(
                (
                    'name = "cli_probe"',
                    "[spec]",
                    'algorithms = ["check-reach"]',
                    "f_values = [1]",
                    'behaviors = ["-"]',
                    'placements = ["-"]',
                    "seeds = [0]",
                    "[[spec.topologies]]",
                    'family = "cli-probe-path"',
                    "params = { n = 5 }",
                )
            ),
            encoding="utf-8",
        )
        ran = _run_module(
            ["run", "--plugins", "cli_probe_plugins", "--scenario-file", "probe.toml",
             "--workers", "2", "--output", str(tmp_path / "probe.json"), "--no-table"],
            cwd=tmp_path,
        )
        assert ran.returncode == 0, ran.stderr
        payload = load_artifact(tmp_path / "probe.json")
        assert payload["scenario"] == "cli_probe"
        assert payload["cells"][0]["topology"] == "cli-probe-path(n=5)"
        # without the plugin module the same run fails eagerly, listing names
        failed = _run_module(
            ["run", "--scenario-file", "probe.toml", "--output",
             str(tmp_path / "nope.json")],
            cwd=tmp_path,
        )
        assert failed.returncode == 2
        assert "registered topologies" in failed.stderr
