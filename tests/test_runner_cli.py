"""Smoke tests for the ``python -m repro.runner`` command line."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys


from repro.runner.artifacts import load_artifact
from repro.runner.cli import main

REPO_ROOT = pathlib.Path(__file__).parent.parent
SRC_DIR = REPO_ROOT / "src"


def _run_module(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.runner", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
    )


class TestInProcess:
    """Drive ``main()`` directly — fast, covers the plumbing."""

    def test_list_shows_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure1a", "figure1b", "definition1", "table1", "necessity"):
            assert name in out

    def test_run_writes_artifact_and_prints_table(self, tmp_path, capsys):
        target = tmp_path / "table1.json"
        code = main(
            ["run", "--scenario", "table1", "--quick", "--workers", "2",
             "--output", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table1" in out and "cells" in out
        payload = load_artifact(target)
        assert payload["scenario"] == "table1" and payload["mode"] == "quick"

    def test_run_multiple_scenarios_into_directory(self, tmp_path, capsys):
        code = main(
            ["run", "--scenario", "table1,necessity", "--quick",
             "--output", str(tmp_path), "--no-table"]
        )
        assert code == 0
        assert (tmp_path / "table1.quick.json").exists()
        assert (tmp_path / "necessity.quick.json").exists()

    def test_compare_gate(self, tmp_path, capsys):
        target = tmp_path / "current.json"
        assert main(["run", "--scenario", "table1", "--quick", "--no-table",
                     "--output", str(target)]) == 0
        assert main(["compare", str(target), str(target)]) == 0
        assert "OK" in capsys.readouterr().out

        drifted_path = tmp_path / "drifted.json"
        payload = json.loads(target.read_text(encoding="utf-8"))
        payload["groups"][0]["success_rate"] = 0.0
        drifted_path.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["compare", str(target), str(drifted_path)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_unknown_scenario_is_a_clean_error(self, tmp_path, capsys):
        code = main(["run", "--scenario", "nope", "--output", str(tmp_path)])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_reports_phases_and_top_functions(self, tmp_path, capsys):
        raw = tmp_path / "profile.pstats"
        code = main(
            ["profile", "--scenario", "figure1a", "--quick", "--top", "5",
             "--sort", "tottime", "--output", str(raw)]
        )
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("expand", "precompute", "execute"):
            assert phase in out
        assert "cells/s" in out
        assert "ncalls" in out  # the pstats table made it to stdout
        assert raw.exists()

    def test_profile_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["profile", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSubprocess:
    """One true ``python -m repro.runner`` invocation end to end."""

    def test_module_entry_point(self, tmp_path):
        listed = _run_module(["list"], cwd=tmp_path)
        assert listed.returncode == 0, listed.stderr
        assert "definition1" in listed.stdout

        ran = _run_module(
            ["run", "--scenario", "necessity", "--quick", "--workers", "2",
             "--output", str(tmp_path / "necessity.json")],
            cwd=tmp_path,
        )
        assert ran.returncode == 0, ran.stderr
        payload = load_artifact(tmp_path / "necessity.json")
        assert payload["totals"]["cells"] == 2
