"""Tests for the api-v2 streaming execution sessions (repro.runner.session)."""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro.api
from repro.exceptions import ExperimentError, JournalError, UnknownPluginError
from repro.runner.artifacts import artifact_payload, compare, dumps_canonical, load_artifact
from repro.runner.cli import EXIT_INTERRUPTED, EXIT_OK, main
from repro.runner.harness import SweepEngine
from repro.runner.journal import journal_path, load_journal
from repro.runner.reporting import SessionProgress
from repro.runner.scenarios import get_scenario, run_cell
from repro.runner.session import (
    CellCompleted,
    CheckpointWritten,
    ExperimentSession,
    GroupUpdated,
    MaxWallTimePolicy,
    RunFinished,
    RunStarted,
    make_stop_policy,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

QUICK = get_scenario("definition1").grid(quick=True)
CHECK = get_scenario("table1").grid(quick=True)
FIG1B = get_scenario("figure1b").grid(quick=True)


def _poisoned_run_cell(spec, cell):
    """Module-level (picklable) cell runner that fails on cell index 1."""
    if cell.index == 1:
        raise RuntimeError("poisoned cell")
    return run_cell(spec, cell)


def _drop_after(session, k):
    """Consume a session's events, dropping the runner after K cells.

    Simulates a mid-stream crash: the event iterator is closed the moment
    the K-th CellCompleted arrives, which tears the worker pool down and
    leaves the journal unsealed.
    """
    events = session.events()
    completed = 0
    for event in events:
        if isinstance(event, CellCompleted):
            completed += 1
            if completed >= k:
                events.close()
                break
    return completed


def _await_no_children(timeout=10.0):
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children():
        if time.monotonic() > deadline:  # pragma: no cover - failure path
            return False
        time.sleep(0.05)
    return True


class TestEventStream:
    def test_serial_and_sharded_emit_the_identical_stream(self):
        events = {}
        for workers in (1, 2):
            session = ExperimentSession(QUICK, mode="quick", workers=workers)
            events[workers] = list(session.events())
        kinds = [type(event).__name__ for event in events[1]]
        assert kinds == [type(event).__name__ for event in events[2]]
        assert kinds[0] == "RunStarted" and kinds[-1] == "RunFinished"
        cells = {
            workers: [e.result for e in evs if isinstance(e, CellCompleted)]
            for workers, evs in events.items()
        }
        assert cells[1] == cells[2]
        groups = {
            workers: [e.group.as_dict() for e in evs if isinstance(e, GroupUpdated)]
            for workers, evs in events.items()
        }
        assert groups[1] == groups[2]

    def test_event_stream_matches_engine_run(self):
        session = ExperimentSession(CHECK, mode="quick", workers=2, chunk_size=1)
        result = session.run()
        reference = SweepEngine(workers=1).run(CHECK)
        assert result.cells == reference.cells
        assert artifact_payload(result, mode="quick") == artifact_payload(
            reference, mode="quick"
        )

    def test_cell_completed_counts_and_envelope(self):
        session = ExperimentSession(QUICK, mode="quick")
        events = list(session.events())
        started = events[0]
        assert isinstance(started, RunStarted)
        assert started.total_cells == QUICK.num_cells
        assert started.completed_cells == 0
        assert started.expected_groups == QUICK.num_cells // len(QUICK.seeds)
        counters = [e.completed for e in events if isinstance(e, CellCompleted)]
        assert counters == list(range(1, QUICK.num_cells + 1))
        finished = events[-1]
        assert isinstance(finished, RunFinished)
        assert finished.reason == "completed" and finished.completed == QUICK.num_cells

    def test_iter_results_is_the_cell_view(self):
        session = ExperimentSession(QUICK, mode="quick")
        streamed = list(session.iter_results())
        assert streamed == session.result.cells

    def test_sessions_are_one_shot(self):
        session = ExperimentSession(QUICK, mode="quick")
        session.run()
        with pytest.raises(ExperimentError, match="already executed"):
            session.run()

    def test_result_before_finish_raises(self):
        session = ExperimentSession(QUICK, mode="quick")
        with pytest.raises(ExperimentError, match="not finished"):
            session.result


class TestJournaledSessions:
    def test_journaled_artifact_matches_plain_engine_bytes(self, tmp_path):
        session = ExperimentSession(
            QUICK, mode="quick", workers=2, run_dir=tmp_path / "run", checkpoint_interval=2
        )
        events = list(session.events())
        assert any(isinstance(e, CheckpointWritten) for e in events)
        assert [e for e in events if isinstance(e, CheckpointWritten)][-1].sealed
        journal = load_journal(tmp_path / "run")
        assert journal.sealed and journal.seal_reason == "completed"
        derived = dumps_canonical(session.artifact_payload())
        plain = dumps_canonical(
            artifact_payload(
                SweepEngine(workers=1).run(QUICK),
                mode="quick",
                provenance=journal.provenance(),
            )
        )
        assert derived == plain

    @pytest.mark.parametrize("grid,k", [(FIG1B, 1), (CHECK, 3)], ids=["figure1b", "table1"])
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path, grid, k):
        """Kill a sharded journaled sweep after K cells, resume, and compare
        bytes against an uninterrupted serial run."""
        run_dir = tmp_path / "run"
        interrupted = ExperimentSession(grid, mode="quick", workers=2, run_dir=run_dir)
        completed = _drop_after(interrupted, k)
        assert completed == k
        journal = load_journal(run_dir)
        assert not journal.sealed
        assert len(journal.cells) >= 1

        resumed = ExperimentSession.resume(run_dir, workers=2)
        events = list(resumed.events())
        replays = [e for e in events if isinstance(e, CellCompleted) and e.replayed]
        assert len(replays) == len(journal.cells)
        assert resumed.finished.reason == "completed"

        reference = ExperimentSession(grid, mode="quick", workers=1, run_dir=tmp_path / "ref")
        reference.run()
        assert dumps_canonical(resumed.artifact_payload()) == dumps_canonical(
            reference.artifact_payload()
        )
        # and the gate agrees with the committed baseline
        baseline = load_artifact(BASELINE_DIR / f"{grid.name}.quick.json")
        assert compare(baseline, resumed.artifact_payload()).ok

    def test_resume_of_sealed_journal_refuses(self, tmp_path):
        session = ExperimentSession(QUICK, mode="quick", run_dir=tmp_path / "run")
        session.run()
        with pytest.raises(JournalError, match="sealed"):
            ExperimentSession.resume(tmp_path / "run")

    def test_restarting_an_existing_run_dir_refuses(self, tmp_path):
        run_dir = tmp_path / "run"
        first = ExperimentSession(QUICK, mode="quick", run_dir=run_dir)
        _drop_after(first, 1)
        second = ExperimentSession(QUICK, mode="quick", run_dir=run_dir)
        with pytest.raises(JournalError, match="resume"):
            second.run()

    def test_resume_verifies_the_grid_against_the_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        session = ExperimentSession(QUICK, mode="quick", run_dir=run_dir)
        _drop_after(session, 1)
        path = journal_path(run_dir)
        lines = path.read_bytes().splitlines(keepends=True)
        import json as _json

        header = _json.loads(lines[0])
        header["spec"]["seeds"] = [999]
        lines[0] = (_json.dumps(header, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="spec hash mismatch"):
            ExperimentSession.resume(run_dir)


class TestStopPolicies:
    def test_max_cells_seals_a_partial_run(self, tmp_path):
        session = ExperimentSession(
            QUICK, mode="quick", run_dir=tmp_path / "run", stop_policies=("max-cells:2",)
        )
        result = session.run()
        assert len(result.cells) == 2
        assert result.stop_reason == "policy:max-cells"
        journal = load_journal(tmp_path / "run")
        assert journal.sealed and journal.seal_reason == "policy:max-cells"
        with pytest.raises(JournalError, match="sealed"):
            ExperimentSession.resume(tmp_path / "run")
        # the partial artifact is still a valid, loadable document
        payload = session.artifact_payload()
        assert payload["totals"]["cells"] == 2

    def test_max_wall_time_stops_after_first_cell(self):
        session = ExperimentSession(QUICK, mode="quick", stop_policies=[MaxWallTimePolicy(0)])
        result = session.run()
        assert len(result.cells) == 1
        assert result.stop_reason == "policy:max-wall-time"

    def test_group_converged_skips_excess_seeds(self):
        grid = dataclasses.replace(QUICK, seeds=(1, 2))
        session = ExperimentSession(
            grid, mode="quick", stop_policies=("group-converged:1",)
        )
        result = session.run()
        assert 0 < len(result.cells) < grid.num_cells
        assert result.stop_reason == "policy:group-converged"
        seen = {cell.group_key for cell in result.cells}
        assert len(seen) == grid.num_cells // 2  # every group reached once

    def test_policy_firing_during_replay_never_contradicts_the_journal(self, tmp_path):
        """A stop policy that trips on replayed cells only takes effect
        before fresh work: the seal's totals must cover every cell record
        durably in the journal."""
        grid = dataclasses.replace(QUICK, seeds=(1, 2))  # 6 cells
        run_dir = tmp_path / "run"
        first = ExperimentSession(grid, mode="quick", run_dir=run_dir)
        assert _drop_after(first, 4) == 4
        resumed = ExperimentSession.resume(run_dir, stop_policies=("max-cells:2",))
        result = resumed.run()
        assert result.stop_reason == "policy:max-cells"
        assert len(result.cells) == 4  # all durable cells kept, no fresh work
        journal = load_journal(run_dir)
        assert journal.sealed and journal.seal_reason == "policy:max-cells"
        assert len(journal.cells) == 4
        assert journal.seal["totals"]["cells"] == len(journal.cells)

    def test_policy_specs_resolve_through_the_registry(self):
        with pytest.raises(UnknownPluginError, match="max-cells"):
            make_stop_policy("max-cell:3")
        with pytest.raises(ExperimentError, match="parameter"):
            make_stop_policy("max-cells")
        with pytest.raises(ExperimentError, match=">= 1"):
            make_stop_policy("max-cells:0")


class TestPoolHygiene:
    def test_poisoned_runner_propagates_and_releases_the_pool(self):
        engine = SweepEngine(workers=2, chunk_size=1)
        with pytest.raises(RuntimeError, match="poisoned cell"):
            engine.run(QUICK, runner=_poisoned_run_cell)
        assert _await_no_children(), "worker pool leaked child processes"

    def test_poisoned_session_leaves_no_artifact_and_a_resumable_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        session = ExperimentSession(
            QUICK, mode="quick", workers=2, run_dir=run_dir, runner=_poisoned_run_cell
        )
        with pytest.raises(RuntimeError, match="poisoned cell"):
            session.run()
        assert _await_no_children()
        journal = load_journal(run_dir)
        assert not journal.sealed  # resumable, not half-sealed
        assert not list(tmp_path.glob("*.json"))  # no half-written artifact
        resumed = ExperimentSession.resume(run_dir, workers=2)  # healthy runner
        resumed.run()
        reference = ExperimentSession(QUICK, mode="quick", run_dir=tmp_path / "ref")
        reference.run()
        assert dumps_canonical(resumed.artifact_payload()) == dumps_canonical(
            reference.artifact_payload()
        )

    def test_closing_the_stream_early_releases_the_pool(self):
        session = ExperimentSession(CHECK, mode="quick", workers=2, chunk_size=1)
        _drop_after(session, 1)
        assert _await_no_children()


class TestSessionProgress:
    def test_progress_consumes_events_only(self, tmp_path):
        session = ExperimentSession(
            QUICK, mode="quick", run_dir=tmp_path / "run", checkpoint_interval=1
        )
        progress = SessionProgress()
        for event in session.events():
            progress.observe(event)
        assert progress.completed == QUICK.num_cells
        assert progress.total == QUICK.num_cells
        assert progress.cells_journaled == QUICK.num_cells
        line = progress.render_line()
        assert f"{QUICK.num_cells}/{QUICK.num_cells} cells" in line
        assert "done" in line
        # summary table derived from GroupUpdated events matches the result
        assert [group.as_dict() for group in progress.groups] == [
            group.as_dict() for group in session.result.groups
        ]
        assert "definition1 (quick grid)" in progress.render_summary()


class TestApiV2Surface:
    def test_api_version_is_2_everywhere(self):
        from repro.registry import API_VERSION as registry_version

        assert repro.api.API_VERSION == 2
        assert registry_version == repro.api.API_VERSION

    def test_run_grid_is_a_deprecation_shim(self):
        with pytest.warns(DeprecationWarning, match="ExperimentSession"):
            shim = repro.api.run_grid
        result = shim(QUICK)
        assert result.cells == ExperimentSession(QUICK, mode="quick").run().cells

    def test_every_v1_name_is_still_importable(self):
        v1_names = [
            "API_VERSION", "ALGORITHMS", "ALL_REGISTRIES", "BEHAVIORS", "DELAYS",
            "PLACEMENTS", "TOPOLOGIES", "Registry", "RegistryEntry", "AlgorithmSpec",
            "parse_plugin_spec", "ReproError", "ScenarioFileError", "UnknownPluginError",
            "DiGraph", "NOT_APPLICABLE", "CellResult", "GridSpec", "GroupAggregate",
            "SweepCell", "SweepEngine", "SweepRunResult", "TopologySpec", "run_cell",
            "run_grid", "SCENARIOS", "Scenario", "dump_scenario_toml", "get_scenario",
            "load_scenario_file", "load_scenario_text", "scenario_names",
            "ConsensusConfig", "quick_consensus", "run_bw_experiment",
            "run_clique_experiment", "run_crash_experiment", "run_iterative_experiment",
            "run_local_average_experiment", "ComparisonReport", "compare",
            "compare_files", "load_artifact", "write_artifact",
        ]
        import warnings as _warnings

        for name in v1_names:
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", DeprecationWarning)
                assert getattr(repro.api, name) is not None, name

    def test_unknown_api_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.api.not_a_name


class TestCliSessions:
    def test_stop_policy_run_exits_zero_and_names_the_policy(self, tmp_path, capsys):
        target = tmp_path / "partial.json"
        code = main(
            ["run", "--scenario", "definition1", "--quick", "--no-table",
             "--stop-policy", "max-cells:2", "--output", str(target)]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "sealed early by stop policy 'max-cells'" in out
        assert load_artifact(target)["totals"]["cells"] == 2

    def test_unknown_stop_policy_is_a_clean_error(self, capsys):
        code = main(
            ["run", "--scenario", "definition1", "--quick", "--stop-policy", "nope:1"]
        )
        assert code == 2
        assert "stop-policies" in capsys.readouterr().err

    def test_resume_conflicts_with_scenario_selection(self, tmp_path, capsys):
        code = main(["run", "--resume", str(tmp_path), "--scenario", "table1"])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_journal_then_cli_resume_completes_and_gates_clean(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        session = ExperimentSession(CHECK, mode="quick", workers=2, run_dir=run_dir)
        _drop_after(session, 2)
        target = tmp_path / "table1.quick.json"
        code = main(["run", "--resume", str(run_dir), "--no-table", "--progress",
                     "--output", str(target)])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "replayed from journal" in out
        baseline = load_artifact(BASELINE_DIR / "table1.quick.json")
        assert compare(baseline, load_artifact(target)).ok

    def test_journal_flag_writes_a_sealed_journal(self, tmp_path, capsys):
        run_dir = tmp_path / "rd"
        target = tmp_path / "out.json"
        code = main(
            ["run", "--scenario", "definition1", "--quick", "--no-table", "--journal",
             "--run-dir", str(run_dir), "--output", str(target)]
        )
        assert code == EXIT_OK
        assert "journal:" in capsys.readouterr().out
        journal = load_journal(run_dir)
        assert journal.sealed and journal.seal_reason == "completed"
        assert target.exists()


SIGINT_SCENARIO = """
name = "sigint_probe"
description = "slow BW cells for the interrupt/resume exit-code test"

[spec]
algorithms = ["bw"]
f_values = [1]
behaviors = ["crash", "fixed-high"]
placements = ["random"]
seeds = [1, 2, 3, 4, 5, 6]
epsilon = 0.25
path_policy = "redundant"

[[spec.topologies]]
family = "clique"
params = { n = 5 }
"""


class TestSigintResume:
    """The full crash story through a real process: SIGINT -> exit 3 -> resume."""

    def test_sigint_exits_3_and_resume_is_byte_identical(self, tmp_path):
        scenario_file = tmp_path / "sigint_probe.toml"
        scenario_file.write_text(SIGINT_SCENARIO, encoding="utf-8")
        run_dir = tmp_path / "run"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.runner", "run",
             "--scenario-file", str(scenario_file), "--workers", "2",
             "--journal", "--run-dir", str(run_dir),
             "--output", str(tmp_path / "unused.json")],
            cwd=tmp_path, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        journal_file = journal_path(run_dir)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal_file.exists() and b'"record":"cell"' in journal_file.read_bytes():
                break
            if process.poll() is not None:
                break
            time.sleep(0.05)
        assert process.poll() is None, (
            f"run finished before it could be interrupted:\n{process.communicate()}"
        )
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=120)
        assert process.returncode == EXIT_INTERRUPTED, (stdout, stderr)
        assert str(run_dir) in stdout  # the resume hint names the run dir
        journal = load_journal(run_dir)
        assert not journal.sealed and journal.cells

        resumed = ExperimentSession.resume(run_dir, workers=2)
        resumed.run()
        assert resumed.finished.reason == "completed"

        spec = resumed.spec
        reference = SweepEngine(workers=1).run(spec)
        assert dumps_canonical(resumed.artifact_payload()) == dumps_canonical(
            artifact_payload(reference, mode="full", provenance=load_journal(run_dir).provenance())
        )
