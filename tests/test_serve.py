"""Tests for the serving layer (repro.store.serve + ``runner serve``).

Exercises the JSON query endpoints against a real store, the error
contract (400/404/503 as JSON), and the SSE endpoint — both replaying a
sealed journal and following a live run as it is written, asserting the
stream arrives in strict cell-index order and folds back into the run's
artifact byte-for-byte.
"""

import http.client
import json
import pathlib
import threading
import time

import pytest

from repro.runner.artifacts import artifact_payload, dumps_canonical, load_artifact
from repro.runner.harness import (
    CellResult,
    GridSpec,
    SweepEngine,
    SweepRunResult,
    aggregate_cells,
)
from repro.runner.journal import JournalWriter, journal_from_artifact, load_journal
from repro.runner.scenarios import get_scenario
from repro.store import ResultsStore, ServeConfig, journal_record_to_event, make_server

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "benchmarks" / "baselines"


# ----------------------------------------------------------------------
# harnessing
# ----------------------------------------------------------------------
class Server:
    """One live server on an ephemeral port, plus a tiny HTTP client."""

    def __init__(self, config):
        self.server = make_server(config)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
        )
        self.thread.start()

    def get_json(self, path):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()

    def get_sse(self, path, timeout=30.0):
        """Read SSE frames until the server closes the stream."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            if response.status != 200:
                return response.status, json.loads(response.read().decode("utf-8"))
            events = []
            event = None
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: "):
                    events.append((event, json.loads(line[len("data: "):])))
                # blank lines terminate a frame; comments (keepalives) skipped
            return response.status, events
        finally:
            conn.close()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


@pytest.fixture
def serve(tmp_path):
    """Factory fixture: build a server over a store/runs-dir, auto-closed."""
    servers = []

    def start(**overrides):
        overrides.setdefault("store_path", tmp_path / "store.sqlite")
        overrides.setdefault("runs_dir", tmp_path / "runs")
        config = ServeConfig(host="127.0.0.1", port=0, poll_interval=0.02, **overrides)
        server = Server(config)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


@pytest.fixture
def populated(tmp_path):
    """A store holding two figure1b runs (distinct commits) and one bench."""
    payload = load_artifact(BASELINES / "figure1b.quick.json")
    with ResultsStore(tmp_path / "store.sqlite") as store:
        store.ingest_run_payload(dict(payload, git={"commit": "a" * 40, "dirty": False}))
        store.ingest_run_payload(dict(payload, git={"commit": "b" * 40, "dirty": False}))
        store.ingest_run_payload(load_artifact(BASELINES / "figure1b.full.json"))
        store.ingest_bench_payload("speed", {"cells_per_second": 10.0})
    return tmp_path / "store.sqlite"


# ----------------------------------------------------------------------
# the record -> event mapping
# ----------------------------------------------------------------------
class TestRecordMapping:
    def test_header_maps_to_run_started_with_total(self):
        spec = get_scenario("necessity").grid(quick=True)
        event, payload = journal_record_to_event(
            {
                "record": "header",
                "scenario": "necessity",
                "mode": "quick",
                "spec": spec.as_dict(),
                "spec_hash": "h",
                "environment": {"python": "x"},
                "git": None,
            }
        )
        assert event == "RunStarted"
        assert payload["total_cells"] == spec.num_cells
        assert payload["spec"] == spec.as_dict()

    def test_cell_and_seal_map_verbatim(self):
        cell = {"index": 0, "success": True}
        assert journal_record_to_event({"record": "cell", "cell": cell}) == (
            "CellCompleted",
            cell,
        )
        event, payload = journal_record_to_event(
            {"record": "seal", "reason": "completed", "totals": {"cells": 1}}
        )
        assert event == "RunFinished" and payload["reason"] == "completed"

    def test_unknown_record_kind_is_skipped(self):
        assert journal_record_to_event({"record": "checkpoint"}) is None
        assert journal_record_to_event({}) is None


# ----------------------------------------------------------------------
# JSON endpoints
# ----------------------------------------------------------------------
class TestJSONEndpoints:
    def test_index_lists_every_endpoint(self, serve):
        server = serve()
        status, body = server.get_json("/")
        assert status == 200
        paths = [entry["path"] for entry in body["endpoints"]]
        assert "/v1/trend" in paths and "/v1/live/<run>/events" in paths

    def test_missing_store_is_503(self, serve):
        server = serve()
        status, body = server.get_json("/v1/scenarios")
        assert status == 503 and "error" in body

    def test_unknown_endpoint_is_404(self, serve):
        server = serve()
        status, body = server.get_json("/v1/nope")
        assert status == 404 and "error" in body

    def test_scenarios_runs_and_trend(self, serve, populated):
        server = serve(store_path=populated)
        status, body = server.get_json("/v1/scenarios")
        assert status == 200
        assert [row["scenario"] for row in body["scenarios"]] == ["figure1b"]
        status, body = server.get_json("/v1/runs?scenario=figure1b&mode=quick")
        assert status == 200 and len(body["runs"]) == 2
        status, body = server.get_json(
            "/v1/trend?scenario=figure1b&metric=success_rate&mode=quick"
        )
        assert status == 200
        commits = [point["git_commit"] for point in body["points"]]
        assert commits == ["a" * 40, "b" * 40]

    def test_trend_requires_scenario_and_validates_metric(self, serve, populated):
        server = serve(store_path=populated)
        status, body = server.get_json("/v1/trend")
        assert status == 400 and "scenario" in body["error"]
        status, body = server.get_json("/v1/trend?scenario=figure1b&metric=bogus")
        assert status == 400 and "unknown run metric" in body["error"]
        status, body = server.get_json("/v1/trend?scenario=figure1b&f=notanint")
        assert status == 400 and "integer" in body["error"]

    def test_group_trend_via_axis_params(self, serve, populated):
        payload = load_artifact(BASELINES / "figure1b.full.json")
        group = payload["groups"][0]
        server = serve(store_path=populated)
        status, body = server.get_json(
            "/v1/trend?scenario=figure1b&mode=full"
            f"&algorithm={group['algorithm']}&topology={group['topology']}"
            f"&f={group['f']}&behavior={group['behavior']}&placement={group['placement']}"
        )
        assert status == 200 and len(body["points"]) == 1
        assert body["points"][0]["value"] == group["success_rate"]

    def test_variance_endpoint(self, serve, populated):
        server = serve(store_path=populated)
        status, body = server.get_json("/v1/variance?scenario=figure1b&mode=full")
        assert status == 200 and body["groups"]
        for group in body["groups"]:
            p = group["success_rate"]
            assert group["success_variance"] == pytest.approx(p * (1 - p))

    def test_bench_endpoints(self, serve, populated):
        server = serve(store_path=populated)
        status, body = server.get_json("/v1/benches")
        assert status == 200
        assert [bench["name"] for bench in body["benches"]] == ["speed"]
        status, body = server.get_json("/v1/benches/metrics?name=speed")
        assert status == 200 and "cells_per_second" in body["metrics"]
        status, body = server.get_json(
            "/v1/benches/trend?name=speed&metric=cells_per_second"
        )
        assert status == 200 and body["points"][0]["value"] == 10.0
        status, body = server.get_json("/v1/benches/trend?name=speed")
        assert status == 400  # metric is required

    def test_snapshots_endpoint(self, serve, populated):
        with ResultsStore(populated) as store:
            store.record_snapshot(
                {"run_dir": "/x", "journal": {"scenario": "figure1b", "mode": "full"}}
            )
        server = serve(store_path=populated)
        status, body = server.get_json("/v1/snapshots?scenario=figure1b")
        assert status == 200 and len(body["snapshots"]) == 1
        status, body = server.get_json("/v1/snapshots?limit=bogus")
        assert status == 400


# ----------------------------------------------------------------------
# SSE: live-run listing, guards, replay, live follow
# ----------------------------------------------------------------------
class TestLiveEndpoints:
    def test_live_listing_and_name_guards(self, serve, tmp_path):
        runs_dir = tmp_path / "runs"
        payload = load_artifact(BASELINES / "necessity.quick.json")
        journal_from_artifact(runs_dir / "done", payload)
        server = serve()
        status, body = server.get_json("/v1/live")
        assert status == 200
        assert body["runs"][0]["run"] == "done"
        assert body["runs"][0]["sealed"] is True
        status, body = server.get_json("/v1/live/../events")
        assert status == 400
        status, body = server.get_json("/v1/live/a/b/events")
        assert status == 400
        # a percent-encoded slash is NOT decoded, so it can't traverse either
        status, body = server.get_json("/v1/live/..%2Fdone/events")
        assert status == 404
        status, body = server.get_json("/v1/live/ghost/events")
        assert status == 404

    def test_no_runs_dir_means_no_live_streaming(self, serve):
        server = serve(runs_dir=None)
        status, body = server.get_json("/v1/live")
        assert status == 200 and body["runs"] == []
        status, body = server.get_json("/v1/live/x/events")
        assert status == 404

    def test_sealed_journal_replays_in_order_and_closes(self, serve, tmp_path):
        payload = load_artifact(BASELINES / "necessity.quick.json")
        journal_from_artifact(tmp_path / "runs" / "done", payload)
        server = serve()
        status, events = server.get_sse("/v1/live/done/events")
        assert status == 200
        kinds = [event for event, _ in events]
        assert kinds[0] == "RunStarted" and kinds[-1] == "RunFinished"
        cells = [data for event, data in events if event == "CellCompleted"]
        assert [cell["index"] for cell in cells] == list(range(len(payload["cells"])))
        assert events[0][1]["total_cells"] == len(payload["cells"])
        assert events[-1][1]["totals"] == payload["totals"]

    def test_unsealed_journal_times_out_with_event(self, serve, tmp_path):
        spec = get_scenario("necessity").grid(quick=True)
        writer = JournalWriter.create(
            tmp_path / "runs" / "stalled", spec, mode="quick", git=None
        )
        writer.close()
        server = serve(sse_timeout=0.2)
        status, events = server.get_sse("/v1/live/stalled/events?timeout=0.2")
        assert status == 200
        assert [event for event, _ in events] == ["RunStarted", "StreamTimeout"]

    def test_bad_timeout_param_is_400(self, serve, tmp_path):
        payload = load_artifact(BASELINES / "necessity.quick.json")
        journal_from_artifact(tmp_path / "runs" / "done", payload)
        server = serve()
        status, body = server.get_sse("/v1/live/done/events?timeout=forever")
        assert status == 400 and "timeout" in body["error"]

    def test_live_run_streams_in_order_and_folds_to_the_artifact(
        self, serve, tmp_path
    ):
        """The satellite: a journaled quick run served live arrives as
        RunStarted / CellCompleted (strict index order) / RunFinished, the
        stream closes on the seal, and folding the streamed events yields
        the run's artifact byte-for-byte."""
        scenario = get_scenario("necessity")
        spec = scenario.grid(quick=True)
        run_dir = tmp_path / "runs" / "live"
        # the journal must exist before the client connects (404 otherwise)
        writer = JournalWriter.create(run_dir, spec, mode="quick", git=None)
        server = serve()

        def sweep():
            results = []
            for cell in SweepEngine(workers=1).stream(spec):
                writer.append_cell(cell)
                results.append(cell)
                time.sleep(0.01)  # let the tail reader interleave with writes
            writer.seal("completed", results)
            writer.close()

        thread = threading.Thread(target=sweep, daemon=True)
        thread.start()
        status, events = server.get_sse("/v1/live/live/events")
        thread.join(timeout=30)
        assert status == 200

        kinds = [event for event, _ in events]
        assert kinds[0] == "RunStarted"
        assert kinds[-1] == "RunFinished"  # and the server closed the stream
        started = events[0][1]
        assert started["scenario"] == "necessity" and started["mode"] == "quick"
        assert started["total_cells"] == spec.num_cells

        streamed = [data for event, data in events if event == "CellCompleted"]
        assert [cell["index"] for cell in streamed] == list(range(spec.num_cells))

        # fold the stream exactly like a client would: rebuild the run from
        # the streamed payloads alone, then compare canonical bytes
        cells = [CellResult.from_dict(cell) for cell in streamed]
        folded = SweepRunResult(
            spec=GridSpec.from_dict(started["spec"]),
            cells=cells,
            groups=aggregate_cells(cells),
        )
        from_stream = dumps_canonical(
            artifact_payload(
                folded,
                mode=started["mode"],
                provenance={
                    "environment": started["environment"],
                    "git": started["git"],
                },
            )
        )
        journal = load_journal(run_dir)
        assert journal.sealed
        from_journal = dumps_canonical(
            artifact_payload(
                journal.fold(), mode=journal.mode, provenance=journal.provenance()
            )
        )
        assert from_stream == from_journal
        assert events[-1][1]["totals"]["cells"] == spec.num_cells
