"""The topology zoo: seeded scale-free / small-world / prescribed-degree /
Kronecker families.

Covers, for every zoo generator: seed determinism (same seed → identical
edge set, fresh seed → fresh sample), directedness semantics, a
structural oracle (degree law, rewire fraction, Kronecker limit cases —
``networkx`` as the reference where its construction is deterministic),
and the uniform parameter-validation contract (:class:`GraphError` naming
the family and parameter).  The ``ensure_connected`` flag is exercised
uniformly across *all* random families.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    barabasi_albert_digraph,
    configuration_model_digraph,
    random_bidirected_graph,
    random_digraph,
    random_k_out_digraph,
    stochastic_kronecker_digraph,
    watts_strogatz_bidirected,
    watts_strogatz_digraph,
)
from repro.registry import TOPOLOGIES

ZOO_NAMES = (
    "barabasi-albert",
    "watts-strogatz",
    "watts-strogatz-bidirected",
    "configuration-model",
    "stochastic-kronecker",
)

#: family -> kwargs for a representative sample; every callable accepts
#: ``seed`` and ``ensure_connected`` on top of these.
RANDOM_FAMILIES = {
    "random-digraph": (random_digraph, {"n": 12, "p": 0.15}),
    "random-bidirected": (random_bidirected_graph, {"n": 12, "p": 0.15}),
    "random-k-out": (random_k_out_digraph, {"n": 12, "k": 2}),
    "barabasi-albert": (barabasi_albert_digraph, {"n": 14, "m": 2}),
    "watts-strogatz": (watts_strogatz_digraph, {"n": 14, "k": 4, "beta": 0.3}),
    "watts-strogatz-bidirected": (
        watts_strogatz_bidirected,
        {"n": 14, "k": 4, "beta": 0.3},
    ),
    "configuration-model": (
        configuration_model_digraph,
        {"out_degrees": "3,3,2,2,1,1", "in_degrees": "2,2,2,2,2,2"},
    ),
    "stochastic-kronecker": (stochastic_kronecker_digraph, {"k": 4}),
}


def edge_set(graph: DiGraph) -> set:
    return set(graph.edges)


class TestRegistryAndDeterminism:
    def test_zoo_families_registered(self):
        for name in ZOO_NAMES:
            assert TOPOLOGIES.get(name) is RANDOM_FAMILIES[name][0]

    @pytest.mark.parametrize("family", sorted(RANDOM_FAMILIES))
    def test_same_seed_same_graph(self, family):
        factory, kwargs = RANDOM_FAMILIES[family]
        first = factory(seed=1234, **kwargs)
        second = factory(seed=1234, **kwargs)
        assert edge_set(first) == edge_set(second)
        assert list(first.nodes) == list(second.nodes)

    @pytest.mark.parametrize("family", sorted(RANDOM_FAMILIES))
    def test_fresh_seed_fresh_sample(self, family):
        factory, kwargs = RANDOM_FAMILIES[family]
        samples = {frozenset(edge_set(factory(seed=seed, **kwargs))) for seed in range(8)}
        assert len(samples) > 1, f"{family} ignored its seed"

    @pytest.mark.parametrize("family", sorted(RANDOM_FAMILIES))
    def test_ensure_connected_uniformly_supported(self, family):
        factory, kwargs = RANDOM_FAMILIES[family]
        for seed in range(5):
            graph = factory(seed=seed, ensure_connected=True, **kwargs)
            assert graph.is_strongly_connected(), f"{family} seed={seed}"

    @pytest.mark.parametrize("family", sorted(RANDOM_FAMILIES))
    def test_ensure_connected_defaults_off(self, family):
        factory, kwargs = RANDOM_FAMILIES[family]
        assert edge_set(factory(seed=7, **kwargs)) == edge_set(
            factory(seed=7, ensure_connected=False, **kwargs)
        )


class TestBarabasiAlbert:
    def test_newcomer_out_degree_is_exactly_m(self):
        n, m = 20, 3
        graph = barabasi_albert_digraph(n, m, seed=5)
        core = m + 1
        for u in range(core, n):
            out = sum(1 for v in range(n) if graph.has_edge(u, v))
            assert out == m
        assert graph.num_edges == core * (core - 1) + (n - core) * m

    def test_core_is_bidirected_newcomer_edges_one_way(self):
        graph = barabasi_albert_digraph(20, 2, seed=5)
        for u in range(3):
            for v in range(3):
                if u != v:
                    assert graph.has_edge(u, v)
        one_way = [
            (u, v) for (u, v) in graph.edges if u >= 3 and not graph.has_edge(v, u)
        ]
        assert one_way, "newcomer edges must not be symmetrized"

    def test_preferential_attachment_favours_old_nodes(self):
        # The rich-get-richer law: averaged over seeds, the oldest non-core
        # nodes accumulate strictly more total degree than the youngest.
        n, m, seeds = 40, 2, range(10)
        old_total = young_total = 0
        for seed in seeds:
            graph = barabasi_albert_digraph(n, m, seed=seed)
            degree = {u: 0 for u in range(n)}
            for u, v in graph.edges:
                degree[u] += 1
                degree[v] += 1
            old_total += sum(degree[u] for u in range(m + 1, m + 6))
            young_total += sum(degree[u] for u in range(n - 5, n))
        assert old_total > young_total


class TestWattsStrogatz:
    def test_beta_zero_is_exact_ring_lattice(self):
        n, k = 12, 4
        graph = watts_strogatz_digraph(n, k, 0.0, seed=3)
        expected = {
            (u, (u + offset) % n) for offset in (1, 2) for u in range(n)
        }
        assert edge_set(graph) == expected

    def test_bidirected_beta_zero_matches_networkx(self):
        n, k = 12, 4
        graph = watts_strogatz_bidirected(n, k, 0.0, seed=3)
        oracle = nx.watts_strogatz_graph(n, k, 0.0)
        expected = {(u, v) for u, v in oracle.edges} | {
            (v, u) for u, v in oracle.edges
        }
        assert edge_set(graph) == expected

    def test_out_degree_preserved_under_rewiring(self):
        n, k = 16, 4
        graph = watts_strogatz_digraph(n, k, 0.7, seed=9)
        for u in range(n):
            out = sum(1 for v in range(n) if graph.has_edge(u, v))
            assert out == k // 2

    def test_rewired_fraction_grows_with_beta(self):
        n, k = 24, 4
        lattice = {(u, (u + offset) % n) for offset in (1, 2) for u in range(n)}

        def rewired(beta: float) -> int:
            total = 0
            for seed in range(8):
                graph = watts_strogatz_digraph(n, k, beta, seed=seed)
                total += len(edge_set(graph) - lattice)
            return total

        low, high = rewired(0.1), rewired(0.9)
        assert 0 < low < high

    def test_bidirected_edges_are_symmetric(self):
        graph = watts_strogatz_bidirected(14, 4, 0.5, seed=11)
        for u, v in graph.edges:
            assert graph.has_edge(v, u)


class TestConfigurationModel:
    def test_realized_degrees_bounded_by_prescription(self):
        outs, ins = [3, 3, 2, 2, 1, 1], [2, 2, 2, 2, 2, 2]
        for seed in range(6):
            graph = configuration_model_digraph(outs, ins, seed=seed)
            for u in range(6):
                out = sum(1 for v in range(6) if graph.has_edge(u, v))
                into = sum(1 for v in range(6) if graph.has_edge(v, u))
                assert out <= outs[u]
                assert into <= ins[u]

    def test_string_form_equals_list_form(self):
        from_list = configuration_model_digraph([3, 3, 2, 2], [2, 3, 3, 2], seed=4)
        from_string = configuration_model_digraph("3,3,2,2", "2,3,3,2", seed=4)
        assert edge_set(from_list) == edge_set(from_string)


class TestStochasticKronecker:
    def test_node_count_is_two_to_the_k(self):
        for k in (1, 2, 3, 5):
            assert stochastic_kronecker_digraph(k, seed=0).num_nodes == 2 ** k

    def test_all_one_initiator_is_complete(self):
        graph = stochastic_kronecker_digraph(3, a=1.0, b=1.0, c=1.0, d=1.0, seed=0)
        n = 8
        assert graph.num_edges == n * (n - 1)

    def test_all_zero_initiator_is_empty(self):
        graph = stochastic_kronecker_digraph(3, a=0.0, b=0.0, c=0.0, d=0.0, seed=0)
        assert graph.num_edges == 0

    def test_core_periphery_shape(self):
        # a > d: the all-zero-bits node sits in the dense core, the
        # all-one-bits node in the sparse periphery (averaged over seeds).
        k, n = 4, 16
        core_total = periphery_total = 0
        for seed in range(10):
            graph = stochastic_kronecker_digraph(k, seed=seed)
            degree = {u: 0 for u in range(n)}
            for u, v in graph.edges:
                degree[u] += 1
                degree[v] += 1
            core_total += degree[0]
            periphery_total += degree[n - 1]
        assert core_total > periphery_total

    def test_asymmetric_initiator_yields_directed_edges(self):
        graph = stochastic_kronecker_digraph(4, b=0.8, c=0.2, seed=2)
        asymmetric = [(u, v) for u, v in graph.edges if not graph.has_edge(v, u)]
        assert asymmetric


class TestValidation:
    @pytest.mark.parametrize(
        "factory, kwargs, fragment",
        [
            (barabasi_albert_digraph, {"n": 1, "m": 1}, "barabasi-albert"),
            (barabasi_albert_digraph, {"n": 5, "m": 0}, "'m'"),
            (barabasi_albert_digraph, {"n": 5, "m": 5}, "'m'"),
            (watts_strogatz_digraph, {"n": 2, "k": 2, "beta": 0.5}, "'n'"),
            (watts_strogatz_digraph, {"n": 8, "k": 3, "beta": 0.5}, "even"),
            (watts_strogatz_digraph, {"n": 8, "k": 8, "beta": 0.5}, "'k'"),
            (watts_strogatz_digraph, {"n": 8, "k": 4, "beta": 1.5}, "'beta'"),
            (
                watts_strogatz_bidirected,
                {"n": 8, "k": 3, "beta": 0.5},
                "watts-strogatz-bidirected",
            ),
            (
                configuration_model_digraph,
                {"out_degrees": "1,1", "in_degrees": "1,1,0"},
                "same length",
            ),
            (
                configuration_model_digraph,
                {"out_degrees": "2,1", "in_degrees": "1,1"},
                "must sum",
            ),
            (
                configuration_model_digraph,
                {"out_degrees": "5,0", "in_degrees": "2,3"},
                "below n",
            ),
            (
                configuration_model_digraph,
                {"out_degrees": "a,b", "in_degrees": "1,1"},
                "comma-separated",
            ),
            (
                configuration_model_digraph,
                {"out_degrees": 7, "in_degrees": "1,1"},
                "degree sequence",
            ),
            (stochastic_kronecker_digraph, {"k": 0}, "'k'"),
            (stochastic_kronecker_digraph, {"k": 11}, "'k'"),
            (stochastic_kronecker_digraph, {"k": 2.5}, "integer"),
            (stochastic_kronecker_digraph, {"k": 3, "a": 1.5}, "'a'"),
            (stochastic_kronecker_digraph, {"k": 3, "d": -0.1}, "'d'"),
        ],
    )
    def test_bad_parameters_raise_graph_error(self, factory, kwargs, fragment):
        with pytest.raises(GraphError) as error:
            factory(**kwargs)
        assert fragment in str(error.value)

    def test_validation_raises_before_any_sampling(self):
        # The grid layer calls validate_params() in the parent process; the
        # factories must raise on bad params without consuming the RNG.
        with pytest.raises(GraphError):
            barabasi_albert_digraph(5, 9, seed=1)
