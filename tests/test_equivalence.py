"""Tests for the Theorem 17 equivalences and the literal reach oracles."""

from __future__ import annotations

import pytest

from repro.conditions.equivalence import (
    all_equivalences_agree,
    verify_all_equivalences,
    verify_bcs_three_reach,
    verify_cca_two_reach,
    verify_ccs_one_reach,
)
from repro.conditions.naive import (
    check_one_reach_naive,
    check_three_reach_naive,
    check_two_reach_naive,
)
from repro.conditions.reach_conditions import (
    check_one_reach,
    check_three_reach,
    check_two_reach,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    clique_with_feeders,
    complete_digraph,
    directed_cycle,
    figure_1a,
    random_digraph,
    star_out,
    two_cliques_bridged,
)

SMALL_GRAPHS = [
    complete_digraph(4),
    directed_cycle(5),
    star_out(5),
    figure_1a(),
    clique_with_feeders(3, 2),
    two_cliques_bridged(3, 2, 2),
    DiGraph(edges=[(0, 1), (1, 2), (2, 0), (0, 3), (3, 0), (3, 2)]),
]


class TestTheorem17:
    @pytest.mark.parametrize("f", [0, 1, 2])
    def test_equivalences_on_structured_graphs(self, f):
        for graph in SMALL_GRAPHS:
            assert all_equivalences_agree(graph, f), (graph.name, f)

    def test_equivalences_on_random_digraphs(self):
        for seed in range(8):
            graph = random_digraph(6, 0.35, seed=seed, ensure_connected=(seed % 2 == 0))
            for f in (0, 1):
                results = verify_all_equivalences(graph, f)
                assert all(result.agree for result in results), (seed, f)

    def test_individual_pair_helpers(self):
        graph = figure_1a()
        assert verify_ccs_one_reach(graph, 1).agree
        assert verify_cca_two_reach(graph, 1).agree
        assert verify_bcs_three_reach(graph, 1).agree

    def test_describe_mentions_verdicts(self):
        result = verify_bcs_three_reach(complete_digraph(4), 1)
        text = result.describe()
        assert "AGREE" in text and "3-reach" in text

    def test_results_expose_reports(self):
        result = verify_bcs_three_reach(complete_digraph(3), 1)
        assert result.agree
        assert not result.reach_report.holds
        assert not result.partition_report.holds


class TestNaiveOracles:
    @pytest.mark.parametrize("f", [0, 1])
    def test_naive_matches_optimized_on_small_graphs(self, f):
        graphs = [
            complete_digraph(4),
            directed_cycle(4),
            star_out(4),
            DiGraph(edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]),
        ]
        for graph in graphs:
            assert check_one_reach_naive(graph, f).holds == check_one_reach(graph, f).holds
            assert check_two_reach_naive(graph, f).holds == check_two_reach(graph, f).holds
            assert check_three_reach_naive(graph, f).holds == check_three_reach(graph, f).holds

    def test_naive_matches_on_random_graphs(self):
        for seed in range(5):
            graph = random_digraph(5, 0.4, seed=seed)
            assert (
                check_three_reach_naive(graph, 1).holds
                == check_three_reach(graph, 1).holds
            )

    def test_naive_violation_certificate(self):
        report = check_three_reach_naive(complete_digraph(3), 1)
        assert not report.holds
        violation = report.reach_violation
        assert not (violation.reach_u & violation.reach_v)
