"""Unit tests for condition certificates and report objects."""

from __future__ import annotations

from repro.conditions.certificates import (
    ConditionReport,
    FeasibilityRow,
    PartitionViolation,
    ReachViolation,
)


def make_reach_violation():
    return ReachViolation(
        u="u",
        v="v",
        shared_fault_set=frozenset({"f"}),
        fault_set_u=frozenset({"a"}),
        fault_set_v=frozenset({"b"}),
        reach_u=frozenset({"u", "x"}),
        reach_v=frozenset({"v", "y"}),
    )


class TestReachViolation:
    def test_excluded_sets_are_unions(self):
        violation = make_reach_violation()
        assert violation.excluded_for_u() == frozenset({"f", "a"})
        assert violation.excluded_for_v() == frozenset({"f", "b"})

    def test_describe_mentions_everything(self):
        text = make_reach_violation().describe()
        assert "'u'" in text and "'v'" in text and "Fu=" in text and "Fv=" in text


class TestPartitionViolation:
    def test_describe(self):
        violation = PartitionViolation(
            fault_set=frozenset({"f"}),
            left=frozenset({"l"}),
            center=frozenset(),
            right=frozenset({"r"}),
            left_incoming=0,
            right_incoming=1,
        )
        text = violation.describe()
        assert "L=" in text and "R=" in text and "incoming 1" in text


class TestConditionReport:
    def test_bool_and_violation_accessor(self):
        holds = ConditionReport(condition="3-reach", f=1, holds=True)
        assert bool(holds) and holds.violation is None

        violated = ConditionReport(
            condition="3-reach", f=1, holds=False, reach_violation=make_reach_violation()
        )
        assert not bool(violated)
        assert violated.violation is violated.reach_violation

    def test_describe_includes_status_and_witness(self):
        report = ConditionReport(
            condition="2-reach", f=2, holds=False, reach_violation=make_reach_violation()
        )
        text = report.describe()
        assert "VIOLATED" in text and "2-reach" in text and "reach" in text
        assert "HOLDS" in ConditionReport(condition="CCS", f=0, holds=True).describe()


class TestFeasibilityRow:
    def test_verdict_lookup(self):
        row = FeasibilityRow(
            graph_name="g", n=5, f=1, verdicts=(("3-reach", True), ("CCA", False))
        )
        assert row.verdict("3-reach") is True
        assert row.verdict("CCA") is False
        assert row.verdict("missing") is None
