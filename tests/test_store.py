"""Tests for the cross-run results store (repro.store).

Covers the schema/migration ladder, idempotent ingestion of all three
source kinds (artifacts, journals, BENCH records), the typed query API
(trends, variance, bench trajectories), snapshots, and the CLI wiring
(store init --bootstrap / ingest / query / fabric status --store).
"""

import json
import pathlib
import sqlite3

import pytest

from repro.exceptions import StoreError
from repro.runner.artifacts import dumps_canonical, load_artifact
from repro.runner.cli import main
from repro.runner.journal import journal_from_artifact
from repro.store import (
    SCHEMA_VERSION,
    ResultsStore,
    flatten_metrics,
    schema_version,
)
from repro.store.schema import MIGRATIONS, table_names

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "benchmarks" / "baselines"
BENCH_DIR = REPO_ROOT / "benchmarks" / "results"

EXPECTED_TABLES = [
    "bench_metrics",
    "benches",
    "phase_curves",
    "phase_points",
    "run_cells",
    "run_groups",
    "runs",
    "snapshots",
]


@pytest.fixture
def store(tmp_path):
    with ResultsStore(tmp_path / "store.sqlite") as store:
        yield store


def baseline_payload(name="figure1b.quick.json"):
    return load_artifact(BASELINES / name)


# ----------------------------------------------------------------------
# schema + migrations
# ----------------------------------------------------------------------
class TestSchema:
    def test_fresh_store_is_at_current_version(self, store):
        assert schema_version(store.connection) == SCHEMA_VERSION
        assert table_names(store.connection) == EXPECTED_TABLES

    def test_v1_database_migrates_forward(self, tmp_path):
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(MIGRATIONS[1])
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        assert "snapshots" not in table_names(conn)
        conn.close()
        with ResultsStore(path) as store:
            assert schema_version(store.connection) == SCHEMA_VERSION
            assert "snapshots" in table_names(store.connection)
            # v1 data structures are untouched by the v2 step
            store.record_snapshot({"run_dir": "x"})
            assert len(store.snapshots()) == 1

    def test_newer_database_is_refused(self, tmp_path):
        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="newer schema"):
            ResultsStore(path)

    def test_readonly_requires_existing_current_store(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            ResultsStore(tmp_path / "missing.sqlite", readonly=True)
        ResultsStore(tmp_path / "store.sqlite").close()
        with ResultsStore(tmp_path / "store.sqlite", readonly=True) as store:
            assert store.scenarios() == []
            with pytest.raises(sqlite3.OperationalError):
                store.record_snapshot({"run_dir": "x"})

    def test_schema_doc_lists_every_table(self):
        doc = (REPO_ROOT / "docs" / "store-schema.md").read_text(encoding="utf-8")
        for table in EXPECTED_TABLES:
            assert f"`{table}`" in doc, f"docs/store-schema.md does not document {table}"


# ----------------------------------------------------------------------
# ingestion: artifacts, journals, BENCH records
# ----------------------------------------------------------------------
class TestIngest:
    def test_artifact_roundtrip_and_idempotency(self, store):
        path = BASELINES / "figure1b.quick.json"
        (first,) = store.ingest(path)
        assert first.kind == "run" and first.action == "inserted"
        (again,) = store.ingest(path)
        assert again.action == "unchanged" and again.row_id == first.row_id
        runs = store.runs("figure1b")
        assert len(runs) == 1
        payload = baseline_payload()
        assert runs[0]["cells"] == payload["totals"]["cells"]
        assert runs[0]["success_rate"] == payload["totals"]["success_rate"]

    def test_same_key_different_bytes_replaces(self, store, tmp_path):
        payload = baseline_payload()
        store.ingest_run_payload(payload)
        # same spec/scenario/commit/mode, different content (environment is
        # not part of the key but is part of the digest)
        modified = dict(payload, environment={"python": "changed"})
        report = store.ingest_run_payload(modified)
        assert report.action == "replaced"
        assert len(store.runs("figure1b")) == 1
        # the old row's cells cascaded away with it
        count = store.connection.execute("SELECT COUNT(*) FROM run_cells").fetchone()[0]
        assert count == len(payload["cells"])

    def test_journal_and_artifact_dedupe_to_one_row(self, store, tmp_path):
        payload = baseline_payload()
        journal_from_artifact(tmp_path / "run", payload)
        (from_journal,) = store.ingest(tmp_path / "run")
        assert from_journal.kind == "run" and from_journal.action == "inserted"
        report = store.ingest_run_payload(payload)
        assert report.action == "unchanged" and report.row_id == from_journal.row_id

    def test_unsealed_journal_ingests_and_reseals_replace(self, store, tmp_path):
        payload = baseline_payload()
        journal_from_artifact(tmp_path / "run", payload)
        journal_file = tmp_path / "run" / "journal.jsonl"
        lines = journal_file.read_text(encoding="utf-8").splitlines(keepends=True)
        truncated = tmp_path / "live"
        truncated.mkdir()
        # header + all but the last cell, no seal: a run still in flight
        (truncated / "journal.jsonl").write_text("".join(lines[:-2]), encoding="utf-8")
        (live,) = store.ingest(truncated)
        assert live.action == "inserted"
        row = store.runs("figure1b")[0]
        assert row["sealed"] == 0 and row["seal_reason"] is None
        assert row["cells"] == len(payload["cells"]) - 1
        # the finished journal has the same key -> the live row is replaced
        (done,) = store.ingest(tmp_path / "run")
        assert done.action == "replaced"
        row = store.runs("figure1b")[0]
        assert row["sealed"] == 1 and row["cells"] == len(payload["cells"])

    def test_bench_ingest_and_flattening(self, store):
        path = BENCH_DIR / "BENCH_journal.json"
        (report,) = store.ingest(path)
        assert report.kind == "bench" and report.action == "inserted"
        (again,) = store.ingest(path)
        assert again.action == "unchanged"
        names = [bench["name"] for bench in store.bench_names()]
        assert names == ["journal"]
        metrics = store.bench_metrics("journal")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert set(metrics) == set(flatten_metrics(payload))
        assert all("." in metric or metric.isidentifier() for metric in metrics)

    def test_flatten_metrics_shapes(self):
        flat = flatten_metrics(
            {"a": {"b": 1, "skip": "text", "flag": True}, "xs": [2.5, {"c": 3}]}
        )
        assert flat == {"a.b": 1.0, "xs.0": 2.5, "xs.1.c": 3.0}

    def test_unrecognized_file_is_error_when_direct_skip_in_tree(self, store, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{\"not\": \"an artifact\"}", encoding="utf-8")
        with pytest.raises(StoreError, match="cannot ingest"):
            store.ingest(junk)
        reports = store.ingest(tmp_path)
        assert [r.action for r in reports] == ["skipped"]

    def test_missing_source_raises(self, store, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            store.ingest(tmp_path / "nope")

    def test_tree_ingest_walks_artifacts_journals_and_benches(self, store, tmp_path):
        payload = baseline_payload()
        (tmp_path / "a.json").write_text(dumps_canonical(payload), encoding="utf-8")
        journal_from_artifact(
            tmp_path / "nested" / "run", baseline_payload("table1.quick.json")
        )
        bench = tmp_path / "BENCH_x.json"
        bench.write_text("{\"metric\": 1}", encoding="utf-8")
        reports = store.ingest(tmp_path)
        assert sorted(r.kind for r in reports) == ["bench", "run", "run"]
        assert all(r.action == "inserted" for r in reports)


# ----------------------------------------------------------------------
# bootstrap (satellite: the committed corpus, idempotently)
# ----------------------------------------------------------------------
class TestBootstrap:
    def test_bootstrap_ingests_corpus_and_is_idempotent(self, store):
        baselines = sorted(BASELINES.glob("*.json"))
        benches = sorted(BENCH_DIR.glob("BENCH_*.json"))
        assert len(baselines) == 32  # the committed corpus this repo gates on
        reports = store.bootstrap(REPO_ROOT)
        assert len(reports) == len(baselines) + len(benches)
        assert all(report.action == "inserted" for report in reports)
        counts = {
            table: store.connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in EXPECTED_TABLES
        }
        # double-ingest is a no-op: same reports say unchanged, no row moves
        again = store.bootstrap(REPO_ROOT)
        assert all(report.action == "unchanged" for report in again)
        for table, count in counts.items():
            assert (
                store.connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                == count
            )
        assert len(store.scenarios()) == 14  # every scenario, quick + full


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
def _with_commit(payload, commit):
    return dict(payload, git={"commit": commit, "dirty": False})


class TestQueries:
    def test_run_level_trend_across_commits(self, store):
        payload = baseline_payload()
        store.ingest_run_payload(_with_commit(payload, "a" * 40))
        store.ingest_run_payload(_with_commit(payload, "b" * 40))
        points = store.trend("figure1b", "success_rate", mode="quick")
        assert [point.git_commit[0] for point in points] == ["a", "b"]
        assert all(point.value == payload["totals"]["success_rate"] for point in points)
        assert all(point.metric == "success_rate" and point.group is None for point in points)
        # ingestion order is the trend order
        assert points[0].ingested_at <= points[1].ingested_at

    def test_group_level_trend_with_axis_filters(self, store):
        payload = baseline_payload("table1.full.json")
        store.ingest_run_payload(payload)
        group = payload["groups"][0]
        points = store.trend(
            "table1",
            "success_rate",
            algorithm=group["algorithm"],
            topology=group["topology"],
            f=group["f"],
            behavior=group["behavior"],
            placement=group["placement"],
        )
        assert len(points) == 1
        assert points[0].value == group["success_rate"]
        assert points[0].group.startswith(f"{group['algorithm']}|{group['topology']}")

    def test_unknown_metric_and_axis_raise(self, store):
        store.ingest_run_payload(baseline_payload())
        with pytest.raises(StoreError, match="unknown run metric"):
            store.trend("figure1b", "nope")
        with pytest.raises(StoreError, match="unknown group metric"):
            store.trend("figure1b", "cells", topology="figure-1b")
        with pytest.raises(StoreError, match="unknown group axes"):
            store.trend("figure1b", "success_rate", color="red")
        with pytest.raises(StoreError, match="unknown group axes"):
            store.group_variance("figure1b", color="red")

    def test_group_variance_matches_cells(self, store):
        payload = baseline_payload("figure1b.full.json")
        store.ingest_run_payload(payload)
        groups = store.group_variance("figure1b", mode="full")
        assert groups  # ordered by rounds variance, descending
        variances = [group.rounds_variance for group in groups]
        assert variances == sorted(variances, reverse=True)
        total_cells = sum(group.cells for group in groups)
        assert total_cells == payload["totals"]["cells"]
        for group in groups:
            p = group.success_rate
            assert group.success_variance == pytest.approx(p * (1 - p))
            assert group.rounds_variance >= 0
            assert group.runs_pooled == 1
        # pooling across two ingested runs doubles the cell counts
        store.ingest_run_payload(_with_commit(payload, "c" * 40))
        pooled = store.group_variance("figure1b", mode="full")
        assert sum(group.cells for group in pooled) == 2 * total_cells
        assert all(group.runs_pooled == 2 for group in pooled)

    def test_bench_trend_across_ingests(self, store):
        store.ingest_bench_payload("speed", {"cells_per_second": 10.0})
        store.ingest_bench_payload("speed", {"cells_per_second": 12.5})
        points = store.bench_trend("speed", "cells_per_second")
        assert [point.value for point in points] == [10.0, 12.5]
        assert store.bench_names()[0]["records"] == 2

    def test_snapshots_roundtrip(self, store):
        snapshot = {
            "run_dir": "/nfs/x",
            "journal": {
                "scenario": "table2",
                "mode": "full",
                "spec_hash": "h",
                "cells": 3,
                "total": 23,
                "sealed": False,
                "seal_reason": None,
            },
            "leases": [],
        }
        store.record_snapshot(snapshot)
        store.record_snapshot({"run_dir": "/nfs/y"})  # journal not born yet
        rows = store.snapshots()
        assert len(rows) == 2
        assert store.snapshots(scenario="table2")[0]["cells"] == 3
        payload = store.connection.execute(
            "SELECT payload FROM snapshots WHERE scenario = 'table2'"
        ).fetchone()[0]
        assert json.loads(payload) == snapshot


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestStoreCLI:
    def test_store_init_bootstrap_then_query_trend(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        db = tmp_path / "store.sqlite"
        assert main([
            "store", "init", "--store", str(db), "--bootstrap", "--root", str(REPO_ROOT),
        ]) == 0
        corpus = len(list(BASELINES.glob("*.json"))) + len(
            list(BENCH_DIR.glob("BENCH_*.json"))
        )
        assert f"{corpus} inserted" in capsys.readouterr().out
        # acceptance criterion: a per-commit trend over >=2 ingested runs
        with ResultsStore(db) as store:
            store.ingest_run_payload(_with_commit(baseline_payload(), "d" * 40))
        assert main([
            "query", "--store", str(db), "--scenario", "figure1b",
            "--metric", "success_rate", "--json",
        ]) == 0
        points = json.loads(capsys.readouterr().out)
        assert len(points) >= 2
        commits = {point["git_commit"] for point in points}
        assert "d" * 40 in commits and len(commits) >= 2

    def test_ingest_cli_reports_idempotency(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        source = str(BASELINES / "necessity.quick.json")
        assert main(["ingest", source, "--store", str(db)]) == 0
        assert "1 inserted" in capsys.readouterr().out
        assert main(["ingest", source, "--store", str(db), "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["action"] == "unchanged"

    def test_query_requires_exactly_one_selector(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        ResultsStore(db).close()
        assert main(["query", "--store", str(db)]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["query", "--store", str(db), "--scenario", "x", "--list"]) == 2

    def test_query_variance_and_bench_and_list(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        with ResultsStore(db) as store:
            store.ingest_run_payload(baseline_payload("figure1b.full.json"))
            store.ingest_bench_payload("speed", {"cells_per_second": 10.0})
        assert main([
            "query", "--store", str(db), "--scenario", "figure1b", "--variance",
        ]) == 0
        assert "var(rounds)" in capsys.readouterr().out
        assert main(["query", "--store", str(db), "--bench", "speed"]) == 0
        assert "cells_per_second" in capsys.readouterr().out
        assert main([
            "query", "--store", str(db), "--bench", "speed",
            "--metric", "cells_per_second", "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)[0]["value"] == 10.0
        assert main(["query", "--store", str(db), "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure1b" in out and "speed" in out

    def test_query_missing_store_is_a_cli_error(self, tmp_path, capsys):
        code = main([
            "query", "--store", str(tmp_path / "none.sqlite"), "--scenario", "x",
        ])
        assert code == 2
        assert "store init" in capsys.readouterr().err

    def test_fabric_status_store_flag_records_snapshot(
        self, tmp_path, capsys, monkeypatch
    ):
        snapshot = {
            "run_dir": str(tmp_path / "run"),
            "journal": {
                "scenario": "figure1b",
                "mode": "quick",
                "spec_hash": "h",
                "cells": 1,
                "total": 2,
                "sealed": False,
                "seal_reason": None,
            },
        }
        import repro.runner.cli as cli

        monkeypatch.setattr(cli, "fabric_status", lambda run_dir: snapshot)
        db = tmp_path / "store.sqlite"
        assert main([
            "fabric", "status", "--run-dir", str(tmp_path / "run"),
            "--json", "--store", str(db),
        ]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out) == snapshot  # stdout stays pure JSON
        assert "recorded" in captured.err
        with ResultsStore(db) as store:
            rows = store.snapshots(scenario="figure1b")
            assert len(rows) == 1 and rows[0]["sealed"] == 0

    def test_journaled_run_then_ingest_then_trend(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "run", "--scenario", "necessity", "--quick", "--journal", "--no-table",
            "--run-dir", str(tmp_path / "run"), "--output", str(tmp_path),
        ]) == 0
        db = tmp_path / "store.sqlite"
        assert main(["ingest", str(tmp_path / "run"), "--store", str(db)]) == 0
        capsys.readouterr()
        # the artifact the run wrote is byte-identical to the journal fold,
        # so ingesting it dedupes onto the same row
        assert main([
            "ingest", str(tmp_path / "necessity.quick.json"), "--store", str(db),
        ]) == 0
        assert "1 unchanged" in capsys.readouterr().out
        with ResultsStore(db) as store:
            points = store.trend("necessity", "success_rate", mode="quick")
            assert len(points) == 1 and points[0].source_kind == "journal"
            assert points[0].sealed
