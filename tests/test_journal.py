"""Tests for the durable execution journal (repro.runner.journal)."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.exceptions import JournalError
from repro.runner.artifacts import (
    artifact_payload,
    dumps_canonical,
    load_artifact,
)
from repro.runner.harness import SweepEngine
from repro.runner.journal import (
    JOURNAL_FILENAME,
    JournalWriter,
    journal_from_artifact,
    journal_path,
    load_journal,
    spec_digest,
)
from repro.runner.scenarios import get_scenario

REPO_ROOT = pathlib.Path(__file__).parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

QUICK = get_scenario("definition1").grid(quick=True)


def _journaled_run(tmp_path, spec=QUICK, mode="quick"):
    """Run ``spec`` serially while journaling every cell; return the dir."""
    run_dir = tmp_path / "run"
    writer = JournalWriter.create(run_dir, spec, mode=mode)
    result = SweepEngine(workers=1).run(spec)
    with writer:
        for cell in result.cells:
            writer.append_cell(cell)
        writer.seal("completed", result.cells)
    return run_dir, result


class TestWriterReader:
    def test_round_trip_and_fold(self, tmp_path):
        run_dir, result = _journaled_run(tmp_path)
        journal = load_journal(run_dir)
        assert journal.scenario == QUICK.name
        assert journal.mode == "quick"
        assert journal.sealed and journal.seal_reason == "completed"
        assert not journal.recovered_tail
        assert journal.completed_indices() == {0, 1, 2}
        assert journal.grid_spec() == QUICK
        folded = journal.fold()
        assert folded.cells == result.cells
        assert [group.as_dict() for group in folded.groups] == [
            group.as_dict() for group in result.groups
        ]

    def test_journal_path_accepts_dir_or_file(self, tmp_path):
        assert journal_path(tmp_path) == tmp_path / JOURNAL_FILENAME
        direct = tmp_path / "elsewhere.jsonl"
        assert journal_path(direct) == direct

    def test_create_refuses_to_overwrite(self, tmp_path):
        run_dir, _ = _journaled_run(tmp_path)
        with pytest.raises(JournalError, match="resume"):
            JournalWriter.create(run_dir, QUICK, mode="quick")

    def test_duplicate_cell_index_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        result = SweepEngine(workers=1).run(QUICK)
        with JournalWriter.create(run_dir, QUICK, mode="quick") as writer:
            writer.append_cell(result.cells[0])
            with pytest.raises(JournalError, match="already recorded"):
                writer.append_cell(result.cells[0])

    def test_sealed_journal_refuses_appends_and_resume(self, tmp_path):
        run_dir, result = _journaled_run(tmp_path)
        journal = load_journal(run_dir)
        with pytest.raises(JournalError, match="sealed"):
            JournalWriter.resume(journal)

    def test_spec_hash_is_canonical(self):
        payload = QUICK.as_dict()
        assert spec_digest(payload) == spec_digest(json.loads(json.dumps(payload)))


class TestTailTruncationRecovery:
    def test_truncated_tail_is_dropped(self, tmp_path):
        run_dir, result = _journaled_run(tmp_path)
        path = journal_path(run_dir)
        raw = path.read_bytes()
        # chop the seal record in half: a crash mid-append
        path.write_bytes(raw[: len(raw) - 20])
        journal = load_journal(run_dir)
        assert journal.recovered_tail
        assert not journal.sealed
        assert len(journal.cells) == len(result.cells)

    def test_resume_truncates_the_recovered_tail(self, tmp_path):
        run_dir, result = _journaled_run(tmp_path)
        path = journal_path(run_dir)
        raw = path.read_bytes()
        path.write_bytes(raw + b'{"record": "cell", "cell": {"ind')
        journal = load_journal(run_dir)
        assert journal.recovered_tail and journal.sealed
        # a sealed journal with garbage past the seal still refuses resume
        with pytest.raises(JournalError, match="sealed"):
            JournalWriter.resume(journal)

    def test_unsealed_truncated_tail_resumes_cleanly(self, tmp_path):
        run_dir = tmp_path / "run"
        result = SweepEngine(workers=1).run(QUICK)
        writer = JournalWriter.create(run_dir, QUICK, mode="quick")
        writer.append_cell(result.cells[0])
        writer.close()
        path = journal_path(run_dir)
        path.write_bytes(path.read_bytes() + b'{"record": "cell", "cell"')
        journal = load_journal(run_dir)
        assert journal.recovered_tail and journal.completed_indices() == {0}
        with JournalWriter.resume(journal) as resumed:
            for cell in result.cells[1:]:
                resumed.append_cell(cell)
            resumed.seal("completed", result.cells)
        final = load_journal(run_dir)
        assert not final.recovered_tail
        assert final.fold().cells == result.cells

    def test_parseable_but_unterminated_tail_is_dropped(self, tmp_path):
        """A torn append whose bytes happen to parse is still dropped —
        keeping it would make the resuming writer fuse the next record onto
        the unterminated line."""
        run_dir = tmp_path / "run"
        result = SweepEngine(workers=1).run(QUICK)
        writer = JournalWriter.create(run_dir, QUICK, mode="quick")
        writer.append_cell(result.cells[0])
        writer.close()
        path = journal_path(run_dir)
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        path.write_bytes(raw[:-1])  # crash landed between payload and newline
        journal = load_journal(run_dir)
        assert journal.recovered_tail
        assert journal.completed_indices() == set()  # the torn cell re-runs
        with JournalWriter.resume(journal) as resumed:
            for cell in result.cells:
                resumed.append_cell(cell)
            resumed.seal("completed", result.cells)
        final = load_journal(run_dir)
        assert not final.recovered_tail and final.sealed
        assert final.fold().cells == result.cells

    def test_corruption_before_the_tail_is_an_error(self, tmp_path):
        run_dir, _ = _journaled_run(tmp_path)
        path = journal_path(run_dir)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"record": "cell", "cell": {broken\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="corrupt record before the tail"):
            load_journal(run_dir)

    def test_header_spec_hash_mismatch_is_an_error(self, tmp_path):
        run_dir, _ = _journaled_run(tmp_path)
        path = journal_path(run_dir)
        lines = path.read_bytes().splitlines(keepends=True)
        header = json.loads(lines[0])
        header["spec"]["rounds"] = 999
        lines[0] = (json.dumps(header, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="spec hash mismatch"):
            load_journal(run_dir)

    def test_missing_journal_is_an_error(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            load_journal(tmp_path / "nowhere")


class TestArtifactRoundTrip:
    def test_all_committed_baselines_round_trip_byte_identically(self, tmp_path):
        """artifact -> journal -> fold() -> artifact_payload reproduces every
        committed baseline byte for byte (the api-v2 derivation contract)."""
        baselines = sorted(
            path
            for path in BASELINE_DIR.glob("*.json")
            if not path.name.endswith(".curve.json")
        )
        assert len(baselines) == 28
        for index, baseline in enumerate(baselines):
            payload = load_artifact(baseline)
            journal = journal_from_artifact(tmp_path / f"b{index}", payload)
            derived = artifact_payload(
                journal.fold(), mode=journal.mode, provenance=journal.provenance()
            )
            assert dumps_canonical(derived) == baseline.read_text(encoding="utf-8"), (
                f"journal round trip of {baseline.name} is not byte-identical"
            )

    def test_provenance_override_controls_environment_and_git(self):
        result = SweepEngine(workers=1).run(QUICK)
        pinned = {"environment": {"python": "9.9.9"}, "git": None}
        payload = artifact_payload(result, mode="quick", provenance=pinned)
        assert payload["environment"] == {"python": "9.9.9"}
        assert payload["git"] is None
        fresh = artifact_payload(result, mode="quick")
        assert fresh["environment"] != {"python": "9.9.9"}
