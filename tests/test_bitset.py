"""Property-based tests for the shared bitmask engine (graphs/bitset.py).

The engine must agree with (a) literal frozenset/BFS transcriptions of the
paper's definitions — re-implemented here independently of the library — and
(b) the ``networkx`` oracle, on random graphs and random exclusion sets.
"""

from __future__ import annotations

from collections import deque

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.bitset import BitsetIndex, iter_bits, popcount
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import complete_digraph, directed_cycle, figure_1a
from repro.graphs.reach import (
    ReachSetCache,
    SourceComponentCache,
    reach_set,
    reach_sets_for_all_nodes,
    source_component,
)

SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# strategies and oracles
# ----------------------------------------------------------------------
@st.composite
def graph_and_excluded(draw, max_nodes=7):
    """A random simple digraph plus a random excluded node subset."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = DiGraph(nodes=range(n))
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                graph.add_edge(u, v)
    excluded = {node for node in range(n) if draw(st.booleans())}
    return graph, excluded


def _to_networkx(graph: DiGraph) -> nx.DiGraph:
    oracle = nx.DiGraph()
    oracle.add_nodes_from(graph.nodes)
    oracle.add_edges_from(graph.edges)
    return oracle


def _reach_bfs(graph: DiGraph, node, excluded) -> frozenset:
    """Literal Definition 2: backward BFS in the induced subgraph."""
    excluded = set(excluded)
    seen = {node}
    queue = deque([node])
    while queue:
        current = queue.popleft()
        for pred in graph.predecessors(current):
            if pred not in excluded and pred not in seen:
                seen.add(pred)
                queue.append(pred)
    return frozenset(seen)


def _source_component_bfs(graph: DiGraph, blocked) -> frozenset:
    """Literal Definition 6: per-node forward BFS in the reduced graph."""
    blocked = set(blocked)
    everything = set(graph.nodes)
    members = set()
    for node in graph.nodes:
        seen = {node}
        queue = deque([node])
        while queue:
            current = queue.popleft()
            if current in blocked:
                continue  # outgoing edges of blocked nodes are cut
            for succ in graph.successors(current):
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        if seen == everything:
            members.add(node)
    return frozenset(members)


# ----------------------------------------------------------------------
# reach masks
# ----------------------------------------------------------------------
class TestReachMasks:
    @SETTINGS
    @given(graph_and_excluded())
    def test_reach_masks_match_bfs_and_networkx(self, data):
        graph, excluded = data
        index = BitsetIndex.for_graph(graph)
        excluded_mask = index.mask_of(excluded)
        reach = index.reach_masks(excluded_mask)
        oracle = _to_networkx(graph.exclude_nodes(excluded))
        for i, node in enumerate(index.nodes):
            if node in excluded:
                assert reach[i] == 0
                continue
            decoded = index.nodes_of(reach[i])
            assert decoded == _reach_bfs(graph, node, excluded)
            assert decoded == nx.ancestors(oracle, node) | {node}

    @SETTINGS
    @given(graph_and_excluded())
    def test_reach_set_wrapper_matches_engine(self, data):
        graph, excluded = data
        outside = [node for node in graph.nodes if node not in excluded]
        batch = reach_sets_for_all_nodes(graph, excluded)
        assert set(batch) == set(outside)
        for node in outside:
            assert reach_set(graph, node, excluded) == batch[node]

    def test_reach_masks_memoised_per_exclusion(self):
        graph = figure_1a()
        index = BitsetIndex.for_graph(graph)
        first = index.reach_masks(0)
        assert index.reach_masks(0) is first
        index.clear_memos()
        assert index.memo_sizes()["reach_exclusions"] == 0


# ----------------------------------------------------------------------
# SCC and source components
# ----------------------------------------------------------------------
class TestSccAndSourceComponents:
    @SETTINGS
    @given(graph_and_excluded())
    def test_scc_masks_match_networkx(self, data):
        graph, excluded = data
        index = BitsetIndex.for_graph(graph)
        allowed_mask = index.full_mask & ~index.mask_of(excluded)
        components = {
            index.nodes_of(mask) for mask in index.scc_masks(allowed_mask)
        }
        oracle = _to_networkx(graph.exclude_nodes(excluded))
        expected = {frozenset(c) for c in nx.strongly_connected_components(oracle)}
        assert components == expected

    @SETTINGS
    @given(graph_and_excluded())
    def test_scc_masks_reverse_topological(self, data):
        graph, excluded = data
        index = BitsetIndex.for_graph(graph)
        allowed_mask = index.full_mask & ~index.mask_of(excluded)
        emitted = 0
        for mask in index.scc_masks(allowed_mask):
            # Everything a component points at (outside itself) must already
            # have been emitted — that is reverse topological order.
            for i in iter_bits(mask):
                succs = index.succ_masks[i] & allowed_mask & ~mask
                assert succs & ~emitted == 0
            emitted |= mask

    @SETTINGS
    @given(graph_and_excluded())
    def test_source_component_matches_literal_bfs(self, data):
        graph, blocked = data
        index = BitsetIndex.for_graph(graph)
        mask = index.source_component_mask(index.mask_of(blocked))
        assert index.nodes_of(mask) == _source_component_bfs(graph, blocked)
        assert index.nodes_of(mask) == source_component(graph, blocked, ())

    @SETTINGS
    @given(graph_and_excluded())
    def test_strong_connectivity_mask_matches_networkx(self, data):
        graph, subset = data
        index = BitsetIndex.for_graph(graph)
        verdict = index.is_strongly_connected_mask(index.mask_of(subset))
        if not subset:
            assert verdict is False
        else:
            oracle = _to_networkx(graph.induced_subgraph(subset))
            assert verdict == nx.is_strongly_connected(oracle)


# ----------------------------------------------------------------------
# codecs, payloads, shared instances
# ----------------------------------------------------------------------
class TestCodecsAndSharing:
    @SETTINGS
    @given(graph_and_excluded())
    def test_mask_roundtrip(self, data):
        graph, subset = data
        index = BitsetIndex.for_graph(graph)
        mask = index.mask_of(subset)
        assert index.nodes_of(mask) == frozenset(subset)
        assert popcount(mask) == len(subset)
        assert sorted(iter_bits(mask)) == sorted(index.index[n] for n in subset)

    def test_mask_of_strict_and_lenient(self):
        index = BitsetIndex.for_graph(complete_digraph(3))
        with pytest.raises(KeyError):
            index.mask_of({99})
        assert index.mask_of({99}, ignore_missing=True) == 0

    def test_for_graph_shares_one_instance(self):
        graph = complete_digraph(4)
        assert BitsetIndex.for_graph(graph) is BitsetIndex.for_graph(graph)

    def test_for_graph_invalidates_on_mutation(self):
        graph = directed_cycle(4)
        before = BitsetIndex.for_graph(graph)
        assert reach_set(graph, 0, {3}) == frozenset({0})
        graph.add_edge(1, 0)
        after = BitsetIndex.for_graph(graph)
        assert after is not before
        assert reach_set(graph, 0, {3}) == frozenset({0, 1})

    def test_payload_roundtrip(self):
        graph = figure_1a()
        index = BitsetIndex.for_graph(graph)
        rebuilt = BitsetIndex.from_payload(index.to_payload())
        assert rebuilt.n == index.n
        assert rebuilt.reach_masks(0) == index.reach_masks(0)
        assert rebuilt.source_component_mask(1) == index.source_component_mask(1)


# ----------------------------------------------------------------------
# memo caches
# ----------------------------------------------------------------------
class TestCaches:
    def test_reach_cache_stats_and_clear(self):
        graph = figure_1a()
        cache = ReachSetCache(graph)
        cache.get("v1", {"v2"})
        cache.get("v1", ["v2"])  # same canonical mask, different iterable type
        assert cache.stats == {"hits": 1, "misses": 1, "size": 1}
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {"hits": 0, "misses": 0, "size": 0}

    def test_source_cache_keyed_on_union_mask(self):
        graph = figure_1a()
        cache = SourceComponentCache(graph)
        first = cache.get({"v1"}, {"v2"})
        second = cache.get({"v2"}, {"v1"})
        assert first == second
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_bounded_cache_evicts_oldest(self):
        graph = complete_digraph(5)
        cache = SourceComponentCache(graph, max_entries=2)
        cache.get({0})
        cache.get({1})
        cache.get({2})  # evicts the {0} entry
        assert len(cache) == 2
        cache.get({0})
        assert cache.stats["misses"] == 4  # the re-query is a miss again

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            ReachSetCache(complete_digraph(3), max_entries=0)


class TestEngineMemoBound:
    def test_reach_memo_evicts_beyond_limit(self, monkeypatch):
        graph = complete_digraph(6)
        index = BitsetIndex.for_graph(graph)
        monkeypatch.setattr(BitsetIndex, "MEMO_LIMIT", 4)
        for mask in range(8):
            index.reach_masks(mask)
        assert index.memo_sizes()["reach_exclusions"] <= 4
        # Evicted entries are recomputed correctly on re-query.
        assert index.nodes_of(index.reach_masks(1)[1]) == reach_set(graph, 1, {0})
