"""Property-based tests for the shared bitmask engine (graphs/bitset.py).

The engine must agree with (a) literal frozenset/BFS transcriptions of the
paper's definitions — re-implemented here independently of the library — and
(b) the ``networkx`` oracle, on random graphs and random exclusion sets.

The cross-backend sections at the bottom hold every registered
:data:`~repro.registry.BITSET_BACKENDS` entry to the backend contract:
identical masks and verdicts on every query (SCC emission order excepted —
any reverse topological order is legal), on random digraphs up to n=48.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ExperimentError, UnknownPluginError
from repro.graphs.bitset import (
    BitsetIndex,
    candidate_coverages,
    has_f_cover_masks,
    iter_bits,
    popcount,
    prune_dominated_coverages,
)
from repro.graphs.bitset_backends import (
    ENV_VAR,
    NUMPY_MIN_NODES,
    PYTHON_BACKEND,
    BitsetBackend,
    backend_policy,
    get_backend,
    numpy_available,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import complete_digraph, directed_cycle, figure_1a
from repro.graphs.reach import (
    ReachSetCache,
    SourceComponentCache,
    reach_set,
    reach_sets_for_all_nodes,
    source_component,
)
from repro.registry import BITSET_BACKENDS

SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: Parity runs fewer, larger examples — each one compares whole mask tables.
PARITY_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed (repro[fast])"
)


# ----------------------------------------------------------------------
# strategies and oracles
# ----------------------------------------------------------------------
@st.composite
def graph_and_excluded(draw, max_nodes=7):
    """A random simple digraph plus a random excluded node subset."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = DiGraph(nodes=range(n))
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                graph.add_edge(u, v)
    excluded = {node for node in range(n) if draw(st.booleans())}
    return graph, excluded


def _to_networkx(graph: DiGraph) -> nx.DiGraph:
    oracle = nx.DiGraph()
    oracle.add_nodes_from(graph.nodes)
    oracle.add_edges_from(graph.edges)
    return oracle


def _reach_bfs(graph: DiGraph, node, excluded) -> frozenset:
    """Literal Definition 2: backward BFS in the induced subgraph."""
    excluded = set(excluded)
    seen = {node}
    queue = deque([node])
    while queue:
        current = queue.popleft()
        for pred in graph.predecessors(current):
            if pred not in excluded and pred not in seen:
                seen.add(pred)
                queue.append(pred)
    return frozenset(seen)


def _source_component_bfs(graph: DiGraph, blocked) -> frozenset:
    """Literal Definition 6: per-node forward BFS in the reduced graph."""
    blocked = set(blocked)
    everything = set(graph.nodes)
    members = set()
    for node in graph.nodes:
        seen = {node}
        queue = deque([node])
        while queue:
            current = queue.popleft()
            if current in blocked:
                continue  # outgoing edges of blocked nodes are cut
            for succ in graph.successors(current):
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        if seen == everything:
            members.add(node)
    return frozenset(members)


# ----------------------------------------------------------------------
# reach masks
# ----------------------------------------------------------------------
class TestReachMasks:
    @SETTINGS
    @given(graph_and_excluded())
    def test_reach_masks_match_bfs_and_networkx(self, data):
        graph, excluded = data
        index = BitsetIndex.for_graph(graph)
        excluded_mask = index.mask_of(excluded)
        reach = index.reach_masks(excluded_mask)
        oracle = _to_networkx(graph.exclude_nodes(excluded))
        for i, node in enumerate(index.nodes):
            if node in excluded:
                assert reach[i] == 0
                continue
            decoded = index.nodes_of(reach[i])
            assert decoded == _reach_bfs(graph, node, excluded)
            assert decoded == nx.ancestors(oracle, node) | {node}

    @SETTINGS
    @given(graph_and_excluded())
    def test_reach_set_wrapper_matches_engine(self, data):
        graph, excluded = data
        outside = [node for node in graph.nodes if node not in excluded]
        batch = reach_sets_for_all_nodes(graph, excluded)
        assert set(batch) == set(outside)
        for node in outside:
            assert reach_set(graph, node, excluded) == batch[node]

    def test_reach_masks_memoised_per_exclusion(self):
        graph = figure_1a()
        index = BitsetIndex.for_graph(graph)
        first = index.reach_masks(0)
        assert index.reach_masks(0) is first
        index.clear_memos()
        assert index.memo_sizes()["reach_exclusions"] == 0


# ----------------------------------------------------------------------
# SCC and source components
# ----------------------------------------------------------------------
class TestSccAndSourceComponents:
    @SETTINGS
    @given(graph_and_excluded())
    def test_scc_masks_match_networkx(self, data):
        graph, excluded = data
        index = BitsetIndex.for_graph(graph)
        allowed_mask = index.full_mask & ~index.mask_of(excluded)
        components = {
            index.nodes_of(mask) for mask in index.scc_masks(allowed_mask)
        }
        oracle = _to_networkx(graph.exclude_nodes(excluded))
        expected = {frozenset(c) for c in nx.strongly_connected_components(oracle)}
        assert components == expected

    @SETTINGS
    @given(graph_and_excluded())
    def test_scc_masks_reverse_topological(self, data):
        graph, excluded = data
        index = BitsetIndex.for_graph(graph)
        allowed_mask = index.full_mask & ~index.mask_of(excluded)
        emitted = 0
        for mask in index.scc_masks(allowed_mask):
            # Everything a component points at (outside itself) must already
            # have been emitted — that is reverse topological order.
            for i in iter_bits(mask):
                succs = index.succ_masks[i] & allowed_mask & ~mask
                assert succs & ~emitted == 0
            emitted |= mask

    @SETTINGS
    @given(graph_and_excluded())
    def test_source_component_matches_literal_bfs(self, data):
        graph, blocked = data
        index = BitsetIndex.for_graph(graph)
        mask = index.source_component_mask(index.mask_of(blocked))
        assert index.nodes_of(mask) == _source_component_bfs(graph, blocked)
        assert index.nodes_of(mask) == source_component(graph, blocked, ())

    @SETTINGS
    @given(graph_and_excluded())
    def test_strong_connectivity_mask_matches_networkx(self, data):
        graph, subset = data
        index = BitsetIndex.for_graph(graph)
        verdict = index.is_strongly_connected_mask(index.mask_of(subset))
        if not subset:
            assert verdict is False
        else:
            oracle = _to_networkx(graph.induced_subgraph(subset))
            assert verdict == nx.is_strongly_connected(oracle)


# ----------------------------------------------------------------------
# codecs, payloads, shared instances
# ----------------------------------------------------------------------
class TestCodecsAndSharing:
    @SETTINGS
    @given(graph_and_excluded())
    def test_mask_roundtrip(self, data):
        graph, subset = data
        index = BitsetIndex.for_graph(graph)
        mask = index.mask_of(subset)
        assert index.nodes_of(mask) == frozenset(subset)
        assert popcount(mask) == len(subset)
        assert sorted(iter_bits(mask)) == sorted(index.index[n] for n in subset)

    def test_mask_of_strict_and_lenient(self):
        index = BitsetIndex.for_graph(complete_digraph(3))
        with pytest.raises(KeyError):
            index.mask_of({99})
        assert index.mask_of({99}, ignore_missing=True) == 0

    def test_for_graph_shares_one_instance(self):
        graph = complete_digraph(4)
        assert BitsetIndex.for_graph(graph) is BitsetIndex.for_graph(graph)

    def test_for_graph_invalidates_on_mutation(self):
        graph = directed_cycle(4)
        before = BitsetIndex.for_graph(graph)
        assert reach_set(graph, 0, {3}) == frozenset({0})
        graph.add_edge(1, 0)
        after = BitsetIndex.for_graph(graph)
        assert after is not before
        assert reach_set(graph, 0, {3}) == frozenset({0, 1})

    def test_payload_roundtrip(self):
        graph = figure_1a()
        index = BitsetIndex.for_graph(graph)
        rebuilt = BitsetIndex.from_payload(index.to_payload())
        assert rebuilt.n == index.n
        assert rebuilt.reach_masks(0) == index.reach_masks(0)
        assert rebuilt.source_component_mask(1) == index.source_component_mask(1)


# ----------------------------------------------------------------------
# memo caches
# ----------------------------------------------------------------------
class TestCaches:
    def test_reach_cache_stats_and_clear(self):
        graph = figure_1a()
        cache = ReachSetCache(graph)
        cache.get("v1", {"v2"})
        cache.get("v1", ["v2"])  # same canonical mask, different iterable type
        assert cache.stats == {"hits": 1, "misses": 1, "size": 1}
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {"hits": 0, "misses": 0, "size": 0}

    def test_source_cache_keyed_on_union_mask(self):
        graph = figure_1a()
        cache = SourceComponentCache(graph)
        first = cache.get({"v1"}, {"v2"})
        second = cache.get({"v2"}, {"v1"})
        assert first == second
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_bounded_cache_evicts_oldest(self):
        graph = complete_digraph(5)
        cache = SourceComponentCache(graph, max_entries=2)
        cache.get({0})
        cache.get({1})
        cache.get({2})  # evicts the {0} entry
        assert len(cache) == 2
        cache.get({0})
        assert cache.stats["misses"] == 4  # the re-query is a miss again

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            ReachSetCache(complete_digraph(3), max_entries=0)


class TestEngineMemoBound:
    def test_reach_memo_evicts_beyond_limit(self, monkeypatch):
        graph = complete_digraph(6)
        index = BitsetIndex.for_graph(graph)
        monkeypatch.setattr(BitsetIndex, "MEMO_LIMIT", 4)
        for mask in range(8):
            index.reach_masks(mask)
        assert index.memo_sizes()["reach_exclusions"] <= 4
        # Evicted entries are recomputed correctly on re-query.
        assert index.nodes_of(index.reach_masks(1)[1]) == reach_set(graph, 1, {0})


# ----------------------------------------------------------------------
# cross-backend parity (the backend contract)
# ----------------------------------------------------------------------
@st.composite
def mask_digraph(draw, max_nodes=48, max_batch=0):
    """Adjacency masks of a random digraph (mask-level, so n=48 stays cheap),
    a random allowed mask, and optionally a batch of allowed masks."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    full = (1 << n) - 1
    adj = [
        draw(st.integers(min_value=0, max_value=full)) & ~(1 << i) for i in range(n)
    ]
    allowed = draw(st.integers(min_value=0, max_value=full))
    batch = []
    if max_batch:
        batch = draw(
            st.lists(
                st.integers(min_value=0, max_value=full), min_size=0, max_size=max_batch
            )
        )
    return n, adj, allowed, batch


@st.composite
def path_masks(draw, max_bits=12, max_masks=8):
    """Random path-member masks plus an f bound (f-cover parity inputs)."""
    bits = draw(st.integers(min_value=1, max_value=max_bits))
    full = (1 << bits) - 1
    masks = draw(
        st.lists(st.integers(min_value=0, max_value=full), min_size=0, max_size=max_masks)
    )
    f = draw(st.integers(min_value=0, max_value=3))
    return masks, f


def _closure_bfs(adj, allowed_mask, n):
    """Independent oracle for the backend ``closure`` contract: per-row BFS
    restricted to ``allowed_mask``; rows outside it are 0."""
    rows = []
    for i in range(n):
        if not (allowed_mask >> i) & 1:
            rows.append(0)
            continue
        seen = 1 << i
        frontier = [i]
        while frontier:
            fresh = adj[frontier.pop()] & allowed_mask & ~seen
            seen |= fresh
            frontier.extend(iter_bits(fresh))
        rows.append(seen)
    return tuple(rows)


def _f_cover_bruteforce(masks, f):
    """Literal Definition 4 oracle: try every candidate subset of size <= f."""
    if not masks:
        return True
    union = 0
    for mask in masks:
        union |= mask
    candidates = list(iter_bits(union))
    for size in range(1, f + 1):
        for combo in combinations(candidates, size):
            cover = 0
            for bit in combo:
                cover |= 1 << bit
            if all(mask & cover for mask in masks):
                return True
    return False


def _all_backends():
    return [entry.obj for entry in BITSET_BACKENDS.entries()]


class TestCoveragePruning:
    """Exact semantics of the dominated-coverage pruning helpers."""

    def test_candidate_coverages_bit_order_and_contents(self):
        masks = [0b011, 0b110, 0b010]
        # candidates in ascending bit order: 0 on path 0, 1 on all three,
        # 2 on path 1
        assert candidate_coverages(masks, 0b111) == [0b001, 0b111, 0b010]

    def test_strict_subset_is_dropped(self):
        assert prune_dominated_coverages([0b01, 0b11]) == [0b11]
        assert prune_dominated_coverages([0b11, 0b01]) == [0b11]

    def test_equal_coverages_keep_first(self):
        assert prune_dominated_coverages([0b10, 0b10, 0b01]) == [0b10, 0b01]

    def test_incomparable_coverages_all_kept(self):
        assert prune_dominated_coverages([0b011, 0b110, 0b101]) == [0b011, 0b110, 0b101]

    @PARITY_SETTINGS
    @given(path_masks(max_bits=10, max_masks=8))
    def test_pruning_preserves_f_cover_existence(self, data):
        # The pruned search (has_f_cover_masks) against the literal
        # all-subsets oracle, which never prunes.
        masks, f = data
        assert has_f_cover_masks(masks, f) is _f_cover_bruteforce(masks, f)


class TestBackendParity:
    """Every registered backend returns identical masks and verdicts."""

    @PARITY_SETTINGS
    @given(mask_digraph(max_nodes=48))
    def test_closure_parity(self, data):
        n, adj, allowed, _ = data
        expected = _closure_bfs(adj, allowed, n)
        for backend in _all_backends():
            assert backend.closure(adj, allowed, n) == expected, backend.name

    @PARITY_SETTINGS
    @given(mask_digraph(max_nodes=40, max_batch=24))
    def test_closure_many_parity(self, data):
        n, adj, allowed, batch = data
        # max_batch crosses the numpy backend's vectorized threshold (>= 8)
        # while small draws exercise its scalar fallback too.
        expected = [_closure_bfs(adj, mask, n) for mask in batch]
        for backend in _all_backends():
            assert backend.closure_many(adj, batch, n) == expected, backend.name

    @PARITY_SETTINGS
    @given(mask_digraph(max_nodes=48))
    def test_scc_parity_as_sets_and_order(self, data):
        n, adj, allowed, _ = data
        reference = PYTHON_BACKEND.scc_masks(adj, allowed, n)
        for backend in _all_backends():
            components = backend.scc_masks(adj, allowed, n)
            assert sorted(components) == sorted(reference), backend.name
            emitted = 0
            for mask in components:
                for i in iter_bits(mask):
                    # reverse topological order: successors outside the
                    # component were all emitted earlier
                    assert adj[i] & allowed & ~mask & ~emitted == 0, backend.name
                emitted |= mask

    @PARITY_SETTINGS
    @given(mask_digraph(max_nodes=48))
    def test_source_component_parity(self, data):
        n, adj, blocked, _ = data
        full = (1 << n) - 1
        pred = [0] * n
        for i in range(n):
            for j in iter_bits(adj[i]):
                pred[j] |= 1 << i
        expected = PYTHON_BACKEND.source_component(adj, pred, blocked, full)
        for backend in _all_backends():
            assert backend.source_component(adj, pred, blocked, full) == expected, (
                backend.name
            )

    @PARITY_SETTINGS
    @given(path_masks())
    def test_f_cover_parity_against_bruteforce(self, data):
        masks, f = data
        expected = _f_cover_bruteforce(masks, f)
        for backend in _all_backends():
            assert backend.has_f_cover(masks, f) is expected, backend.name

    @PARITY_SETTINGS
    @given(st.lists(path_masks(max_bits=10, max_masks=6), min_size=0, max_size=5))
    def test_any_f_cover_parity(self, groups_with_f):
        groups = [masks for masks, _ in groups_with_f]
        for f in range(4):
            expected = any(_f_cover_bruteforce(masks, f) for masks in groups)
            for backend in _all_backends():
                assert backend.any_f_cover(groups, f) is expected, backend.name

    @PARITY_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 48) - 1), max_size=40)
    )
    def test_find_disjoint_pair_parity(self, masks):
        # The contract pins the exact pair, not just existence: violation
        # witnesses and checks_performed accounting depend on the position.
        expected = PYTHON_BACKEND.find_disjoint_pair(masks)
        for backend in _all_backends():
            assert backend.find_disjoint_pair(masks) == expected, backend.name
        if expected is not None:
            a, b = expected
            assert a < b and masks[a] & masks[b] == 0
            for i, j in combinations(range(len(masks)), 2):
                if masks[i] & masks[j] == 0:
                    assert (i, j) == (a, b)
                    break

    @needs_numpy
    def test_index_level_parity_on_large_graph(self):
        """End to end through BitsetIndex: same graph, both backends, same
        reach tables / SCC sets / source components at n=32 (above the
        auto-selection threshold)."""
        rng_edges = [(i, (i * 7 + offset) % 32) for i in range(32) for offset in (1, 3, 9)]
        graph = DiGraph(nodes=range(32))
        for u, v in rng_edges:
            if u != v:
                graph.add_edge(u, v)
        results = {}
        for name in ("python", "numpy"):
            index = BitsetIndex(graph)
            index.set_backend(name)
            reaches = index.reach_masks_many([0, 1, 0b1010, (1 << 13) - 1])
            sccs = sorted(index.scc_masks())
            source = index.source_component_mask(0b110)
            results[name] = (reaches, sccs, source)
        assert results["python"] == results["numpy"]


class TestBackendSelection:
    """get_backend / backend_policy: env override, auto thresholds, errors."""

    def test_auto_thresholds(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert get_backend(NUMPY_MIN_NODES - 1) is PYTHON_BACKEND
        large = get_backend(NUMPY_MIN_NODES)
        if numpy_available():
            assert large.name == "numpy"
        else:
            assert large is PYTHON_BACKEND

    def test_explicit_python_wins_at_any_size(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "python")
        assert get_backend(10_000) is PYTHON_BACKEND
        assert backend_policy() == "python"

    def test_auto_keyword_means_automatic(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "auto")
        assert get_backend(1) is PYTHON_BACKEND
        assert backend_policy().startswith("auto(")

    def test_unknown_backend_did_you_mean(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "pythn")
        with pytest.raises(UnknownPluginError, match="did you mean 'python'"):
            get_backend(5)

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        import repro.graphs.bitset_backends as backends_module

        monkeypatch.setenv(ENV_VAR, "numpy")
        monkeypatch.setattr(backends_module, "NUMPY_BACKEND", None)
        with pytest.raises(ExperimentError, match=r"repro\[fast\]"):
            get_backend(48)

    def test_temporarily_registered_backend_resolves(self, monkeypatch):
        class StubBackend(BitsetBackend):
            name = "stub"

        stub = StubBackend()
        monkeypatch.setenv(ENV_VAR, "stub")
        with BITSET_BACKENDS.temporarily("stub", stub):
            assert get_backend(3) is stub
            assert backend_policy() == "stub"

    def test_index_set_backend_clears_memos(self):
        graph = figure_1a()
        index = BitsetIndex(graph)
        before = index.reach_masks(0)
        index.set_backend("python")
        assert index.memo_sizes()["reach_exclusions"] == 0
        assert index.backend is PYTHON_BACKEND
        assert index.reach_masks(0) == before


@needs_numpy
class TestCrossBackendArtifacts:
    """The payoff of the backend contract: whole sweep artifacts are
    byte-identical whichever backend computed them."""

    def _payload_under(self, monkeypatch, backend_name):
        from repro.runner.artifacts import artifact_payload, dumps_canonical
        from repro.runner.harness import SweepEngine
        from repro.runner.scenarios import clear_worker_caches, get_scenario

        monkeypatch.setenv(ENV_VAR, backend_name)
        clear_worker_caches()
        try:
            result = SweepEngine(workers=1).run(get_scenario("definition1").grid(quick=True))
            # Fixed provenance: the environment block (deliberately) records
            # the backend policy, so identity is asserted over the computed
            # content — spec, cells, groups, totals.
            payload = artifact_payload(
                result,
                mode="quick",
                provenance={"environment": {"pinned": "env"}, "git": None},
            )
            return dumps_canonical(payload)
        finally:
            clear_worker_caches()

    def test_quick_scenario_artifact_is_byte_identical(self, monkeypatch):
        python_text = self._payload_under(monkeypatch, "python")
        numpy_text = self._payload_under(monkeypatch, "numpy")
        assert python_text == numpy_text
