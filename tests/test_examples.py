"""Smoke tests: every shipped example runs end-to-end and its assertions hold."""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda path: path.stem)
def test_example_runs(path, capsys):
    # Each example is a self-checking script: it asserts its own claims and
    # prints a human-readable report.
    runpy.run_path(str(path), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{path.name} produced no output"
