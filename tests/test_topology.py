"""Unit tests for the shared TopologyKnowledge precomputation."""

from __future__ import annotations

import pytest

from repro.algorithms.topology import PATH_POLICIES, TopologyKnowledge
from repro.exceptions import ProtocolError
from repro.graphs.generators import complete_digraph, directed_cycle, figure_1a
from repro.graphs.paths import is_redundant, is_simple
from repro.graphs.reach import reach_set, source_component


class TestConstruction:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ProtocolError):
            TopologyKnowledge(complete_digraph(3), 1, path_policy="bogus")

    def test_negative_f_rejected(self):
        with pytest.raises(ProtocolError):
            TopologyKnowledge(complete_digraph(3), -1)

    def test_policies_exported(self):
        assert set(PATH_POLICIES) == {"redundant", "simple"}

    def test_fault_sets_enumeration(self):
        topology = TopologyKnowledge(complete_digraph(4), 1)
        assert len(topology.fault_sets) == 5  # empty set + 4 singletons
        assert all(len(candidate) <= 1 for candidate in topology.fault_sets)

    def test_fault_candidates_exclude_self(self):
        topology = TopologyKnowledge(complete_digraph(4), 1)
        for node in topology.nodes:
            assert all(node not in candidate for candidate in topology.fault_candidates[node])
        assert topology.thread_count(0) == 4


class TestRequiredPaths:
    def test_required_paths_end_at_node_and_avoid_fault_set(self):
        topology = TopologyKnowledge(complete_digraph(4), 1)
        paths = topology.required_paths(0, frozenset({3}))
        assert (0,) in paths
        assert all(path[-1] == 0 for path in paths)
        assert all(3 not in path for path in paths)
        assert all(is_redundant(path) for path in paths)

    def test_simple_policy_required_paths(self):
        topology = TopologyKnowledge(complete_digraph(4), 1, path_policy="simple")
        paths = topology.required_paths(0, frozenset())
        assert all(is_simple(path) for path in paths)
        # 1 trivial + 3 + 6 + 6 simple paths into node 0 of K4.
        assert len(paths) == 16

    def test_redundant_policy_superset_of_simple(self):
        redundant = TopologyKnowledge(complete_digraph(4), 1).required_paths(0, frozenset())
        simple = TopologyKnowledge(complete_digraph(4), 1, path_policy="simple").required_paths(
            0, frozenset()
        )
        assert simple <= redundant

    def test_memoisation_returns_same_object(self):
        topology = TopologyKnowledge(complete_digraph(4), 1)
        assert topology.required_paths(0, frozenset({1})) is topology.required_paths(0, frozenset({1}))


class TestReachAndSourceComponents:
    def test_reach_matches_graph_module(self):
        graph = figure_1a()
        topology = TopologyKnowledge(graph, 1)
        assert topology.reach("v1", frozenset({"v3"})) == reach_set(graph, "v1", {"v3"})

    def test_source_component_matches_graph_module(self):
        graph = figure_1a()
        topology = TopologyKnowledge(graph, 1)
        assert topology.source_component({"v1"}, {"v2"}) == source_component(graph, {"v1"}, {"v2"})

    def test_source_component_keyed_on_union(self):
        graph = complete_digraph(4)
        topology = TopologyKnowledge(graph, 1)
        assert topology.source_component({0}, {1}) is topology.source_component({1}, {0})

    def test_simple_paths_within_reach(self):
        graph = figure_1a()
        topology = TopologyKnowledge(graph, 1)
        fault_set = frozenset({"v3"})
        per_origin = topology.simple_paths_within_reach("v1", fault_set)
        reach = topology.reach("v1", fault_set)
        assert set(per_origin) <= set(reach)
        for origin, paths in per_origin.items():
            for path in paths:
                assert path[0] == origin and path[-1] == "v1"
                assert set(path) <= set(reach)
        # The node itself is reachable by exactly its trivial path.
        assert per_origin["v1"] == (("v1",),)

    def test_cycle_reach_paths_unique(self):
        graph = directed_cycle(4)
        topology = TopologyKnowledge(graph, 1)
        per_origin = topology.simple_paths_within_reach(0, frozenset({2}))
        assert per_origin[3] == ((3, 0),)


class TestCostCounters:
    def test_precompute_all_counters(self, clique4_topology):
        counters = clique4_topology.precompute_all()
        assert counters["nodes"] == 4
        assert counters["threads"] == 16
        assert counters["required_paths"] > counters["threads"]
        assert counters["source_components"] >= 1

    def test_total_required_paths(self, clique4_topology):
        total = clique4_topology.total_required_paths(0)
        assert total == sum(
            len(clique4_topology.required_paths(0, fault_set))
            for fault_set in clique4_topology.fault_candidates[0]
        )

    def test_repr(self):
        assert "TopologyKnowledge" in repr(TopologyKnowledge(complete_digraph(3), 1))


class TestSharedEngineCaches:
    """The per-run memo caches behind reach / source-component queries."""

    def test_repeated_queries_hit_the_memo(self):
        topology = TopologyKnowledge(complete_digraph(4), 1)
        topology.reach(0, frozenset({1}))
        topology.reach(0, frozenset({1}))
        topology.source_component({1}, {2})
        topology.source_component({2}, {1})  # same union → same entry
        stats = topology.cache_stats()
        assert stats["reach"] == {"hits": 1, "misses": 1, "size": 1}
        assert stats["source_components"]["hits"] == 1
        assert stats["source_components"]["misses"] == 1

    def test_clear_caches_resets_accounting(self):
        topology = TopologyKnowledge(complete_digraph(4), 1)
        topology.precompute_all()
        assert topology.cache_stats()["source_components"]["size"] > 0
        topology.clear_caches()
        stats = topology.cache_stats()
        assert stats["reach"]["size"] == 0
        assert stats["source_components"]["size"] == 0
        # The shared per-graph engine memo is deliberately NOT cleared: it may
        # be warm for other consumers of the same graph and bounds itself.
        assert stats["shared_engine"]["source_components"] > 0
        # Queries keep working (and repopulate) after a clear.
        assert topology.reach(0, frozenset({1})) == reach_set(
            complete_digraph(4), 0, {1}
        )

    def test_reach_mask_matches_set_level_query(self):
        graph = figure_1a()
        topology = TopologyKnowledge(graph, 1)
        fault_set = frozenset({"v2"})
        mask = topology.reach_mask("v1", fault_set)
        assert topology.engine.nodes_of(mask) == topology.reach("v1", fault_set)
