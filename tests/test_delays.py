"""Unit tests for the delay models."""

from __future__ import annotations

import random

import pytest

from repro.network.delays import (
    ConstantDelay,
    ExponentialDelay,
    JitteredPerReceiverDelay,
    PerLinkDelay,
    TargetedDelay,
    UniformDelay,
)


RNG = random.Random(0)


class TestSimpleModels:
    def test_constant(self):
        model = ConstantDelay(2.5)
        assert model.delay(0, 1, None, 0.0, RNG) == 2.5
        assert "2.5" in model.describe()

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantDelay(0.0)

    def test_uniform_within_bounds(self):
        model = UniformDelay(1.0, 3.0)
        for _ in range(100):
            assert 1.0 <= model.delay(0, 1, None, 0.0, RNG) <= 3.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelay(0.0, 1.0)

    def test_exponential_positive_and_above_minimum(self):
        model = ExponentialDelay(mean=1.0, minimum=0.2)
        for _ in range(100):
            assert model.delay(0, 1, None, 0.0, RNG) >= 0.2

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            ExponentialDelay(mean=0.0)

    def test_jittered_is_deterministic_per_receiver(self):
        model = JitteredPerReceiverDelay(base=1.0, spread=2.0)
        first = model.delay(0, "x", None, 0.0, RNG)
        second = model.delay(5, "x", None, 9.0, RNG)
        assert first == second
        assert 1.0 <= first <= 3.0


class TestCompositeModels:
    def test_per_link_overrides(self):
        model = PerLinkDelay(ConstantDelay(1.0))
        model.set_link(0, 1, ConstantDelay(9.0))
        assert model.delay(0, 1, None, 0.0, RNG) == 9.0
        assert model.delay(1, 0, None, 0.0, RNG) == 1.0
        assert "per-link" in model.describe()

    def test_targeted_delay_holds_back_slow_edges(self):
        model = TargetedDelay(slow_edges=[(0, 1)], release_time=100.0, fast_model=ConstantDelay(0.5))
        assert model.delay(0, 1, None, 0.0, RNG) >= 100.0
        assert model.delay(1, 0, None, 0.0, RNG) == 0.5

    def test_targeted_delay_relative_to_current_time(self):
        model = TargetedDelay(slow_edges=[(0, 1)], release_time=100.0)
        # Even when sent late, the message stays far in the future.
        assert model.delay(0, 1, None, 90.0, RNG) >= 100.0 - 90.0

    def test_targeted_delay_validation(self):
        with pytest.raises(ValueError):
            TargetedDelay(slow_edges=[], release_time=0.0)
