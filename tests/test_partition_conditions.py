"""Unit tests for the partition conditions CCS / CCA / BCS (Defs. 16-18)."""

from __future__ import annotations

import pytest

from repro.conditions.partition_conditions import (
    check_bcs,
    check_bcs_literal,
    check_cca,
    check_cca_literal,
    check_ccs,
    check_ccs_literal,
    has_x_incoming,
)
from repro.exceptions import InvalidFaultBoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    complete_digraph,
    directed_cycle,
    figure_1a,
    star_out,
    two_cliques_bridged,
)


class TestIncomingRelation:
    def test_has_x_incoming_counts_distinct_neighbors(self):
        graph = DiGraph(edges=[(0, 3), (1, 3), (2, 3), (0, 4)])
        assert has_x_incoming(graph, {0, 1, 2}, {3, 4}, 3)
        assert not has_x_incoming(graph, {0, 1, 2}, {3, 4}, 4)

    def test_has_x_incoming_restricted_to_source_set(self):
        graph = DiGraph(edges=[(0, 2), (1, 2)])
        assert has_x_incoming(graph, {0}, {2}, 1)
        assert not has_x_incoming(graph, {0}, {2}, 2)


class TestCCA:
    def test_clique_threshold(self):
        assert check_cca(complete_digraph(3), 1).holds
        assert not check_cca(complete_digraph(2), 1).holds

    def test_cycle_fails_for_one_fault(self):
        report = check_cca(directed_cycle(6), 1)
        assert not report.holds
        violation = report.partition_violation
        assert violation is not None
        assert violation.left and violation.right
        assert not (violation.left & violation.right)
        assert violation.left_incoming <= 1 and violation.right_incoming <= 1

    def test_cycle_holds_for_zero_faults(self):
        assert check_cca(directed_cycle(6), 0).holds

    def test_violation_description(self):
        report = check_cca(directed_cycle(4), 1)
        assert "partition violation" in report.partition_violation.describe()

    def test_invalid_input(self):
        with pytest.raises(InvalidFaultBoundError):
            check_cca(DiGraph(), 1)


class TestCCS:
    def test_clique_always_holds(self):
        assert check_ccs(complete_digraph(3), 2).holds

    def test_star_breaks_when_hub_removed(self):
        assert check_ccs(star_out(4), 0).holds
        assert not check_ccs(star_out(4), 1).holds

    def test_cycle_tolerates_single_crash(self):
        assert check_ccs(directed_cycle(5), 1).holds

    def test_two_sources_violate_ccs(self):
        graph = DiGraph(edges=[(0, 2), (1, 2)])
        report = check_ccs(graph, 0)
        assert not report.holds
        assert report.partition_violation.left_incoming == 0


class TestBCS:
    def test_clique_threshold(self):
        assert check_bcs(complete_digraph(4), 1).holds
        assert not check_bcs(complete_digraph(3), 1).holds

    def test_figure_1a(self):
        assert check_bcs(figure_1a(), 1).holds
        assert not check_bcs(figure_1a(), 2).holds

    def test_violation_reports_fault_set(self):
        report = check_bcs(figure_1a(), 2)
        assert not report.holds
        assert len(report.partition_violation.fault_set) <= 2

    def test_two_cliques_with_few_bridges(self):
        graph = two_cliques_bridged(4, 2, 2)
        assert check_bcs(graph, 0).holds
        assert not check_bcs(graph, 2).holds


class TestLiteralOracles:
    @pytest.mark.parametrize("f", [0, 1])
    def test_literal_matches_fast_on_small_graphs(self, f):
        graphs = [
            complete_digraph(4),
            directed_cycle(4),
            star_out(4),
            DiGraph(edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]),
        ]
        for graph in graphs:
            assert check_cca_literal(graph, f).holds == check_cca(graph, f).holds
            assert check_ccs_literal(graph, f).holds == check_ccs(graph, f).holds
            assert check_bcs_literal(graph, f).holds == check_bcs(graph, f).holds

    def test_literal_violation_certificates(self):
        report = check_cca_literal(directed_cycle(4), 1)
        assert not report.holds
        assert report.partition_violation is not None
