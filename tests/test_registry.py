"""Tests for the typed extension registries, scenario files and repro.api.

Covers the plugin surface end to end: Registry semantics (registration,
duplicates, freezing, did-you-mean errors), parametrized plugin specs,
eager plugin validation at GridSpec.expand() time, TOML round-tripping of
every built-in scenario, a third-party-style behaviour + topology registered
from test code and swept end to end, and the artifact byte-identity of the
registry-loaded scenarios against the committed baselines.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary.behaviors import ByzantineBehavior, _replace_value
from repro.api import (
    ALGORITHMS,
    API_VERSION,
    BEHAVIORS,
    DELAYS,
    PLACEMENTS,
    STOP_POLICIES,
    TOPOLOGIES,
    DiGraph,
    GridSpec,
    Registry,
    SweepEngine,
    TopologySpec,
    compare,
    get_scenario,
    load_artifact,
    parse_plugin_spec,
    run_session,
    scenario_names,
    write_artifact,
)
from repro.exceptions import (
    ExperimentError,
    RegistryError,
    ReproError,
    ScenarioFileError,
    UnknownPluginError,
)
from repro.registry import validate_plugin_args
from repro.runner.algorithms import resolve_sync_behavior
from repro.runner.artifacts import artifact_payload
from repro.runner.scenario_files import (
    BUILTIN_SCENARIO_ORDER,
    _MiniTomlParser,
    Scenario,
    builtin_scenario_paths,
    dump_scenario_toml,
    load_scenario_text,
    validate_builtin_scenarios,
)
from repro.runner import scenarios as scenarios_module


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: 1, summary="first")
        assert registry.get("alpha")() == 1
        assert registry.names() == ["alpha"]
        assert "alpha" in registry
        assert registry.entry("alpha").summary == "first"

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("beta")
        def make_beta():
            """builds a beta"""
            return "beta"

        assert registry.get("beta") is make_beta
        assert registry.entry("beta").summary == "builds a beta"

    def test_duplicate_rejected_unless_replace(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("alpha", lambda: 2)
        registry.register("alpha", lambda: 2, replace=True)
        assert registry.get("alpha")() == 2

    def test_freeze_semantics(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: 1)
        registry.freeze()
        assert registry.frozen
        with pytest.raises(RegistryError, match="frozen"):
            registry.register("beta", lambda: 2)
        with pytest.raises(RegistryError, match="frozen"):
            registry.unregister("alpha")
        registry.unfreeze()
        registry.register("beta", lambda: 2)
        registry.unregister("beta")
        assert registry.names() == ["alpha"]

    def test_temporary_registration(self):
        registry = Registry("widget")
        with registry.temporarily("gamma", lambda: 3):
            assert registry.get("gamma")() == 3
        assert "gamma" not in registry

    def test_unknown_name_did_you_mean(self):
        registry = Registry("widget")
        registry.register("equivocate", lambda: 1)
        registry.register("offset", lambda: 2)
        with pytest.raises(UnknownPluginError) as excinfo:
            registry.get("equivocat")
        message = str(excinfo.value)
        assert "did you mean 'equivocate'?" in message
        assert "offset" in message  # the full valid-name listing
        with pytest.raises(UnknownPluginError, match="registered topologies"):
            TOPOLOGIES.get("cliqe")
        # one exception type, catchable as either family
        assert isinstance(excinfo.value, ExperimentError)
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ReproError)

    def test_unknown_plugin_error_survives_pickling(self):
        # Sharded sweeps pickle worker exceptions back to the parent.
        import pickle

        with pytest.raises(UnknownPluginError) as excinfo:
            TOPOLOGIES.get("cliqe")
        restored = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(restored, UnknownPluginError)
        assert str(restored) == str(excinfo.value)
        assert restored.suggestion == "clique"

    def test_registry_errors_are_repro_errors(self):
        assert issubclass(RegistryError, ReproError)
        assert issubclass(UnknownPluginError, ExperimentError)
        assert issubclass(ScenarioFileError, ExperimentError)

    def test_builtin_registries_populated(self):
        assert "clique" in TOPOLOGIES and "two-cliques" in TOPOLOGIES
        assert "offset" in BEHAVIORS and "crash" in BEHAVIORS
        assert "random" in PLACEMENTS and "last" in PLACEMENTS
        assert {"bw", "check-reach"} <= set(ALGORITHMS.names())
        assert "uniform" in DELAYS
        assert "max-cells" in STOP_POLICIES
        assert API_VERSION == 2

    def test_algorithm_kinds(self):
        kinds = {name: ALGORITHMS.get(name).kind for name in ALGORITHMS.names()}
        assert kinds["bw"] == "consensus"
        assert kinds["check-necessity"] == "check"


# ----------------------------------------------------------------------
# parametrized plugin specs
# ----------------------------------------------------------------------
class TestPluginSpecs:
    def test_parse_plugin_spec(self):
        assert parse_plugin_spec("offset") == ("offset", ())
        assert parse_plugin_spec("offset:2.5") == ("offset", (2.5,))
        assert parse_plugin_spec("random:-1e3,1e3") == ("random", (-1000.0, 1000.0))
        assert parse_plugin_spec("replay:3") == ("replay", (3,))
        assert parse_plugin_spec("x:true,hello") == ("x", (True, "hello"))

    def test_parse_plugin_spec_rejects_garbage(self):
        with pytest.raises(ExperimentError):
            parse_plugin_spec("")
        with pytest.raises(ExperimentError):
            parse_plugin_spec(":2.5")

    def test_validate_plugin_args_arity(self):
        validate_plugin_args(BEHAVIORS, "offset:2.5")
        validate_plugin_args(BEHAVIORS, "crash-after:3")
        with pytest.raises(ExperimentError, match="parameter"):
            validate_plugin_args(BEHAVIORS, "crash-after")  # requires honest_sends
        with pytest.raises(ExperimentError, match="parameter"):
            validate_plugin_args(BEHAVIORS, "offset:1,2")  # too many

    def test_parametrized_behavior_factory(self):
        factory = BEHAVIORS.get("offset")
        assert factory(2.5).offset == 2.5
        assert factory().offset == 25.0  # the registered default

    def test_make_delay(self):
        from repro.network.delays import ConstantDelay, UniformDelay, make_delay
        from repro.runner.algorithms import DEFAULT_DELAY_SPEC

        constant = make_delay("constant:2.0")
        assert isinstance(constant, ConstantDelay) and constant.latency == 2.0
        default = make_delay(DEFAULT_DELAY_SPEC)  # what the cell runners use
        assert isinstance(default, UniformDelay)
        assert (default.low, default.high) == (0.5, 2.0)  # the historical default
        with pytest.raises(UnknownPluginError):
            make_delay("gaussian:1.0")
        with pytest.raises(ExperimentError, match="parameter"):
            make_delay("constant:1.0,2.0")

    def test_sync_behavior_resolution(self):
        assert resolve_sync_behavior("honest") is None
        report = resolve_sync_behavior("offset:2.5")
        assert report(0, 0, 1, 10.0) == 12.5
        fixed = resolve_sync_behavior("fixed-high")
        assert fixed(0, 0, 1, 10.0) == 1e6
        with pytest.raises(ExperimentError, match="synchronous"):
            resolve_sync_behavior("equivocate")


# ----------------------------------------------------------------------
# eager validation at expand() time
# ----------------------------------------------------------------------
class TestExpandValidation:
    def _spec(self, **overrides):
        fields = dict(
            name="probe",
            algorithms=("check-reach",),
            topologies=(TopologySpec.make("clique", n=4),),
            behaviors=("-",),
            placements=("-",),
            seeds=(0,),
        )
        fields.update(overrides)
        return GridSpec(**fields)

    def test_valid_spec_expands(self):
        assert len(self._spec().expand()) == 1

    def test_unknown_behavior_fails_at_expand(self):
        spec = self._spec(algorithms=("bw",), behaviors=("fixed-hgih",), placements=("random",))
        with pytest.raises(UnknownPluginError, match="fixed-high"):
            spec.expand()

    def test_unknown_topology_fails_at_expand(self):
        spec = self._spec(topologies=(TopologySpec.make("cliqe", n=4),))
        with pytest.raises(UnknownPluginError, match="clique"):
            spec.expand()

    def test_unknown_placement_and_algorithm_fail_at_expand(self):
        with pytest.raises(UnknownPluginError):
            self._spec(algorithms=("bw",), behaviors=("crash",), placements=("nope",)).expand()
        with pytest.raises(UnknownPluginError):
            self._spec(algorithms=("frobnicate",)).expand()

    def test_bad_behavior_arity_fails_at_expand(self):
        spec = self._spec(algorithms=("bw",), behaviors=("offset:1,2,3",), placements=("random",))
        with pytest.raises(ExperimentError, match="parameter"):
            spec.expand()

    def test_sharded_run_fails_before_forking(self):
        # The pool must never fork for a grid with a typo'd plugin name.
        spec = self._spec(algorithms=("bw",), behaviors=("nope",), placements=("random",))
        engine = SweepEngine(workers=2)
        with pytest.raises(UnknownPluginError):
            engine.run(spec)


# ----------------------------------------------------------------------
# scenario files: dict and TOML round trips
# ----------------------------------------------------------------------
class TestScenarioFiles:
    def test_dict_round_trip_all_nine(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_toml_round_trip_all_nine(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            text = dump_scenario_toml(scenario)
            assert load_scenario_text(text) == scenario

    def test_mini_parser_agrees_with_tomllib(self):
        # The fallback parser (used on py<3.11) must read the canonical
        # emission identically to the stdlib parser.
        for name in scenario_names():
            scenario = get_scenario(name)
            text = dump_scenario_toml(scenario)
            assert Scenario.from_dict(_MiniTomlParser(text).parse()) == scenario

    def test_builtin_files_cover_canonical_order(self):
        stems = [path.stem for path in builtin_scenario_paths()]
        assert stems == list(BUILTIN_SCENARIO_ORDER)
        assert scenario_names() == list(BUILTIN_SCENARIO_ORDER)

    def test_validate_builtin_scenarios(self):
        scenarios = validate_builtin_scenarios()
        assert len(scenarios) == len(BUILTIN_SCENARIO_ORDER)

    def test_divergent_grid_name_survives_toml_round_trip(self):
        # The grid name keys the derived cell seeds; a spec whose name
        # differs from the scenario's must round-trip exactly.
        base = get_scenario("crash_baseline")
        import dataclasses

        scenario = dataclasses.replace(
            base, spec=dataclasses.replace(base.spec, name="inner-grid")
        )
        assert load_scenario_text(dump_scenario_toml(scenario)) == scenario

    def test_quick_defaults_to_spec(self):
        scenario = load_scenario_text(
            "\n".join(
                (
                    'name = "tiny"',
                    "[spec]",
                    'algorithms = ["check-reach"]',
                    'behaviors = ["-"]',
                    'placements = ["-"]',
                    "[[spec.topologies]]",
                    'family = "clique"',
                    "params = { n = 4 }",
                )
            )
        )
        assert scenario.quick == scenario.spec
        assert scenario.spec.name == "tiny"

    def test_schema_violations_rejected(self):
        with pytest.raises(ScenarioFileError, match="missing"):
            load_scenario_text('name = "x"')
        with pytest.raises(ScenarioFileError, match="name"):
            load_scenario_text("[spec]")
        with pytest.raises(ScenarioFileError, match="unknown grid-spec keys"):
            load_scenario_text(
                '\nname = "x"\n[spec]\nalgorithms = ["bw"]\nbogus = 1\n'
                '[[spec.topologies]]\nfamily = "clique"\nparams = { n = 4 }\n'
            )
        with pytest.raises(ScenarioFileError, match="schema_version"):
            load_scenario_text('schema_version = 99\nname = "x"\n[spec]\n')
        with pytest.raises(ScenarioFileError, match="non-empty list"):
            load_scenario_text('name = "x"\n[spec]\nalgorithms = []\n')

    def test_mini_parser_subset(self):
        payload = _MiniTomlParser(
            "\n".join(
                (
                    "# full-line comment",
                    'title = "hello # not a comment"  # trailing comment',
                    "count = 3",
                    "ratio = 0.5",
                    "flag = true",
                    "items = [1,",
                    "  2, 3]",
                    "[table]",
                    'inner = { a = 1, b = "two" }',
                    "[[rows]]",
                    "x = 1",
                    "[[rows]]",
                    "x = 2",
                )
            )
        ).parse()
        assert payload["title"] == "hello # not a comment"
        assert payload["count"] == 3 and payload["ratio"] == 0.5 and payload["flag"] is True
        assert payload["items"] == [1, 2, 3]
        assert payload["table"]["inner"] == {"a": 1, "b": "two"}
        assert [row["x"] for row in payload["rows"]] == [1, 2]


# ----------------------------------------------------------------------
# third-party-style extensions, registered from test code only
# ----------------------------------------------------------------------
def _double_star(n: int) -> DiGraph:
    """Two hubs, each broadcasting to every leaf; leaves answer both hubs."""
    graph = DiGraph(name=f"double-star-{n}")
    hubs = ["h0", "h1"]
    leaves = [f"leaf{i}" for i in range(n)]
    for node in hubs + leaves:
        graph.add_node(node)
    for hub in hubs:
        for leaf in leaves:
            graph.add_bidirectional_edge(hub, leaf)
    graph.add_bidirectional_edge("h0", "h1")
    return graph


class _HalveBehavior(ByzantineBehavior):
    """Report half the honest value (a third-party-style custom lie)."""

    def __init__(self, factor: float = 0.5) -> None:
        self.factor = factor

    def on_send(self, sender, receiver, payload, rng):
        if hasattr(payload, "value") and isinstance(payload.value, (int, float)):
            return [_replace_value(payload, payload.value * self.factor)]
        return [payload]


class TestThirdPartyExtensions:
    def test_custom_behavior_and_topology_sweep_end_to_end(self):
        """A behaviour + topology registered in-test drive a 4-cell sweep
        without modifying any src/repro file."""
        with TOPOLOGIES.temporarily("test-double-star", _double_star), BEHAVIORS.temporarily(
            "halve",
            lambda factor=0.5: _HalveBehavior(factor),
            metadata={"params": ("factor",), "min_params": 0},
        ):
            spec = GridSpec(
                name="third-party-probe",
                algorithms=("clique",),
                topologies=(TopologySpec.make("test-double-star", n=2),),
                f_values=(1,),
                behaviors=("halve", "halve:0.25"),
                placements=("last",),
                seeds=(1, 2),
                epsilon=0.5,
            )
            cells = spec.expand()  # plugin validation sees the new names
            assert len(cells) == 4
            result = run_session(spec)
        assert len(result.cells) == 4
        assert [cell.behavior for cell in result.cells] == [
            "halve", "halve", "halve:0.25", "halve:0.25",
        ]
        # the sweep really executed: every cell simulated messages
        assert all(cell.messages > 0 for cell in result.cells)
        # once the registration is gone, the same grid fails eagerly
        with pytest.raises(UnknownPluginError):
            spec.expand()

    def test_custom_algorithm_runs(self):
        from repro.runner.algorithms import AlgorithmSpec
        from repro.runner.harness import CellResult

        def run_stub(spec, cell, graph):
            return CellResult(
                index=cell.index,
                algorithm=cell.algorithm,
                topology=cell.topology.label,
                n=graph.num_nodes,
                f=cell.f,
                behavior=cell.behavior,
                placement=cell.placement,
                seed=cell.seed,
                derived_seed=cell.derived_seed,
                success=graph.num_nodes > 3,
                metrics={"nodes": graph.num_nodes},
            )

        stub = AlgorithmSpec(name="node-count", kind="check", run=run_stub)
        with ALGORITHMS.temporarily("node-count", stub):
            result = run_session(
                GridSpec(
                    name="algo-probe",
                    algorithms=("node-count",),
                    topologies=(TopologySpec.make("clique", n=5),),
                    behaviors=("-",),
                    placements=("-",),
                    seeds=(0,),
                )
            )
        assert result.cells[0].success and result.cells[0].metrics["nodes"] == 5


# ----------------------------------------------------------------------
# artifact identity: registry-loaded scenarios vs committed baselines
# ----------------------------------------------------------------------
class TestArtifactIdentity:
    def test_figure1b_quick_byte_identical_to_committed_baseline(self, tmp_path):
        scenario = get_scenario("figure1b")
        result = SweepEngine(workers=1).run(scenario.grid(quick=True))
        fresh = artifact_payload(result, mode="quick")
        with open("benchmarks/baselines/figure1b.quick.json", encoding="utf-8") as handle:
            baseline = json.load(handle)
        # provenance (environment/git) varies by machine; every result field
        # must be byte-identical once both are canonically serialized
        for key in ("schema_version", "kind", "scenario", "mode", "spec", "totals",
                    "groups", "cells"):
            assert json.dumps(fresh[key], sort_keys=True) == json.dumps(
                baseline[key], sort_keys=True
            ), f"drift in artifact field {key!r}"
        # and the compare() gate agrees
        path = tmp_path / "figure1b.quick.json"
        write_artifact(path, result, mode="quick")
        report = compare(baseline, load_artifact(path))
        assert report.ok, report.describe()

    def test_every_quick_artifact_compares_clean(self, tmp_path):
        engine = SweepEngine(workers=1)
        for name in scenario_names():
            result = engine.run(get_scenario(name).grid(quick=True))
            path = tmp_path / f"{name}.quick.json"
            write_artifact(path, result, mode="quick")
            with open(f"benchmarks/baselines/{name}.quick.json", encoding="utf-8") as handle:
                baseline = json.load(handle)
            report = compare(baseline, load_artifact(path))
            assert report.ok, f"{name}: {report.describe()}"


# ----------------------------------------------------------------------
# the pre-registry shim surface is gone; the registries cover it
# ----------------------------------------------------------------------
class TestShimSurfaceCollapsed:
    def test_scenarios_no_longer_carries_the_shims(self):
        # the duplicate loader paths were collapsed after api v2; the names
        # must not quietly come back alongside scenario_files.py
        for name in (
            "build_topology",
            "resolve_placement",
            "TOPOLOGY_FAMILIES",
            "BEHAVIOR_FACTORIES",
            "SYNC_BYZANTINE_VALUES",
        ):
            assert not hasattr(scenarios_module, name)
            assert name not in scenarios_module.__all__

    def test_registries_cover_the_former_topology_view(self):
        assert "clique" in TOPOLOGIES
        graph = TopologySpec.make("clique", n=4).build()
        assert graph.num_nodes == 4
        with pytest.raises(ExperimentError):
            TopologySpec.make("not-a-family").build()

    def test_registries_cover_the_former_behavior_views(self):
        behavior = BEHAVIORS.get("fixed-high")()
        assert behavior.value == 1e6
        assert "honest" in BEHAVIORS
        assert resolve_sync_behavior("honest") is None
        assert resolve_sync_behavior("fixed-high")(0, 0, 1, 3.0) == 1e6
        assert resolve_sync_behavior("offset")(0, 0, 1, 3.0) == 28.0
        with pytest.raises(ExperimentError):
            resolve_sync_behavior("crash")
