"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.baselines.iterative import trimmed_mean_update
from repro.algorithms.filter_average import filter_and_average
from repro.algorithms.messagesets import MessageSet
from repro.conditions.partition_conditions import check_bcs, check_cca, check_ccs
from repro.conditions.reach_conditions import (
    check_k_reach,
    check_one_reach,
    check_three_reach,
    check_two_reach,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.paths import find_f_cover, is_cover, is_redundant, is_simple
from repro.graphs.reach import reach_set, source_component

SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def small_digraphs(draw, max_nodes=6):
    """Random simple digraphs with 2..max_nodes nodes."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = DiGraph(nodes=range(n))
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                graph.add_edge(u, v)
    return graph


@st.composite
def node_sequences(draw):
    """Short sequences over a small alphabet, interpreted as candidate paths."""
    return tuple(draw(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=8)))


@st.composite
def path_sets(draw):
    """Small families of paths over a small alphabet."""
    count = draw(st.integers(min_value=0, max_value=5))
    return [
        tuple(draw(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=4)))
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# path invariants
# ----------------------------------------------------------------------
class TestPathProperties:
    @SETTINGS
    @given(node_sequences())
    def test_simple_implies_redundant(self, path):
        if is_simple(path):
            assert is_redundant(path)

    @SETTINGS
    @given(node_sequences())
    def test_redundant_matches_split_definition(self, path):
        brute = any(is_simple(path[: i + 1]) and is_simple(path[i:]) for i in range(len(path)))
        assert is_redundant(path) == (brute if path else False)

    @SETTINGS
    @given(path_sets(), st.integers(min_value=0, max_value=3))
    def test_found_cover_actually_covers(self, paths, f):
        cover = find_f_cover(paths, f)
        if cover is not None:
            assert len(cover) <= f or not paths
            assert is_cover(paths, cover)

    @SETTINGS
    @given(path_sets(), st.integers(min_value=0, max_value=2))
    def test_cover_monotone_in_f(self, paths, f):
        if find_f_cover(paths, f) is not None:
            assert find_f_cover(paths, f + 1) is not None


# ----------------------------------------------------------------------
# graph / condition invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @SETTINGS
    @given(small_digraphs(), st.integers(min_value=0, max_value=2))
    def test_reach_set_contains_node_and_avoids_excluded(self, graph, excluded_size):
        nodes = graph.nodes
        excluded = frozenset(nodes[1 : 1 + excluded_size])
        node = nodes[0]
        if node in excluded:
            return
        reach = reach_set(graph, node, excluded)
        assert node in reach
        assert not (reach & excluded)

    @SETTINGS
    @given(small_digraphs())
    def test_source_component_members_reach_everyone(self, graph):
        component = source_component(graph, set(), set())
        for member in component:
            reachable = set(graph.descendants(member)) | {member}
            assert reachable == set(graph.nodes)

    @SETTINGS
    @given(small_digraphs(), st.integers(min_value=0, max_value=2))
    def test_reach_conditions_are_nested(self, graph, f):
        # 3-reach ⇒ 2-reach ⇒ 1-reach (each is a special case of the next).
        three = check_three_reach(graph, f).holds
        two = check_two_reach(graph, f).holds
        one = check_one_reach(graph, f).holds
        if three:
            assert two
        if two:
            assert one

    @SETTINGS
    @given(small_digraphs(), st.integers(min_value=0, max_value=2))
    def test_conditions_monotone_in_f(self, graph, f):
        if not check_three_reach(graph, f).holds:
            assert not check_three_reach(graph, f + 1).holds
        if not check_two_reach(graph, f).holds:
            assert not check_two_reach(graph, f + 1).holds

    @SETTINGS
    @given(small_digraphs(), st.integers(min_value=0, max_value=1))
    def test_theorem17_equivalences(self, graph, f):
        assert check_one_reach(graph, f).holds == check_ccs(graph, f).holds
        assert check_two_reach(graph, f).holds == check_cca(graph, f).holds
        assert check_three_reach(graph, f).holds == check_bcs(graph, f).holds

    @SETTINGS
    @given(small_digraphs())
    def test_k_reach_collapses_to_one_reach_for_f_zero(self, graph):
        # With f = 0 every exclusion set is empty, so all k-reach conditions agree.
        verdicts = {check_k_reach(graph, 0, k).holds for k in (1, 2, 3, 4)}
        assert len(verdicts) == 1

    @SETTINGS
    @given(small_digraphs(), st.integers(min_value=1, max_value=2))
    def test_violation_certificates_are_genuine(self, graph, f):
        report = check_three_reach(graph, f)
        if not report.holds:
            violation = report.reach_violation
            ru = reach_set(graph, violation.u, violation.excluded_for_u())
            rv = reach_set(graph, violation.v, violation.excluded_for_v())
            assert not (ru & rv)


# ----------------------------------------------------------------------
# message set / averaging invariants
# ----------------------------------------------------------------------
class TestAlgorithmProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=0,
            max_size=8,
        )
    )
    def test_message_set_exclusion_is_subset(self, raw_entries):
        message_set = MessageSet()
        for index, (value, origin) in enumerate(raw_entries):
            message_set.add(value, (origin, index, "v"))
        restricted = message_set.exclude({0, 1})
        assert restricted.paths() <= message_set.paths()
        assert all({0, 1}.isdisjoint(path) for path in restricted.paths())

    @SETTINGS
    @given(
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=0, max_size=6),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.integers(min_value=0, max_value=2),
    )
    def test_trimmed_mean_stays_in_local_range(self, neighbor_values, own, f):
        received = {index: value for index, value in enumerate(neighbor_values)}
        result = trimmed_mean_update(own, received, f)
        low = min([own] + neighbor_values)
        high = max([own] + neighbor_values)
        assert low - 1e-9 <= result <= high + 1e-9

    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50, allow_nan=False),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=0,
            max_size=6,
        ),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.integers(min_value=0, max_value=2),
    )
    def test_filter_average_output_within_received_range(self, raw_entries, own_value, f):
        message_set = MessageSet()
        message_set.add(own_value, ("v",))
        for index, (value, origin) in enumerate(raw_entries):
            message_set.add(value, (f"n{origin}", f"relay{index}", "v"))
        result = filter_and_average(message_set, f, evaluating_node="v")
        values = message_set.values()
        assert min(values) - 1e-9 <= result.new_value <= max(values) + 1e-9
        assert own_value in result.kept_values

    @SETTINGS
    @given(
        st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=2),
    )
    def test_filter_average_fault_free_midpoint(self, values, f):
        # When every value arrives over a private single-hop path from a
        # distinct origin plus the node's own value, f = 0 keeps everything.
        message_set = MessageSet()
        message_set.add(values[0], ("v",))
        for index, value in enumerate(values[1:]):
            message_set.add(value, (f"n{index}", "v"))
        result = filter_and_average(message_set, 0, evaluating_node="v")
        assert result.new_value == (max(values) + min(values)) / 2
