"""Unit tests for the Completeness condition (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.algorithms.completeness import completeness, completeness_deficit
from repro.algorithms.messagesets import MessageSet
from repro.algorithms.topology import TopologyKnowledge
from repro.graphs.generators import complete_digraph


@pytest.fixture(scope="module")
def topology4():
    return TopologyKnowledge(complete_digraph(4), 1, "redundant")


def fill_from_all_paths(topology, node, values):
    """Build a message set as if every redundant path delivered the origin's value."""
    message_set = MessageSet()
    for path in topology.required_paths(node, frozenset()):
        message_set.add(values[path[0]], path)
    return message_set


class TestCompleteness:
    def test_complete_when_every_value_confirmed_from_everywhere(self, topology4):
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = fill_from_all_paths(topology4, 0, values)
        assert completeness(message_set, values, frozenset({3}), topology4, evaluating_node=0)

    def test_incomplete_when_witness_misses_a_source_value(self, topology4):
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = fill_from_all_paths(topology4, 0, values)
        witness_values = {0: 0.0, 1: 1.0}  # missing source-component members
        assert not completeness(message_set, witness_values, frozenset({3}), topology4, 0)

    def test_incomplete_when_local_confirmations_are_coverable(self, topology4):
        # Node 0 only heard node 2's value through paths whose second-to-last
        # hop is node 1, so the single fault candidate {1} could have forged
        # them all.
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = MessageSet()
        message_set.add(values[0], (0,))
        message_set.add(values[1], (1, 0))
        message_set.add(values[3], (3, 0))
        message_set.add(values[2], (2, 1, 0))  # only via node 1
        assert not completeness(message_set, values, frozenset({3}), topology4, 0)

    def test_complete_once_disjoint_confirmation_arrives(self, topology4):
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = MessageSet()
        message_set.add(values[0], (0,))
        message_set.add(values[1], (1, 0))
        message_set.add(values[3], (3, 0))
        message_set.add(values[2], (2, 1, 0))
        message_set.add(values[2], (2, 0))  # direct, bypassing node 1
        message_set.add(values[1], (1, 2, 0))
        message_set.add(values[3], (3, 1, 0))
        message_set.add(values[1], (1, 3, 0))
        message_set.add(values[3], (3, 2, 0))
        message_set.add(values[2], (2, 3, 0))
        assert completeness(message_set, values, frozenset({3}), topology4, 0)

    def test_mismatched_witness_value_blocks_completeness(self, topology4):
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = fill_from_all_paths(topology4, 0, values)
        lying_witness = dict(values)
        lying_witness[2] = 99.0  # nobody confirms this value locally
        assert not completeness(message_set, lying_witness, frozenset({3}), topology4, 0)


class TestDeficitDiagnostics:
    def test_deficit_empty_when_complete(self, topology4):
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = fill_from_all_paths(topology4, 0, values)
        assert completeness_deficit(message_set, values, frozenset({3}), topology4, 0) == {}

    def test_deficit_reports_missing_witness_value(self, topology4):
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = fill_from_all_paths(topology4, 0, values)
        witness_values = {node: value for node, value in values.items() if node != 2}
        deficits = completeness_deficit(message_set, witness_values, frozenset({3}), topology4, 0)
        assert deficits.get(2, "absent") is None

    def test_deficit_reports_cover(self, topology4):
        values = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        message_set = MessageSet()
        message_set.add(values[0], (0,))
        message_set.add(values[1], (1, 0))
        message_set.add(values[3], (3, 0))
        message_set.add(values[2], (2, 1, 0))
        deficits = completeness_deficit(message_set, values, frozenset({3}), topology4, 0)
        assert 2 in deficits and deficits[2] == frozenset({1})
