"""The phase-transition explorer (repro.phase) and its PhaseCurve artifact.

Covers knob discovery and phase-grid validation, curve derivation and
round-tripping, byte-identity of curves across serial / sharded / fabric
execution of the committed ``phase_density`` quick grid, the adaptive
refinement loop's budget claims (band concentration ≥ 2x at ≤ 60 % of the
uniform spend), store ingestion (schema v3), the ``phase`` CLI, and
field-for-field conformance with ``docs/phase-curves.md``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
import threading
import time

import pytest

from repro.exceptions import PhaseError, StoreError
from repro.phase import (
    PHASE_BAND_VARIANCE,
    PHASE_CURVE_KIND,
    PHASE_SCHEMA_VERSION,
    PhasePoint,
    curve_from_artifact,
    curve_from_result,
    curve_points,
    load_phase_curve,
    phase_knob,
    refine_phase,
    render_curve,
    run_phase,
    validate_phase_curve,
    validate_phase_spec,
    write_phase_curve,
)
from repro.phase.curve import (
    _BUDGET_KEYS,
    _POINT_KEYS,
    _REFINEMENT_KEYS,
    _REQUIRED_KEYS,
)
from repro.runner.artifacts import dumps_canonical, load_artifact
from repro.runner.cli import EXIT_OK, main
from repro.runner.fabric import FabricConfig, FabricCoordinator, FabricWorker
from repro.runner.harness import GridSpec, TopologySpec
from repro.runner.journal import load_journal
from repro.runner.scenario_files import Scenario, dump_scenario_toml
from repro.runner.scenarios import get_scenario
from repro.runner.session import ExperimentSession
from repro.store.store import ResultsStore

REPO_ROOT = pathlib.Path(__file__).parent.parent
BASELINES = REPO_ROOT / "benchmarks" / "baselines"
CURVE_DOC = REPO_ROOT / "docs" / "phase-curves.md"


def check_grid(name: str, ps, seeds=(1, 2, 3, 4), n: int = 7) -> GridSpec:
    """A cheap check-only phase grid over random-digraph density."""
    return GridSpec(
        name=name,
        algorithms=("check-reach",),
        topologies=tuple(
            TopologySpec.make("random-digraph", n=n, p=p, seed="cell") for p in ps
        ),
        f_values=(1,),
        behaviors=("equivocate",),
        placements=("random",),
        seeds=tuple(seeds),
        rounds=12,
    )


def scenario_of(grid: GridSpec) -> Scenario:
    return Scenario(
        name=grid.name, description="", artefact="", spec=grid, quick=grid
    )


# ----------------------------------------------------------------------
# knob discovery and phase-grid validation
# ----------------------------------------------------------------------
class TestPhaseSpec:
    def test_knob_detection(self):
        grid = check_grid("t", (0.2, 0.8))
        assert phase_knob(grid) == ("random-digraph", "p")
        assert validate_phase_spec(grid) == ("random-digraph", "p")

    def test_knob_detection_beta(self):
        grid = get_scenario("phase_smallworld").grid(quick=True)
        assert validate_phase_spec(grid) == ("watts-strogatz-bidirected", "beta")

    def test_committed_phase_scenarios_validate(self):
        for name in ("phase_density", "phase_smallworld"):
            scenario = get_scenario(name)
            for quick in (False, True):
                validate_phase_spec(scenario.grid(quick=quick))

    def test_mixed_families_rejected(self):
        grid = check_grid("t", (0.2,))
        mixed = dataclasses.replace(
            grid,
            topologies=grid.topologies
            + (TopologySpec.make("random-bidirected", n=7, p=0.5, seed="cell"),),
        )
        with pytest.raises(PhaseError, match="one topology family"):
            phase_knob(mixed)

    def test_two_varying_knobs_rejected(self):
        grid = dataclasses.replace(
            check_grid("t", (0.2,)),
            topologies=(
                TopologySpec.make("stochastic-kronecker", k=3, a=0.9, b=0.5, seed="cell"),
                TopologySpec.make("stochastic-kronecker", k=3, a=0.7, b=0.3, seed="cell"),
            ),
        )
        with pytest.raises(PhaseError, match="exactly one knob"):
            phase_knob(grid)

    def test_no_size_parameter_rejected(self):
        grid = dataclasses.replace(
            check_grid("t", (0.2,)),
            topologies=(TopologySpec.make("figure-1b"),),
        )
        with pytest.raises(PhaseError, match="size parameter"):
            phase_knob(grid)

    def test_no_knob_parameter_rejected(self):
        grid = dataclasses.replace(
            check_grid("t", (0.2,)),
            topologies=(TopologySpec.make("clique", n=5),),
        )
        with pytest.raises(PhaseError, match="no sweepable knob"):
            phase_knob(grid)

    def test_two_check_algorithms_rejected(self):
        grid = dataclasses.replace(
            check_grid("t", (0.2, 0.8)), algorithms=("check-reach", "check-table1")
        )
        with pytest.raises(PhaseError, match="at most one 'check'"):
            validate_phase_spec(grid)

    def test_non_singleton_behavior_axis_rejected(self):
        grid = dataclasses.replace(
            check_grid("t", (0.2, 0.8)), behaviors=("honest", "equivocate")
        )
        with pytest.raises(PhaseError, match="singleton behaviors"):
            validate_phase_spec(grid)


# ----------------------------------------------------------------------
# curve derivation, round-trip, rendering
# ----------------------------------------------------------------------
class TestCurve:
    def test_run_phase_derives_valid_curve(self, tmp_path):
        run = run_phase(scenario_of(check_grid("curve-t", (0.2, 0.8), seeds=(1, 2))), quick=True)
        curve = run.curve
        validate_phase_curve(curve)
        assert curve["kind"] == PHASE_CURVE_KIND
        assert curve["schema_version"] == PHASE_SCHEMA_VERSION
        assert curve["family"] == "random-digraph" and curve["knob"] == "p"
        assert curve["knob_values"] == [0.2, 0.8]
        assert curve["budget"]["base_cells"] == 4 == curve["budget"]["spent_cells"]
        assert curve["refinement"] is None
        points = curve_points(curve)
        assert [point.knob for point in points] == [0.2, 0.8]
        assert all(point.condition_rate is not None for point in points)
        assert all(point.success_rate is None for point in points)

        path = tmp_path / "t.curve.json"
        write_phase_curve(path, curve)
        assert load_phase_curve(path) == curve
        rendering = render_curve(curve)
        assert "random-digraph over p" in rendering
        assert "cond=" in rendering

    def test_curve_from_artifact_matches_run(self):
        run = run_phase(scenario_of(check_grid("curve-a", (0.3, 0.7), seeds=(1, 2))), quick=True)
        assert curve_from_artifact(run.sweep) == run.curve

    def test_serial_and_sharded_curves_are_byte_identical(self):
        grid = check_grid("curve-w", (0.3, 0.6, 0.9), seeds=(1, 2, 3))
        serial = run_phase(scenario_of(grid), quick=True, workers=1)
        sharded = run_phase(scenario_of(grid), quick=True, workers=3)
        assert dumps_canonical(serial.curve) == dumps_canonical(sharded.curve)

    def test_point_band_semantics(self):
        point = PhasePoint(n=7, f=1, knob=0.5, seeds=10, condition_rate=0.5,
                           success_rate=None, mean_rounds=None)
        assert point.primary_rate == 0.5
        assert point.success_variance == 0.25 >= PHASE_BAND_VARIANCE
        assert point.in_band
        edge = dataclasses.replace(point, condition_rate=0.05)
        assert not edge.in_band

    def test_validation_failures(self):
        run = run_phase(scenario_of(check_grid("curve-v", (0.2,), seeds=(1,))), quick=True)
        good = run.curve
        with pytest.raises(PhaseError, match="missing required keys"):
            validate_phase_curve({k: v for k, v in good.items() if k != "budget"})
        with pytest.raises(PhaseError, match="kind"):
            validate_phase_curve(dict(good, kind="something-else"))
        with pytest.raises(PhaseError, match="schema version"):
            validate_phase_curve(dict(good, schema_version=99))
        with pytest.raises(PhaseError, match="mode"):
            validate_phase_curve(dict(good, mode="fast"))
        broken_point = dict(good["points"][0], condition_rate=None, success_rate=None)
        with pytest.raises(PhaseError, match="neither"):
            validate_phase_curve(dict(good, points=[broken_point]))
        with pytest.raises(PhaseError, match="sorted"):
            validate_phase_curve(
                dict(good, points=[dict(p, knob=1.0 - p["knob"]) for p in good["points"]] + good["points"])
            )


# ----------------------------------------------------------------------
# byte-identity of the committed quick grid: serial / workers / fabric
# ----------------------------------------------------------------------
class TestCommittedGridFoldsIdentically:
    """The committed random-digraph quick grid (phase_density, check slice)
    folds byte-identically however it is executed — CELL_SEED sentinel cells
    derive their seeds from (grid name, index) alone."""

    @pytest.fixture(scope="class")
    def grid(self):
        base = get_scenario("phase_density").grid(quick=True)
        return dataclasses.replace(base, algorithms=("check-reach",))

    @pytest.fixture(scope="class")
    def serial_bytes(self, grid):
        session = ExperimentSession(grid, mode="quick", workers=1)
        for _ in session.events():
            pass
        payload = session.artifact_payload()
        payload["environment"] = None
        payload["git"] = None
        return dumps_canonical(payload)

    def test_workers_match_serial(self, grid, serial_bytes):
        session = ExperimentSession(grid, mode="quick", workers=4)
        for _ in session.events():
            pass
        payload = session.artifact_payload()
        payload["environment"] = None
        payload["git"] = None
        assert dumps_canonical(payload) == serial_bytes

    def test_fabric_two_workers_match_serial(self, grid, serial_bytes, tmp_path):
        coordinator = FabricCoordinator(
            grid,
            run_dir=tmp_path,
            mode="quick",
            config=FabricConfig(workers=0, poll_interval=0.02, chunks_per_worker=2),
        )
        coordinator.start()
        workers = []
        for worker_id in ("pw1", "pw2"):
            worker = FabricWorker(tmp_path, worker_id)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            workers.append(thread)
        try:
            deadline = time.monotonic() + 120
            while not coordinator.step():
                assert time.monotonic() < deadline, "fabric run timed out"
                time.sleep(coordinator.config.poll_interval)
        finally:
            coordinator.close()
        for thread in workers:
            thread.join(timeout=30)
        journal = load_journal(tmp_path)
        assert journal.sealed
        from repro.runner.artifacts import artifact_payload

        folded = artifact_payload(
            journal.fold(),
            mode="quick",
            provenance={"environment": None, "git": None},
        )
        assert dumps_canonical(folded) == serial_bytes

    def test_committed_baseline_exhibits_the_transition(self):
        curve = load_phase_curve(BASELINES / "phase_density.quick.curve.json")
        by_row = {}
        for point in curve_points(curve):
            by_row.setdefault((point.n, point.f), []).append(point)
        crossing = [
            row
            for row in by_row.values()
            if min(p.primary_rate for p in row) < 0.2
            and max(p.primary_rate for p in row) > 0.8
        ]
        assert crossing, "no (n, f) row crosses the transition"


# ----------------------------------------------------------------------
# adaptive refinement
# ----------------------------------------------------------------------
class TestRefinement:
    @pytest.fixture(scope="class")
    def refinement(self):
        grid = check_grid("phase-conc", (0.1, 0.3, 0.5, 0.7, 0.9))
        return refine_phase(
            scenario_of(grid),
            quick=True,
            budget_cells=200,
            resolution=0.05,
            seed_boost=6,
        )

    def test_argument_validation(self):
        scenario = scenario_of(check_grid("phase-args", (0.2, 0.8)))
        with pytest.raises(PhaseError, match="budget_cells"):
            refine_phase(scenario, quick=True, budget_cells=-1, resolution=0.1)
        with pytest.raises(PhaseError, match="resolution"):
            refine_phase(scenario, quick=True, budget_cells=8, resolution=0.0)
        with pytest.raises(PhaseError, match="seed_boost"):
            refine_phase(scenario, quick=True, budget_cells=8, resolution=0.1, seed_boost=0)

    def test_concentrates_seeds_in_the_band(self, refinement):
        # The acceptance claim: in-band points hold >= 2x the uniform
        # per-point seed share at equal total budget.
        assert refinement.concentration_ratio is not None
        assert refinement.concentration_ratio >= 2.0
        points = curve_points(refinement.curve)
        in_band = [point for point in points if point.in_band]
        assert in_band
        base_depth = refinement.curve["seeds_per_point"]
        assert all(point.seeds > base_depth for point in in_band)

    def test_cheaper_than_uniform(self, refinement):
        assert refinement.spent_cells <= 0.6 * refinement.uniform_cells

    def test_reaches_target_resolution_in_band(self, refinement):
        points = curve_points(refinement.curve)
        rows = {}
        for point in points:
            rows.setdefault((point.n, point.f), []).append(point)
        for row in rows.values():
            row.sort(key=lambda point: point.knob)
            for left, right in zip(row, row[1:]):
                if left.in_band or right.in_band:
                    assert right.knob - left.knob <= 0.05 + 1e-9

    def test_budget_respected(self, refinement):
        base = refinement.curve["budget"]["base_cells"]
        assert refinement.spent_cells - base <= 200
        assert refinement.curve["refinement"]["rounds"] == len(refinement.rounds)

    def test_refinement_metadata_recorded(self, refinement):
        meta = refinement.curve["refinement"]
        assert meta["resolution"] == 0.05
        assert meta["variance_floor"] == PHASE_BAND_VARIANCE
        assert meta["budget_cells"] == 200
        inserted = {(row["n"], row["knob"]) for row in meta["inserted"]}
        assert inserted, "refinement never bisected the knob axis"
        base_values = {0.1, 0.3, 0.5, 0.7, 0.9}
        assert all(knob not in base_values for _n, knob in inserted)
        point_keys = {(point.n, point.knob) for point in curve_points(refinement.curve)}
        assert inserted <= point_keys

    def test_rounds_use_fresh_scenario_names(self, refinement):
        # Derived cell seeds depend on the grid name: reusing the base name
        # would replay identical Monte Carlo samples instead of pooling
        # independent ones.
        names = {sweep["scenario"] for sweep in refinement.sweeps}
        assert names
        assert all(re.fullmatch(r"phase-conc-refine-\d+", name) for name in names)

    def test_deterministic(self):
        grid = check_grid("phase-det", (0.3, 0.6, 0.9), seeds=(1, 2))
        kwargs = dict(quick=True, budget_cells=24, resolution=0.1)
        first = refine_phase(scenario_of(grid), **kwargs)
        second = refine_phase(scenario_of(grid), **kwargs)
        assert dumps_canonical(first.curve) == dumps_canonical(second.curve)


# ----------------------------------------------------------------------
# store ingestion (schema v3)
# ----------------------------------------------------------------------
class TestStoreIngestion:
    @pytest.fixture
    def store(self, tmp_path):
        with ResultsStore(tmp_path / "store.sqlite") as store:
            yield store

    def test_ingest_curve_file_roundtrip(self, store):
        path = BASELINES / "phase_density.quick.curve.json"
        (report,) = store.ingest(path)
        assert report.kind == "phase" and report.action == "inserted"
        (again,) = store.ingest(path)
        assert again.action == "unchanged" and again.row_id == report.row_id

        (curve,) = store.phase_curves("phase_density")
        payload = load_phase_curve(path)
        assert curve["family"] == payload["family"] == "random-digraph"
        assert curve["knob"] == "p"
        assert curve["points"] == len(payload["points"])
        assert curve["refined"] == 0
        rows = store.phase_points(curve["id"])
        assert len(rows) == len(payload["points"])
        assert [
            (row["n"], row["f"], row["knob"]) for row in rows
        ] == [(p["n"], p["f"], p["knob"]) for p in payload["points"]]

    def test_same_key_different_bytes_replaces(self, store):
        payload = load_phase_curve(BASELINES / "phase_density.quick.curve.json")
        assert store.ingest_phase_payload(payload).action == "inserted"
        modified = dict(payload, environment={"python": "changed"})
        report = store.ingest_phase_payload(modified)
        assert report.action == "replaced"
        assert len(store.phase_curves("phase_density")) == 1

    def test_unknown_curve_id_raises(self, store):
        with pytest.raises(StoreError, match="phase curve"):
            store.phase_points(999)

    def test_invalid_phase_file_strict_vs_lenient(self, store, tmp_path):
        bad_dir = tmp_path / "curves"
        bad_dir.mkdir()
        bad = bad_dir / "bad.curve.json"
        bad.write_text(
            json.dumps({"kind": PHASE_CURVE_KIND, "schema_version": 99}),
            encoding="utf-8",
        )
        with pytest.raises(StoreError):
            store.ingest(bad)
        (report,) = store.ingest(bad_dir)
        assert report.action == "skipped"


# ----------------------------------------------------------------------
# the phase CLI
# ----------------------------------------------------------------------
class TestPhaseCli:
    def test_show_committed_curve(self, capsys):
        assert main(["phase", "show", str(BASELINES / "phase_density.quick.curve.json")]) == EXIT_OK
        out = capsys.readouterr().out
        assert "phase curve: phase_density (quick)" in out

    def test_show_derives_from_sweep_artifact(self, capsys):
        assert main(["phase", "show", str(BASELINES / "phase_density.quick.json")]) == EXIT_OK
        assert "random-digraph over p" in capsys.readouterr().out

    def test_run_writes_sweep_and_curve(self, tmp_path, capsys):
        grid = check_grid("phase-cli", (0.2, 0.8), seeds=(1, 2))
        scenario_file = tmp_path / "phase_cli.toml"
        scenario_file.write_text(dump_scenario_toml(scenario_of(grid)), encoding="utf-8")
        code = main([
            "phase", "run", "--scenario-file", str(scenario_file),
            "--quick", "--output", str(tmp_path),
        ])
        assert code == EXIT_OK
        curve = load_phase_curve(tmp_path / "phase-cli.quick.curve.json")
        sweep = load_artifact(tmp_path / "phase-cli.quick.json")
        assert curve == curve_from_artifact(sweep)

    def test_refine_cli(self, tmp_path, capsys):
        grid = check_grid("phase-cli-r", (0.3, 0.6, 0.9), seeds=(1, 2))
        scenario_file = tmp_path / "phase_cli_r.toml"
        scenario_file.write_text(dump_scenario_toml(scenario_of(grid)), encoding="utf-8")
        code = main([
            "phase", "refine", "--scenario-file", str(scenario_file),
            "--quick", "--budget", "24", "--resolution", "0.1",
            "--output", str(tmp_path), "--store", str(tmp_path / "phase.sqlite"),
        ])
        assert code == EXIT_OK
        curve = load_phase_curve(tmp_path / "phase-cli-r.quick.curve.json")
        assert curve["refinement"] is not None
        with ResultsStore(tmp_path / "phase.sqlite", readonly=True) as store:
            assert store.phase_curves("phase-cli-r")

    def test_scenario_and_file_are_mutually_exclusive(self):
        assert main(["phase", "run", "--quick"]) == 2
        assert main([
            "phase", "run", "--scenario", "phase_density",
            "--scenario-file", "x.toml", "--quick",
        ]) == 2


# ----------------------------------------------------------------------
# docs/phase-curves.md conformance
# ----------------------------------------------------------------------
def doc_text() -> str:
    return CURVE_DOC.read_text(encoding="utf-8")


def doc_block() -> dict:
    match = re.search(
        r"<!-- conformance:curve -->\s*```json\n(?P<body>.*?)```",
        doc_text(),
        re.DOTALL,
    )
    assert match, "docs/phase-curves.md lost its conformance block"
    return json.loads(match.group("body"))


def is_placeholder(value) -> bool:
    return isinstance(value, str) and value.startswith("<") and value.endswith(">")


class TestDocConformance:
    def test_doc_names_every_field(self):
        text = doc_text()
        for field_name in (
            _REQUIRED_KEYS + _POINT_KEYS + _BUDGET_KEYS + _REFINEMENT_KEYS
        ):
            assert f"`{field_name}`" in text, (
                f"docs/phase-curves.md does not document {field_name!r}"
            )
        assert f"`{PHASE_CURVE_KIND}`" in text
        assert str(PHASE_BAND_VARIANCE) in text

    def test_example_block_matches_a_real_curve(self):
        doc = doc_block()
        grid = check_grid("phase-demo", (0.2, 0.8), seeds=(1, 2), n=5)
        run = run_phase(scenario_of(grid), quick=True)
        actual = run.curve
        assert set(doc) == set(actual) == set(_REQUIRED_KEYS)
        for key, documented in doc.items():
            if is_placeholder(documented):
                continue
            if key == "budget":
                assert set(documented) == set(_BUDGET_KEYS)
                assert actual[key] == documented
            elif key == "points":
                assert len(documented) == len(actual[key])
                for doc_point, real_point in zip(documented, actual[key]):
                    assert set(doc_point) == set(real_point) == set(_POINT_KEYS)
                    for field_name, value in doc_point.items():
                        if not is_placeholder(value):
                            assert real_point[field_name] == value, field_name
            else:
                assert actual[key] == documented, key

    def test_doc_states_the_filename_convention(self):
        text = doc_text()
        assert "<scenario>.<mode>.curve.json" in text
        assert "phase_curves" in text and "phase_points" in text
