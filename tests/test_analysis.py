"""Tests for the analysis layer: convergence bounds, feasibility, tables, necessity."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import (
    all_within_bound,
    contraction_factors,
    convergence_table,
    required_rounds,
    theoretical_bound,
)
from repro.analysis.feasibility import (
    compare_undirected,
    directed_feasibility_row,
    equivalences_hold,
    undirected_family_comparison,
)
from repro.analysis.necessity import (
    build_schedule,
    demonstrate_disagreement,
    find_violation,
)
from repro.analysis.tables import render_table1, render_table2, table1_rows, table2_rows
from repro.conditions.reach_conditions import check_three_reach
from repro.graphs.generators import (
    bidirected_cycle,
    bidirected_wheel,
    complete_digraph,
    directed_cycle,
    figure_1a,
    star_out,
)


class TestConvergenceAnalysis:
    def test_theoretical_bound(self):
        assert theoretical_bound(1.0, 0) == 1.0
        assert theoretical_bound(1.0, 3) == 0.125

    def test_required_rounds(self):
        assert required_rounds(1.0, 0.1) == 4
        assert required_rounds(0.05, 0.1) == 0
        with pytest.raises(ValueError):
            required_rounds(1.0, 0.0)

    def test_convergence_table(self):
        rows = convergence_table([1.0, 0.5, 0.2])
        assert len(rows) == 3
        assert rows[2].theoretical_bound == pytest.approx(0.25)
        assert all(row.within_bound for row in rows)
        assert convergence_table([]) == []

    def test_all_within_bound(self):
        assert all_within_bound([1.0, 0.5, 0.25])
        assert not all_within_bound([1.0, 0.9])

    def test_contraction_factors(self):
        factors = contraction_factors([1.0, 0.5, 0.1, 0.0, 0.0])
        assert factors[0] == pytest.approx(0.5)
        assert len(factors) == 3


class TestFeasibilityAnalysis:
    def test_undirected_comparison_consistent_on_wheel(self):
        row = compare_undirected(bidirected_wheel(7), 1)
        assert row.kappa == 3
        assert row.classical_byz and row.reach_3
        assert row.consistent

    def test_undirected_comparison_cycle(self):
        row = compare_undirected(bidirected_cycle(6), 1)
        assert row.classical_crash_sync and row.reach_1
        assert not row.classical_byz and not row.reach_3
        assert row.consistent

    def test_family_comparison(self):
        rows = undirected_family_comparison([bidirected_cycle(5), bidirected_wheel(6)], [1])
        assert len(rows) == 2
        assert all(row.consistent for row in rows)

    def test_directed_row_and_theorem17(self):
        row = directed_feasibility_row(figure_1a(), 1)
        assert row.verdict("3-reach") and row.verdict("byz/async")
        assert equivalences_hold(row)
        assert row.verdict("unknown-condition") is None

    def test_directed_row_on_weak_graph(self):
        row = directed_feasibility_row(directed_cycle(5), 1)
        assert row.verdict("crash/sync")
        assert not row.verdict("byz/async")
        assert equivalences_hold(row)


class TestTableRegeneration:
    def test_table1_render(self):
        rows = table1_rows([bidirected_cycle(5), bidirected_wheel(6)], [1])
        text = render_table1(rows)
        assert "kappa" in text and "wheel-6" in text
        assert text.count("\n") >= 3

    def test_table2_render(self):
        rows = table2_rows([complete_digraph(4), directed_cycle(5)], [1])
        text = render_table2(rows)
        assert "byz/async (3-reach, this paper)" in text
        assert "clique-4" in text and "cycle-5" in text


class TestNecessity:
    def test_no_violation_on_feasible_graph(self):
        assert find_violation(complete_digraph(4), 1) is None

    def test_violation_found_on_weak_graph(self):
        violation = find_violation(directed_cycle(6), 1)
        assert violation is not None
        assert not (violation.reach_u & violation.reach_v)

    def test_schedule_structure(self):
        graph = directed_cycle(6)
        violation = find_violation(graph, 1)
        schedule = build_schedule(graph, violation, epsilon=1.0)
        assert schedule.structural_facts_hold
        assert schedule.e1.crashed == violation.fault_set_v
        assert schedule.e2.crashed == violation.fault_set_u
        assert schedule.e3.byzantine == violation.shared_fault_set
        assert set(schedule.e3.inputs) == set(graph.nodes)
        # Inputs of e3: 0 on reach_v, epsilon on reach_u.
        assert all(schedule.e3.inputs[node] == 0.0 for node in violation.reach_v)
        assert all(schedule.e3.inputs[node] == 1.0 for node in violation.reach_u)

    def test_schedule_epsilon_validation(self):
        graph = directed_cycle(6)
        violation = find_violation(graph, 1)
        with pytest.raises(Exception):
            build_schedule(graph, violation, epsilon=0.0)

    def test_disagreement_demonstration_cycle(self):
        graph = directed_cycle(6)
        violation = find_violation(graph, 1)
        result = demonstrate_disagreement(graph, violation, epsilon=1.0, rounds=15)
        assert result.convergence_violated
        assert result.disagreement >= 1.0 - 1e-9

    def test_disagreement_demonstration_star(self):
        graph = star_out(5)
        assert not check_three_reach(graph, 1).holds
        violation = find_violation(graph, 1)
        result = demonstrate_disagreement(graph, violation, epsilon=0.5, rounds=10)
        assert result.convergence_violated

    def test_disagreement_respects_rounds_argument(self):
        graph = directed_cycle(6)
        violation = find_violation(graph, 1)
        result = demonstrate_disagreement(graph, violation, epsilon=1.0, rounds=3)
        assert result.rounds == 3
