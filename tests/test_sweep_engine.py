"""Tests for the sweep orchestration engine: expansion, seeding, sharding."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.runner.artifacts import artifact_payload
from repro.runner.harness import (
    CellResult,
    GridSpec,
    SweepEngine,
    TopologySpec,
    aggregate_cells,
    derive_cell_seed,
    run_grid,
)
from repro.runner.algorithms import resolve_placement
from repro.runner.scenarios import (
    SCENARIOS,
    get_scenario,
    run_cell,
    scenario_names,
)

QUICK = get_scenario("definition1").grid(quick=True)
CHECK = get_scenario("table1").grid(quick=True)


class TestDerivedSeeds:
    def test_stable_across_processes_and_platforms(self):
        # SHA-256 based: the value is part of the artifact contract.
        assert derive_cell_seed("definition1", 0) == 6700959150702298392

    def test_distinct_per_scenario_and_index(self):
        seeds = {derive_cell_seed(name, index) for name in ("a", "b") for index in range(50)}
        assert len(seeds) == 100

    def test_non_negative_63_bit(self):
        for index in range(100):
            seed = derive_cell_seed("x", index)
            assert 0 <= seed < 2 ** 63


class TestGridExpansion:
    def test_cross_product_and_indexing(self):
        cells = QUICK.expand()
        assert len(cells) == QUICK.num_cells == 3
        assert [cell.index for cell in cells] == [0, 1, 2]
        for cell in cells:
            assert cell.derived_seed == derive_cell_seed(QUICK.name, cell.index)

    def test_expansion_is_deterministic(self):
        assert QUICK.expand() == QUICK.expand()

    def test_topology_spec_labels(self):
        spec = TopologySpec.make("two-cliques", clique_size=5, forward_bridges=2,
                                 backward_bridges=2)
        assert spec.label == "two-cliques(backward_bridges=2,clique_size=5,forward_bridges=2)"
        assert TopologySpec.make("figure-1a").label == "figure-1a"
        assert spec.as_dict()["params"]["clique_size"] == 5

    def test_spec_as_dict_round_trips_axes(self):
        payload = QUICK.as_dict()
        assert payload["name"] == "definition1"
        assert payload["behaviors"] == list(QUICK.behaviors)
        assert payload["topologies"][0]["family"] == "clique"


class TestCellExecution:
    def test_run_cell_is_order_independent(self):
        cells = QUICK.expand()
        full = [run_cell(QUICK, cell) for cell in cells]
        reordered = [run_cell(QUICK, cell) for cell in reversed(cells)]
        assert full == list(reversed(reordered))

    def test_unknown_algorithm_rejected(self):
        spec = GridSpec(name="bad", algorithms=("nope",),
                        topologies=(TopologySpec.make("clique", n=3),))
        with pytest.raises(ExperimentError):
            run_cell(spec, spec.expand()[0])

    def test_unknown_topology_rejected(self):
        with pytest.raises(ExperimentError):
            TopologySpec.make("not-a-family").build()

    def test_placement_resolution(self):
        graph = TopologySpec.make("clique", n=4).build()
        assert resolve_placement("none", graph, 1, seed=1) == frozenset()
        assert resolve_placement("last", graph, 1, seed=1) == frozenset({3})
        assert len(resolve_placement("random", graph, 2, seed=9)) == 2
        assert resolve_placement("random", graph, 2, seed=9) == resolve_placement(
            "random", graph, 2, seed=9
        )
        with pytest.raises(ExperimentError):
            resolve_placement("nope", graph, 1, seed=1)

    def test_last_placement_sorts_integer_labels_numerically(self):
        # repr order would put 10 and 11 before 2; 'last' must pick {10, 11}.
        graph = TopologySpec.make("clique", n=12).build()
        assert resolve_placement("last", graph, 2, seed=1) == frozenset({10, 11})

    def test_unknown_input_generator_rejected(self):
        spec = GridSpec(
            name="bad-inputs",
            algorithms=("iterative",),
            topologies=(TopologySpec.make("clique", n=3),),
            inputs="Random",
        )
        with pytest.raises(ExperimentError, match="input generator"):
            run_cell(spec, spec.expand()[0])

    def test_necessity_check_rejects_feasible_graphs(self):
        spec = GridSpec(
            name="bad-necessity",
            algorithms=("check-necessity",),
            topologies=(TopologySpec.make("clique", n=4),),
            f_values=(1,),
        )
        with pytest.raises(ExperimentError, match="satisfies 3-reach"):
            run_cell(spec, spec.expand()[0])

    def test_check_cells_report_metrics(self):
        cells = CHECK.expand()
        result = run_cell(CHECK, cells[0])
        assert result.rounds == 0 and result.messages == 0
        assert set(result.metrics) >= {"reach_1", "reach_2", "reach_3", "kappa"}


class TestEngine:
    def test_serial_and_sharded_runs_are_identical(self):
        serial = SweepEngine(workers=1).run(QUICK)
        sharded = SweepEngine(workers=2).run(QUICK)
        assert serial.cells == sharded.cells
        assert artifact_payload(serial) == artifact_payload(sharded)

    def test_sharded_checks_match_serial_with_explicit_chunking(self):
        serial = run_grid(CHECK, workers=1)
        sharded = run_grid(CHECK, workers=2, chunk_size=1)
        assert serial.cells == sharded.cells

    def test_incremental_aggregation_matches_reaggregation(self):
        result = SweepEngine(workers=1).run(QUICK)
        assert [group.as_dict() for group in result.groups] == [
            group.as_dict() for group in aggregate_cells(result.cells)
        ]

    def test_engine_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SweepEngine(workers=0)
        with pytest.raises(ValueError):
            SweepEngine(workers=2, chunk_size=0)

    def test_wall_time_and_workers_are_observational(self):
        from repro.runner.artifacts import dumps_canonical

        result = SweepEngine(workers=1).run(CHECK)
        assert result.wall_seconds > 0.0
        text = dumps_canonical(artifact_payload(result))
        assert "wall_seconds" not in text and "workers" not in text


class TestAggregation:
    def _cell(self, index, behavior="b", success=True, rounds=4, messages=10, rng=0.1):
        return CellResult(
            index=index, algorithm="a", topology="t", n=4, f=1, behavior=behavior,
            placement="p", seed=index, derived_seed=index, success=success,
            output_range=rng, rounds=rounds, messages=messages,
        )

    def test_groups_fold_across_seeds_only(self):
        groups = aggregate_cells(
            [self._cell(0), self._cell(1, success=False, rounds=6, messages=30, rng=0.5),
             self._cell(2, behavior="other")]
        )
        assert len(groups) == 2
        first = groups[0]
        assert first.runs == 2 and first.successes == 1
        assert first.success_rate == 0.5
        assert first.mean_rounds == 5.0
        assert first.mean_messages == 20.0
        assert first.worst_range == 0.5

    def test_undecided_cells_poison_worst_range(self):
        groups = aggregate_cells([self._cell(0), self._cell(1, rng=None)])
        assert groups[0].undecided == 1
        assert groups[0].as_dict()["worst_range"] is None


class TestScenarioRegistry:
    def test_every_scenario_has_a_quicker_quick_grid(self):
        for name in scenario_names():
            scenario = SCENARIOS[name]
            assert scenario.quick.num_cells <= scenario.spec.num_cells
            assert scenario.spec.name == name == scenario.quick.name

    def test_unknown_scenario_error_lists_known_names(self):
        with pytest.raises(ExperimentError, match="definition1"):
            get_scenario("not-a-scenario")

    def test_quick_grids_run_everywhere(self):
        # The CI matrix depends on every quick grid being executable.  The
        # resilience grid deliberately contains failing verdicts (that is
        # the sweep's point), so only executability is asserted there.
        result = SweepEngine(workers=1).run(SCENARIOS["resilience"].grid(quick=True))
        assert result.cells
        for name in ("table2", "necessity"):
            result = SweepEngine(workers=1).run(SCENARIOS[name].grid(quick=True))
            assert result.cells and all(cell.success for cell in result.cells)


class TestLegacyHarness:
    def test_sweep_behaviors_is_reorder_invariant(self):
        from repro.adversary.behaviors import CrashBehavior, FixedValueBehavior
        from repro.algorithms.base import ConsensusConfig
        from repro.graphs.generators import complete_digraph
        from repro.runner.experiment import run_iterative_experiment
        from repro.runner.harness import spread_inputs, sweep_behaviors

        graph = complete_digraph(4)
        inputs = spread_inputs(graph, 0.0, 1.0)
        config = ConsensusConfig(f=1, epsilon=0.3, input_low=0.0, input_high=1.0)

        def run_one(plan, seed, behavior_name):
            return run_iterative_experiment(
                graph, inputs, config, rounds=15,
                faulty_nodes=plan.faulty_nodes,
                byzantine_value=lambda n, r, k, v: 50.0,
                behavior_name=behavior_name,
            )

        behaviors = {"fixed": lambda: FixedValueBehavior(50.0), "crash": lambda: CrashBehavior()}
        forward = sweep_behaviors(run_one, graph, f=1, behaviors=behaviors, seeds=(1, 2))
        reversed_axis = sweep_behaviors(
            run_one, graph, f=1,
            behaviors=dict(reversed(list(behaviors.items()))), seeds=(1, 2),
        )
        by_label = {cell.label: cell for cell in reversed_axis}
        for cell in forward:
            twin = by_label[cell.label]
            assert [outcome.faulty_nodes for outcome in cell.outcomes] == [
                outcome.faulty_nodes for outcome in twin.outcomes
            ]
            assert [outcome.outputs for outcome in cell.outcomes] == [
                outcome.outputs for outcome in twin.outcomes
            ]
