"""Shared fixtures for the test-suite.

Most fixtures are small graphs reused across modules; the expensive
Byzantine-Witness integration runs share a module-scoped topology
precomputation to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import ConsensusConfig
from repro.algorithms.topology import TopologyKnowledge
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    complete_digraph,
    directed_cycle,
    figure_1a,
    figure_1b,
)


@pytest.fixture
def triangle() -> DiGraph:
    """The 3-clique (complete digraph on 3 nodes)."""
    return complete_digraph(3)


@pytest.fixture
def clique4() -> DiGraph:
    """The 4-clique — the smallest graph tolerating one Byzantine fault."""
    return complete_digraph(4)


@pytest.fixture
def cycle5() -> DiGraph:
    """A directed 5-cycle — strongly connected but fragile (no 2-reach for f=1)."""
    return directed_cycle(5)


@pytest.fixture
def fig1a() -> DiGraph:
    """The paper's Figure 1(a) graph (5-node wheel, bidirected)."""
    return figure_1a()


@pytest.fixture(scope="session")
def fig1b() -> DiGraph:
    """The paper's Figure 1(b) graph (two 7-node cliques + 8 directed edges)."""
    return figure_1b()


@pytest.fixture
def diamond() -> DiGraph:
    """A 4-node diamond: 0 → {1, 2} → 3 plus a feedback edge 3 → 0."""
    graph = DiGraph(name="diamond")
    graph.add_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    return graph


@pytest.fixture
def basic_config() -> ConsensusConfig:
    """A standard f=1 configuration used by algorithm unit tests."""
    return ConsensusConfig(f=1, epsilon=0.25, input_low=0.0, input_high=1.0)


@pytest.fixture(scope="session")
def clique4_topology() -> TopologyKnowledge:
    """Shared topology precomputation for the 4-clique (f=1, redundant policy)."""
    topology = TopologyKnowledge(complete_digraph(4), 1, "redundant")
    topology.precompute_all()
    return topology
