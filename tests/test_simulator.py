"""Unit tests for the discrete-event asynchronous network simulator."""

from __future__ import annotations

import pytest

from repro.exceptions import SchedulerError, SimulationError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import complete_digraph, directed_cycle
from repro.network.delays import ConstantDelay, UniformDelay
from repro.network.node import Process, RecordingProcess, SilentProcess
from repro.network.simulator import Simulator


class Broadcaster(Process):
    """Broadcasts a single payload at start."""

    def __init__(self, node_id, payload):
        super().__init__(node_id)
        self.payload = payload

    def on_start(self):
        self.broadcast(self.payload)


class Forwarder(Process):
    """Forwards every received payload once, appending its own id."""

    def on_message(self, sender, payload):
        if isinstance(payload, tuple) and len(payload) < 3:
            self.broadcast(payload + (self.node_id,))


class TimerUser(Process):
    """Decides a value when its timer fires."""

    def on_start(self):
        self.require_context().set_timer(5.0, tag="wake")

    def on_timer(self, tag):
        self.decide(tag)


class TestRegistration:
    def test_process_must_be_on_graph_node(self):
        simulator = Simulator(complete_digraph(2))
        with pytest.raises(SimulationError):
            simulator.add_process(RecordingProcess(99))

    def test_duplicate_process_rejected(self):
        simulator = Simulator(complete_digraph(2))
        simulator.add_process(RecordingProcess(0))
        with pytest.raises(SimulationError):
            simulator.add_process(RecordingProcess(0))

    def test_send_requires_edge(self):
        graph = DiGraph(edges=[(0, 1)])
        simulator = Simulator(graph)
        a = RecordingProcess(0)
        b = RecordingProcess(1)
        simulator.add_processes([a, b])
        simulator.start()
        with pytest.raises(SimulationError):
            b.send(0, "nope")  # the edge 1 → 0 does not exist
        a.send(1, "ok")
        assert simulator.pending_events() == 1

    def test_unbound_process_send_fails(self):
        process = RecordingProcess(0)
        with pytest.raises(SimulationError):
            process.send(1, "x")


class TestDelivery:
    def test_broadcast_reaches_every_out_neighbor(self):
        graph = complete_digraph(4)
        simulator = Simulator(graph, ConstantDelay(1.0))
        sender = Broadcaster(0, "hello")
        receivers = [RecordingProcess(i) for i in (1, 2, 3)]
        simulator.add_processes([sender] + receivers)
        stats = simulator.run()
        assert stats.delivered_messages == 3
        for receiver in receivers:
            assert receiver.received == [(0, "hello")]

    def test_directed_edge_one_way_only(self):
        graph = DiGraph(edges=[(0, 1)])
        simulator = Simulator(graph, ConstantDelay(1.0))
        sender = Broadcaster(0, "x")
        sink = RecordingProcess(1)
        simulator.add_processes([sender, sink])
        simulator.run()
        assert sink.received == [(0, "x")]
        assert sender.messages_received == 0

    def test_relay_chain_over_cycle(self):
        graph = directed_cycle(3)
        simulator = Simulator(graph, ConstantDelay(1.0))
        simulator.add_processes([Broadcaster(0, (0,)), Forwarder(1), Forwarder(2)])
        stats = simulator.run()
        assert stats.delivered_messages >= 3
        assert stats.final_time >= 3.0

    def test_per_link_counters(self):
        graph = complete_digraph(3)
        simulator = Simulator(graph, ConstantDelay(1.0))
        simulator.add_processes([Broadcaster(0, "m"), RecordingProcess(1), RecordingProcess(2)])
        stats = simulator.run()
        assert stats.link_count(0, 1) == 1
        assert stats.link_count(1, 0) == 0

    def test_timer_events(self):
        graph = complete_digraph(2)
        simulator = Simulator(graph)
        timer = TimerUser(0)
        simulator.add_processes([timer, SilentProcess(1)])
        stats = simulator.run()
        assert timer.decided and timer.output == "wake"
        assert stats.timer_events == 1


class TestDeterminismAndLimits:
    def _run_once(self, seed):
        graph = complete_digraph(4)
        simulator = Simulator(graph, UniformDelay(0.5, 2.0), seed=seed)
        processes = [Broadcaster(0, "m")] + [RecordingProcess(i) for i in (1, 2, 3)]
        simulator.add_processes(processes)
        simulator.run()
        return simulator.stats.final_time

    def test_same_seed_same_schedule(self):
        assert self._run_once(7) == self._run_once(7)

    def test_different_seed_different_schedule(self):
        assert self._run_once(7) != self._run_once(8)

    def test_max_events_limit(self):
        graph = directed_cycle(3)

        class Chatterbox(Process):
            def on_start(self):
                self.broadcast(("spam",))

            def on_message(self, sender, payload):
                self.broadcast(("spam",))

        simulator = Simulator(graph, ConstantDelay(1.0))
        simulator.add_processes([Chatterbox(i) for i in range(3)])
        stats = simulator.run(max_events=50)
        assert stats.terminated_early
        assert stats.delivered_messages == 50

    def test_max_time_limit(self):
        graph = complete_digraph(2)
        simulator = Simulator(graph, ConstantDelay(10.0))
        simulator.add_processes([Broadcaster(0, "late"), RecordingProcess(1)])
        stats = simulator.run(max_time=5.0)
        assert stats.terminated_early
        assert stats.delivered_messages == 0

    def test_stop_when_predicate(self):
        graph = complete_digraph(3)
        simulator = Simulator(graph, ConstantDelay(1.0))
        receiver = RecordingProcess(1)
        simulator.add_processes([Broadcaster(0, "m"), receiver, RecordingProcess(2)])
        simulator.run(stop_when=lambda: bool(receiver.received))
        assert len(receiver.received) == 1

    def test_fifo_links_preserve_order(self):
        graph = DiGraph(edges=[(0, 1)])

        class Burst(Process):
            def on_start(self):
                for index in range(5):
                    self.send(1, index)

        received = []

        class OrderedSink(Process):
            def on_message(self, sender, payload):
                received.append(payload)

        simulator = Simulator(graph, UniformDelay(0.5, 5.0), seed=3, fifo_links=True)
        simulator.add_processes([Burst(0), OrderedSink(1)])
        simulator.run()
        assert received == sorted(received)

    def test_zero_delay_model_rejected(self):
        class BadDelay(ConstantDelay):
            def delay(self, sender, receiver, payload, time, rng):
                return 0.0

        graph = complete_digraph(2)
        simulator = Simulator(graph, BadDelay(1.0))
        simulator.add_processes([Broadcaster(0, "x"), RecordingProcess(1)])
        with pytest.raises(SchedulerError):
            simulator.run()

    def test_outputs_and_all_decided(self):
        graph = complete_digraph(2)
        simulator = Simulator(graph)
        deciders = [TimerUser(0), TimerUser(1)]
        simulator.add_processes(deciders)
        simulator.run()
        assert simulator.all_decided()
        assert simulator.outputs() == {0: "wake", 1: "wake"}
