"""Unit tests for Byzantine behaviours, process wrapping and fault placement."""

from __future__ import annotations

import random

import pytest

from repro.adversary.adversary import ByzantineProcess, FaultPlan, no_faults
from repro.adversary.behaviors import (
    STANDARD_BEHAVIOR_FACTORIES,
    CrashAfterBehavior,
    CrashBehavior,
    EquivocateBehavior,
    FixedValueBehavior,
    HonestBehavior,
    OffsetValueBehavior,
    RandomValueBehavior,
    ReplayBehavior,
    SelectiveSilenceBehavior,
)
from repro.adversary.placement import (
    all_fault_sets,
    place_bridge_nodes,
    place_explicit,
    place_max_in_degree,
    place_max_out_degree,
    place_none,
    place_random,
)
from repro.algorithms.messages import ValueMessage
from repro.exceptions import AdversaryError
from repro.graphs.generators import complete_digraph, star_out
from repro.network.delays import ConstantDelay
from repro.network.node import Process, RecordingProcess
from repro.network.simulator import Simulator

RNG = random.Random(0)
SAMPLE = ValueMessage(round=0, value=10.0, path=("a",))


class TestBehaviors:
    def test_honest_passthrough(self):
        assert HonestBehavior().on_send("a", "b", SAMPLE, RNG) == [SAMPLE]

    def test_crash_sends_nothing(self):
        behavior = CrashBehavior()
        assert behavior.on_send("a", "b", SAMPLE, RNG) == []
        assert not behavior.processes_messages

    def test_crash_after_budget(self):
        behavior = CrashAfterBehavior(2)
        assert behavior.on_send("a", "b", SAMPLE, RNG) == [SAMPLE]
        assert behavior.on_send("a", "b", SAMPLE, RNG) == [SAMPLE]
        assert behavior.on_send("a", "b", SAMPLE, RNG) == []

    def test_fixed_value_rewrites_value(self):
        [mutated] = FixedValueBehavior(99.0).on_send("a", "b", SAMPLE, RNG)
        assert mutated.value == 99.0
        assert mutated.path == SAMPLE.path

    def test_fixed_value_leaves_non_value_payloads(self):
        [result] = FixedValueBehavior(99.0).on_send("a", "b", "opaque", RNG)
        assert result == "opaque"

    def test_random_value_within_range(self):
        behavior = RandomValueBehavior(-5, 5)
        for _ in range(20):
            [mutated] = behavior.on_send("a", "b", SAMPLE, RNG)
            assert -5 <= mutated.value <= 5

    def test_random_value_validation(self):
        with pytest.raises(ValueError):
            RandomValueBehavior(5, -5)

    def test_equivocate_per_receiver(self):
        behavior = EquivocateBehavior({"b": 1.0, "c": 2.0})
        assert behavior.on_send("a", "b", SAMPLE, RNG)[0].value == 1.0
        assert behavior.on_send("a", "c", SAMPLE, RNG)[0].value == 2.0
        assert behavior.on_send("a", "d", SAMPLE, RNG)[0].value == SAMPLE.value

    def test_equivocate_default_offset(self):
        behavior = EquivocateBehavior(default_offset=5.0)
        assert behavior.on_send("a", "z", SAMPLE, RNG)[0].value == 15.0

    def test_offset(self):
        assert OffsetValueBehavior(-3.0).on_send("a", "b", SAMPLE, RNG)[0].value == 7.0

    def test_selective_silence(self):
        behavior = SelectiveSilenceBehavior(["b"])
        assert behavior.on_send("a", "b", SAMPLE, RNG) == []
        assert behavior.on_send("a", "c", SAMPLE, RNG) == [SAMPLE]

    def test_replay_duplicates(self):
        assert len(ReplayBehavior(3).on_send("a", "b", SAMPLE, RNG)) == 3
        with pytest.raises(ValueError):
            ReplayBehavior(0)

    def test_complete_tamper_rewrites_value_maps(self):
        from repro.adversary.behaviors import CompleteTamperBehavior
        from repro.algorithms.messages import CompleteMessage

        behavior = CompleteTamperBehavior(-7.0)
        announcement = CompleteMessage(
            round=0, origin="c", fault_set=frozenset(),
            values=(("a", 1.0), ("b", 2.0)), fifo_counter=1, path=("c",),
        )
        [forged] = behavior.on_send("c", "z", announcement, RNG)
        assert dict(forged.values) == {"a": -7.0, "b": -7.0}
        [forged_value] = behavior.on_send("c", "z", SAMPLE, RNG)
        assert forged_value.value == -7.0

    def test_standard_factory_table(self):
        for name, factory in STANDARD_BEHAVIOR_FACTORIES.items():
            behavior = factory()
            assert behavior.describe()
            assert isinstance(behavior.on_send("a", "b", SAMPLE, RNG), list)


class _Chatter(Process):
    """Sends its value to every neighbour on start (for wrapper tests)."""

    def __init__(self, node_id, value):
        super().__init__(node_id)
        self.value = value
        self.heard = []

    def on_start(self):
        self.broadcast(ValueMessage(round=0, value=self.value, path=(self.node_id,)))

    def on_message(self, sender, payload):
        self.heard.append((sender, payload.value))


class TestByzantineProcess:
    def _run(self, behavior):
        graph = complete_digraph(3)
        simulator = Simulator(graph, ConstantDelay(1.0))
        inner = _Chatter(0, 10.0)
        wrapped = ByzantineProcess(inner, behavior, seed=1)
        honest = [_Chatter(1, 1.0), _Chatter(2, 2.0)]
        simulator.add_processes([wrapped] + honest)
        simulator.run()
        return inner, honest

    def test_crash_wrapper_sends_nothing(self):
        _, honest = self._run(CrashBehavior())
        assert all(all(sender != 0 for sender, _ in process.heard) for process in honest)

    def test_fixed_value_wrapper_lies(self):
        _, honest = self._run(FixedValueBehavior(77.0))
        for process in honest:
            lies = [value for sender, value in process.heard if sender == 0]
            assert lies == [77.0]

    def test_honest_wrapper_equivalent_to_unwrapped(self):
        _, honest = self._run(HonestBehavior())
        for process in honest:
            assert (0, 10.0) in process.heard

    def test_inner_still_receives_when_processing(self):
        inner, _ = self._run(FixedValueBehavior(77.0))
        assert len(inner.heard) == 2


class TestFaultPlan:
    def test_plan_validation(self):
        graph = complete_digraph(4)
        plan = FaultPlan(frozenset({0, 1}), lambda node: CrashBehavior())
        plan.validate(graph.nodes, f=2)
        with pytest.raises(AdversaryError):
            plan.validate(graph.nodes, f=1)
        with pytest.raises(AdversaryError):
            FaultPlan(frozenset({99}), lambda node: CrashBehavior()).validate(graph.nodes, f=1)

    def test_apply_wraps_only_faulty(self):
        plan = FaultPlan(frozenset({1}), lambda node: CrashBehavior())
        processes = {i: RecordingProcess(i) for i in range(3)}
        wrapped = plan.apply(processes)
        assert isinstance(wrapped[1], ByzantineProcess)
        assert wrapped[0] is processes[0]

    def test_nonfaulty_helper(self):
        plan = FaultPlan(frozenset({1}), lambda node: CrashBehavior())
        assert plan.nonfaulty([0, 1, 2]) == frozenset({0, 2})
        assert plan.is_faulty(1) and not plan.is_faulty(0)

    def test_no_faults_plan(self):
        plan = no_faults()
        assert plan.num_faults == 0
        assert plan.describe() == "no faults"

    def test_describe_mentions_behavior(self):
        plan = FaultPlan(frozenset({2}), lambda node: FixedValueBehavior(4.0))
        assert "fixed-value" in plan.describe()


class TestPlacement:
    def test_place_none_and_explicit(self):
        graph = complete_digraph(4)
        assert place_none(graph, 2) == frozenset()
        assert place_explicit([1, 2]) == frozenset({1, 2})

    def test_place_random_seeded(self):
        graph = complete_digraph(6)
        assert place_random(graph, 2, seed=3) == place_random(graph, 2, seed=3)
        assert len(place_random(graph, 2, seed=3)) == 2

    def test_place_random_validation(self):
        graph = complete_digraph(3)
        with pytest.raises(AdversaryError):
            place_random(graph, 4)
        with pytest.raises(AdversaryError):
            place_random(graph, -1)

    def test_degree_based_placement(self):
        star = star_out(5)
        assert place_max_out_degree(star, 1) == frozenset({0})
        assert 0 not in place_max_in_degree(star, 2)

    def test_bridge_placement_picks_cut_node(self):
        star = star_out(5)
        assert place_bridge_nodes(star, 1) == frozenset({0})

    def test_all_fault_sets(self):
        graph = complete_digraph(4)
        sets = all_fault_sets(graph, 2)
        assert len(sets) == 6
        assert all(len(fault_set) == 2 for fault_set in sets)
        assert len(all_fault_sets(graph, 2, max_sets=3)) == 3
