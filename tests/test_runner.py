"""Tests for the experiment runner: metrics, drivers, sweeps, reporting."""

from __future__ import annotations

import pytest

from repro.adversary.adversary import FaultPlan
from repro.adversary.behaviors import CrashBehavior, FixedValueBehavior
from repro.algorithms.base import ConsensusConfig
from repro.exceptions import AdversaryError, ExperimentError
from repro.graphs.generators import complete_digraph, figure_1a
from repro.runner.experiment import (
    run_bw_experiment,
    run_clique_experiment,
    run_crash_experiment,
    run_iterative_experiment,
    run_local_average_experiment,
)
from repro.runner.harness import SweepResult, random_inputs, spread_inputs, sweep_behaviors
from repro.runner.metrics import (
    ConsensusOutcome,
    aggregate_success_rate,
    geometric_bound_satisfied,
    per_round_ranges,
    rounds_until,
)
from repro.runner.reporting import banner, format_check, format_table, print_table


class TestMetrics:
    def _outcome(self, outputs, decided=True, epsilon=0.2):
        return ConsensusOutcome(
            algorithm="test",
            graph_name="g",
            f=1,
            epsilon=epsilon,
            faulty_nodes=frozenset({9}),
            honest_inputs={0: 0.0, 1: 1.0},
            outputs=outputs,
            all_decided=decided,
            rounds=3,
        )

    def test_output_range_and_agreement(self):
        outcome = self._outcome({0: 0.5, 1: 0.6})
        assert outcome.output_range == pytest.approx(0.1)
        assert outcome.epsilon_agreement
        assert not self._outcome({0: 0.0, 1: 0.9}).epsilon_agreement

    def test_undecided_outcome(self):
        outcome = self._outcome({0: 0.5}, decided=False)
        assert outcome.output_range == float("inf")
        assert not outcome.termination and not outcome.correct

    def test_validity(self):
        assert self._outcome({0: 0.5, 1: 0.55}).validity
        assert not self._outcome({0: -0.5, 1: 0.5}).validity

    def test_summary_text(self):
        text = self._outcome({0: 0.5, 1: 0.55}).summary()
        assert "test on g" in text and "rounds=3" in text

    def test_per_round_ranges(self):
        histories = {0: [0.0, 0.25, 0.4], 1: [1.0, 0.75, 0.5], 2: [0.5, 0.5]}
        assert per_round_ranges(histories) == [1.0, 0.5]
        assert per_round_ranges({}) == []

    def test_geometric_bound(self):
        assert geometric_bound_satisfied([1.0, 0.5, 0.2], 1.0)
        assert not geometric_bound_satisfied([1.0, 0.8], 1.0)

    def test_rounds_until(self):
        assert rounds_until([1.0, 0.4, 0.1], 0.2) == 2
        assert rounds_until([1.0, 0.4], 0.2) is None

    def test_aggregate_success_rate(self):
        good = self._outcome({0: 0.5, 1: 0.55})
        bad = self._outcome({0: 0.0, 1: 0.9})
        assert aggregate_success_rate([good, bad]) == 0.5
        assert aggregate_success_rate([]) == 0.0


class TestDrivers:
    GRAPH = complete_digraph(4)
    INPUTS = {0: 0.0, 1: 1.0, 2: 0.4, 3: 0.6}
    CONFIG = ConsensusConfig(f=1, epsilon=0.3, input_low=0.0, input_high=1.0)

    def test_bw_driver(self):
        plan = FaultPlan(frozenset({3}), lambda node: FixedValueBehavior(9.0))
        outcome = run_bw_experiment(self.GRAPH, self.INPUTS, self.CONFIG, plan, seed=1)
        assert outcome.correct
        assert outcome.algorithm == "byzantine-witness"
        assert outcome.messages_delivered > 0
        assert outcome.per_round_ranges

    def test_bw_driver_without_faults(self):
        outcome = run_bw_experiment(self.GRAPH, self.INPUTS, self.CONFIG, seed=2)
        assert outcome.correct and not outcome.faulty_nodes

    def test_clique_driver(self):
        plan = FaultPlan(frozenset({2}), lambda node: CrashBehavior())
        outcome = run_clique_experiment(self.GRAPH, self.INPUTS, self.CONFIG, plan, seed=1)
        assert outcome.correct
        assert outcome.algorithm == "clique-baseline"

    def test_crash_driver(self):
        plan = FaultPlan(frozenset({1}), lambda node: CrashBehavior())
        outcome = run_crash_experiment(self.GRAPH, self.INPUTS, self.CONFIG, plan, seed=1)
        assert outcome.correct

    def test_iterative_driver(self):
        outcome = run_iterative_experiment(
            self.GRAPH, self.INPUTS, self.CONFIG, rounds=20,
            faulty_nodes={3}, byzantine_value=lambda n, r, k, v: 100.0,
        )
        assert outcome.algorithm == "iterative-trimmed-mean"
        assert outcome.correct

    def test_local_average_driver_shows_byzantine_damage(self):
        outcome = run_local_average_experiment(
            self.GRAPH, self.INPUTS, self.CONFIG, rounds=10,
            faulty_nodes={3}, byzantine_value=lambda n, r, k, v: 1e6,
        )
        assert not outcome.validity

    def test_missing_inputs_raise(self):
        with pytest.raises(ExperimentError):
            run_bw_experiment(self.GRAPH, {0: 0.0}, self.CONFIG)

    def test_fault_plan_over_budget_rejected(self):
        plan = FaultPlan(frozenset({0, 1}), lambda node: CrashBehavior())
        with pytest.raises(AdversaryError):
            run_bw_experiment(self.GRAPH, self.INPUTS, self.CONFIG, plan)


class TestHarness:
    def test_input_generators(self):
        graph = figure_1a()
        random_values = random_inputs(graph, 0.0, 1.0, seed=1)
        assert set(random_values) == set(graph.nodes)
        assert random_inputs(graph, 0.0, 1.0, seed=1) == random_values
        spread = spread_inputs(graph, 0.0, 1.0)
        assert min(spread.values()) == 0.0 and max(spread.values()) == 1.0
        assert spread_inputs(complete_digraph(1), 0.3, 0.9) == {0: 0.3}

    def test_sweep_behaviors(self):
        graph = complete_digraph(4)
        inputs = spread_inputs(graph, 0.0, 1.0)
        config = ConsensusConfig(f=1, epsilon=0.3, input_low=0.0, input_high=1.0)

        def run_one(plan, seed, behavior_name):
            return run_iterative_experiment(
                graph, inputs, config, rounds=15,
                faulty_nodes=plan.faulty_nodes,
                byzantine_value=lambda n, r, k, v: 50.0,
                behavior_name=behavior_name,
            )

        results = sweep_behaviors(
            run_one, graph, f=1,
            behaviors={"fixed": lambda: FixedValueBehavior(50.0)},
            seeds=(1, 2),
        )
        assert len(results) == 1
        cell = results[0]
        assert cell.runs == 2
        assert 0.0 <= cell.success_rate <= 1.0
        assert len(cell.as_row()) == 6

    def test_sweep_result_empty(self):
        cell = SweepResult(label="empty")
        assert cell.mean_messages == 0.0 and cell.mean_rounds == 0.0 and cell.worst_range == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], ["xxx", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all rows same width

    def test_format_check(self):
        assert format_check(True) == "yes" and format_check(False) == "no"

    def test_banner_and_print_table(self, capsys):
        assert "title" in banner("title")
        output = print_table("My table", ["h"], [[1]])
        captured = capsys.readouterr()
        assert "My table" in captured.out and "My table" in output
