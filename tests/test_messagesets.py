"""Unit tests for protocol messages and message sets (Definitions 7-9)."""

from __future__ import annotations

import dataclasses

from repro.algorithms.messages import (
    CompleteMessage,
    EchoMessage,
    RoundValueMessage,
    ValueMessage,
    sort_value_pairs,
)
from repro.algorithms.messagesets import MessageSet


class TestMessages:
    def test_value_message_origin(self):
        message = ValueMessage(round=2, value=0.5, path=("a", "b"))
        assert message.origin == "a"
        assert dataclasses.replace(message, value=1.0).value == 1.0

    def test_complete_message_value_map_and_key(self):
        message = CompleteMessage(
            round=1,
            origin="c",
            fault_set=frozenset({"x"}),
            values=(("a", 1.0), ("b", 2.0)),
            fifo_counter=3,
            path=("c",),
        )
        assert message.value_map() == {"a": 1.0, "b": 2.0}
        same_content = dataclasses.replace(message, path=("c", "d"))
        assert message.content_key() == same_content.content_key()
        different = dataclasses.replace(message, fifo_counter=4)
        assert message.content_key() != different.content_key()

    def test_messages_are_hashable(self):
        a = ValueMessage(0, 1.0, ("x",))
        b = RoundValueMessage(0, 1.0, "x")
        c = EchoMessage(0, "x", 1.0)
        assert len({a, b, c, a}) == 3

    def test_sort_value_pairs_is_canonical(self):
        assert sort_value_pairs([("b", 2.0), ("a", 1.0)]) == (("a", 1.0), ("b", 2.0))


class TestMessageSetBasics:
    def test_add_and_duplicate_paths(self):
        message_set = MessageSet()
        assert message_set.add(1.0, ("a", "v"))
        assert not message_set.add(2.0, ("a", "v"))  # first value per path wins
        assert message_set.value_on_path(("a", "v")) == 1.0
        assert len(message_set) == 1

    def test_iteration_and_entries(self):
        message_set = MessageSet([(1.0, ("a",)), (2.0, ("b", "a"))])
        assert set(message_set.paths()) == {("a",), ("b", "a")}
        assert sorted(value for value, _ in message_set) == [1.0, 2.0]
        assert ("a",) in message_set

    def test_initial_nodes(self):
        message_set = MessageSet([(1.0, ("a", "v")), (2.0, ("b", "v")), (3.0, ("a", "c", "v"))])
        assert message_set.initial_nodes() == {"a", "b"}

    def test_values_and_sorted_entries(self):
        message_set = MessageSet([(3.0, ("c",)), (1.0, ("a",)), (2.0, ("b",))])
        assert sorted(message_set.values()) == [1.0, 2.0, 3.0]
        assert [value for value, _ in message_set.sorted_entries()] == [1.0, 2.0, 3.0]


class TestExclusion:
    def test_exclusion_removes_paths_through_set(self):
        message_set = MessageSet([(1.0, ("a", "x", "v")), (2.0, ("b", "v"))])
        restricted = message_set.exclude({"x"})
        assert restricted.paths() == {("b", "v")}

    def test_exclusion_of_nothing_is_identity(self):
        message_set = MessageSet([(1.0, ("a", "v"))])
        assert message_set.exclude(set()).paths() == message_set.paths()

    def test_exclusion_result_supports_further_queries(self):
        message_set = MessageSet([(1.0, ("a", "x", "v")), (2.0, ("a", "v"))])
        restricted = message_set.exclude({"x"})
        assert restricted.paths_from_with_value("a", 2.0) == [("a", "v")]


class TestConsistency:
    def test_consistent_when_origin_values_agree(self):
        message_set = MessageSet([(1.0, ("a", "v")), (1.0, ("a", "b", "v")), (2.0, ("b", "v"))])
        assert message_set.is_consistent()
        assert message_set.value_of("a") == 1.0
        assert message_set.value_map() == {"a": 1.0, "b": 2.0}

    def test_inconsistent_when_origin_disagrees(self):
        message_set = MessageSet([(1.0, ("a", "v")), (9.0, ("a", "b", "v"))])
        assert not message_set.is_consistent()

    def test_value_of_missing_origin(self):
        assert MessageSet().value_of("zzz") is None


class TestFullness:
    def test_full_for_required_paths(self):
        required = [("v",), ("a", "v"), ("b", "a", "v")]
        message_set = MessageSet([(0.0, ("v",)), (1.0, ("a", "v")), (2.0, ("b", "a", "v"))])
        assert message_set.is_full_for(required)
        assert message_set.missing_paths(required) == []

    def test_not_full_reports_missing(self):
        required = [("v",), ("a", "v")]
        message_set = MessageSet([(0.0, ("v",))])
        assert not message_set.is_full_for(required)
        assert message_set.missing_paths(required) == [("a", "v")]

    def test_full_for_empty_requirement(self):
        assert MessageSet().is_full_for([])


class TestCompletenessQueries:
    def test_paths_from_with_value_filters_on_both(self):
        message_set = MessageSet(
            [(1.0, ("q", "v")), (1.0, ("q", "z", "v")), (9.0, ("q", "w", "v")), (1.0, ("r", "v"))]
        )
        assert sorted(message_set.paths_from_with_value("q", 1.0)) == [("q", "v"), ("q", "z", "v")]
        assert message_set.paths_from_with_value("q", 5.0) == []
        assert message_set.paths_from_with_value("nobody", 1.0) == []

    def test_repr(self):
        assert "MessageSet" in repr(MessageSet())
