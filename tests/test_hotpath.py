"""Hot-path overhaul regression tests.

Three families of guarantees introduced by the bitmask/slot-compiled/cached
fast paths:

* the mask-indexed :class:`~repro.algorithms.messagesets.MessageSet` and the
  mask-level f-cover search agree with straightforward tuple/set reference
  implementations over randomized inputs (including forged, non-graph hops);
* the tuple-heap simulator core reproduces the exact delivery schedule of
  the dataclass-heap implementation (golden trace pinned before the
  rewrite) and honours the ``stop_stride`` contract;
* sharded sweeps with the per-worker topology cache and pre-fork warm-up
  stay byte-identical to serial runs.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.algorithms.base import ConsensusConfig
from repro.algorithms.bw import BWProcess
from repro.algorithms.messagesets import MessageSet
from repro.algorithms.topology import TopologyKnowledge
from repro.graphs.bitset import PathCodec, has_f_cover_masks
from repro.graphs.generators import complete_digraph
from repro.graphs.paths import find_f_cover, is_redundant, is_simple
from repro.network.delays import UniformDelay
from repro.network.node import Process
from repro.network.simulator import Simulator
from repro.runner.artifacts import artifact_payload
from repro.runner.harness import GridSpec, SweepEngine, TopologySpec
from repro.runner.worker_cache import (
    cached_graph,
    cached_topology_knowledge,
    clear_worker_caches,
    warm_worker_caches,
    worker_cache_stats,
)


# ----------------------------------------------------------------------
# reference implementations (straight transcriptions of Definitions 7–9)
# ----------------------------------------------------------------------
class ReferenceMessageSet:
    """Tuple/set reference for MessageSet (the pre-bitmask semantics)."""

    def __init__(self):
        self.by_path = {}

    def add(self, value, path):
        path = tuple(path)
        if path in self.by_path:
            return False
        self.by_path[path] = float(value)
        return True

    def exclude(self, excluded):
        excluded = set(excluded)
        result = ReferenceMessageSet()
        for path, value in self.by_path.items():
            if not excluded.intersection(path):
                result.add(value, path)
        return result

    def is_consistent(self):
        seen = {}
        for path, value in self.by_path.items():
            if path[0] in seen:
                if seen[path[0]] != value:
                    return False
            else:
                seen[path[0]] = value
        return True

    def value_of(self, origin):
        for path, value in self.by_path.items():
            if path[0] == origin:
                return value
        return None

    def value_map(self):
        result = {}
        for path, value in self.by_path.items():
            result.setdefault(path[0], value)
        return result

    def is_full_for(self, required):
        return all(tuple(path) in self.by_path for path in required)

    def paths_from_with_value(self, origin, value):
        return [p for p in self.by_path if p[0] == origin and self.by_path[p] == value]


def _random_paths(rng, universe, count):
    paths = []
    for _ in range(count):
        length = rng.randint(1, 6)
        paths.append(tuple(rng.choice(universe) for _ in range(length)))
    return paths


class TestMessageSetAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_operations_agree(self, seed):
        rng = random.Random(seed)
        # Mixed universe: graph-like ints plus forged string hops.
        universe = [0, 1, 2, 3, 4, "forged-a", "forged-b"]
        fast, reference = MessageSet(), ReferenceMessageSet()
        for path in _random_paths(rng, universe, 60):
            value = rng.choice([0.0, 0.5, 1.0])
            assert fast.add(value, path) == reference.add(value, path)

        assert {p: v for v, p in fast.entries()} == reference.by_path
        assert fast.is_consistent() == reference.is_consistent()
        assert fast.value_map() == reference.value_map()
        for origin in universe:
            assert fast.value_of(origin) == reference.value_of(origin)
            for value in (0.0, 0.5, 1.0):
                assert sorted(map(repr, fast.paths_from_with_value(origin, value))) == sorted(
                    map(repr, reference.paths_from_with_value(origin, value))
                )

        for _ in range(10):
            excluded = rng.sample(universe, rng.randint(0, 4))
            fast_restricted = fast.exclude(excluded)
            ref_restricted = reference.exclude(excluded)
            assert {p: v for v, p in fast_restricted.entries()} == ref_restricted.by_path
            assert fast_restricted.is_consistent() == ref_restricted.is_consistent()
            assert fast_restricted.value_map() == ref_restricted.value_map()

        required = _random_paths(rng, universe, 5) + list(reference.by_path)[:3]
        assert fast.is_full_for(required) == reference.is_full_for(required)

    @pytest.mark.parametrize("seed", range(10))
    def test_mask_f_cover_matches_tuple_f_cover(self, seed):
        rng = random.Random(100 + seed)
        universe = list(range(8))
        codec = PathCodec()
        for f in (0, 1, 2, 3):
            paths = _random_paths(rng, universe, rng.randint(0, 8))
            forbidden = set(rng.sample(universe, rng.randint(0, 3)))
            forbidden_mask = codec.mask_of(forbidden, only_known=False)
            masks = [codec.member_mask(p) & ~forbidden_mask for p in paths]
            expected = find_f_cover(paths, f, forbidden=forbidden) is not None
            assert has_f_cover_masks(masks, f) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_mask_f_cover_with_heavy_domination(self, seed):
        # Adversarial inputs for the dominated-coverage pruning: duplicated
        # paths (equal coverages) and sub-paths (strict coverage subsets)
        # must not change the verdict relative to the tuple-level oracle.
        rng = random.Random(900 + seed)
        universe = list(range(8))
        codec = PathCodec()
        for f in (1, 2, 3):
            base = _random_paths(rng, universe, rng.randint(1, 5))
            paths = list(base)
            for path in base:
                paths.append(path)  # duplicate: equal coverage columns
                if len(path) > 1:
                    paths.append(path[: rng.randint(1, len(path) - 1)])
            rng.shuffle(paths)
            masks = [codec.member_mask(p) for p in paths]
            expected = find_f_cover(paths, f) is not None
            assert has_f_cover_masks(masks, f) == expected


class TestPathCodec:
    def test_encode_returns_origin_mask_and_tuple(self):
        codec = PathCodec({"a": 0, "b": 1})
        origin, mask, path = codec.encode(["a", "x", "b"])
        assert origin == "a"
        assert path == ("a", "x", "b")
        assert mask == (1 << 0) | (1 << 1) | (1 << codec.index["x"])

    def test_forged_nodes_intern_beyond_seed_bits(self):
        codec = PathCodec({"a": 0, "b": 1})
        assert codec.bit("forged") == 2
        assert codec.bit("forged") == 2  # stable
        assert codec.mask_of(["missing"], only_known=True) == 0

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PathCodec().encode(())


class TestForwardTargetsOracle:
    """The mask-based relay test must match is_redundant / is_simple exactly."""

    @pytest.mark.parametrize("policy", ["redundant", "simple"])
    def test_against_path_predicate(self, policy):
        graph = complete_digraph(5)
        config = ConsensusConfig(f=1, epsilon=0.25, input_low=0.0, input_high=1.0,
                                 path_policy=policy)
        topology = TopologyKnowledge(graph, 1, policy)
        process = BWProcess(2, graph, 0.5, config, topology=topology)

        # Bind a fake context so the neighbour list exists.
        class Ctx:
            out_neighbors = frozenset(n for n in graph.nodes if n != 2)
            in_neighbors = frozenset(n for n in graph.nodes if n != 2)

            def _send(self, *args):
                raise AssertionError("no sends expected")

        process.context = Ctx()
        predicate = is_simple if policy == "simple" else is_redundant
        rng = random.Random(7)
        checked = 0
        for _ in range(300):
            length = rng.randint(1, 6)
            path = tuple(rng.choice(range(5)) for _ in range(length - 1)) + (2,)
            if not predicate(path):
                continue  # relay only happens for policy-conforming paths
            expected = [n for n in sorted(Ctx.out_neighbors, key=repr) if predicate(path + (n,))]
            assert process._forward_targets_uncached(path) == expected
            checked += 1
        assert checked > 50


# ----------------------------------------------------------------------
# simulator equivalence
# ----------------------------------------------------------------------
#: SHA-256 of the delivery trace recorded by the pre-rewrite (frozen
#: dataclass heap) simulator for the exact scenario below.
GOLDEN_TRACE_SHA256 = "b49e41dc712ae93caf2cb3c5bd01cd8057291299c676eb5d940d79de9b97bd29"


def _run_trace_scenario(**run_kwargs):
    trace = []

    class Seeder(Process):
        def on_start(self):
            self.broadcast(("seed", 0))

        def on_message(self, sender, payload):
            trace.append((round(self.require_context().now, 9), sender, self.node_id, payload))
            if len(payload) < 4:
                self.broadcast(payload + (self.node_id,))

    class Echo(Seeder):
        def on_start(self):
            pass

    simulator = Simulator(complete_digraph(4), UniformDelay(0.5, 2.0), seed=1234)
    simulator.add_processes([Seeder(0), Echo(1), Echo(2), Echo(3)])
    stats = simulator.run(max_events=40, **run_kwargs)
    return trace, stats


class TestSimulatorEquivalence:
    def test_tuple_heap_reproduces_golden_trace(self):
        trace, stats = _run_trace_scenario()
        assert stats.delivered_messages == 39
        assert round(stats.final_time, 9) == 4.624589522
        assert hashlib.sha256(repr(trace).encode()).hexdigest() == GOLDEN_TRACE_SHA256

    def test_stop_stride_one_matches_default(self):
        baseline, stats_a = _run_trace_scenario()
        strided, stats_b = _run_trace_scenario(stop_stride=1)
        assert baseline == strided
        assert stats_a.delivered_messages == stats_b.delivered_messages

    def test_stop_stride_trades_deliveries_for_fewer_polls(self):
        def make(stride):
            hits = []

            def stop():
                hits.append(1)
                return len(hits) >= 3

            trace, stats = _run_trace_scenario(stop_when=stop, stop_stride=stride)
            return len(trace), len(hits)

        events_1, polls_1 = make(1)
        events_4, polls_4 = make(4)
        # Stride 1 polls after every event: stops at the 3rd delivery.
        assert (events_1, polls_1) == (3, 3)
        # Stride 4 polls after events 4, 8, 12: same number of polls buys
        # the predicate 4x fewer evaluations per delivered event.
        assert (events_4, polls_4) == (12, 3)

    def test_stop_stride_must_be_positive(self):
        from repro.exceptions import SchedulerError

        with pytest.raises(SchedulerError):
            _run_trace_scenario(stop_stride=0)

    def test_per_link_stats_survive_packing(self):
        trace, stats = _run_trace_scenario()
        total = sum(stats.per_link_messages.values())
        assert total == stats.delivered_messages
        # Links are (sender, receiver) node-id pairs, decoded from ints.
        assert all(isinstance(k, tuple) and len(k) == 2 for k in stats.per_link_messages)


# ----------------------------------------------------------------------
# worker topology cache + sharded byte-identity
# ----------------------------------------------------------------------
class TestWorkerTopologyCache:
    def test_cache_returns_shared_instances(self):
        clear_worker_caches()
        spec = TopologySpec.make("clique", n=4)
        assert cached_graph(spec) is cached_graph(spec)
        knowledge = cached_topology_knowledge(spec, 1, "redundant")
        assert cached_topology_knowledge(spec, 1, "redundant") is knowledge
        assert cached_topology_knowledge(spec, 1, "simple") is not knowledge
        stats = worker_cache_stats()
        assert stats["graphs"] == 1 and stats["knowledge"] == 2
        clear_worker_caches()
        assert worker_cache_stats() == {"graphs": 0, "knowledge": 0}

    def test_warm_worker_caches_builds_cell_dependencies(self):
        clear_worker_caches()
        spec = GridSpec(
            name="warm_probe",
            algorithms=("bw",),
            topologies=(TopologySpec.make("clique", n=4),),
            f_values=(1,),
            behaviors=("crash",),
            placements=("random",),
            seeds=(1,),
            epsilon=0.25,
            path_policy="redundant",
        )
        warm_worker_caches(spec, spec.expand())
        stats = worker_cache_stats()
        assert stats["graphs"] == 1 and stats["knowledge"] == 1

    def test_sharded_run_with_cache_is_byte_identical_to_serial(self):
        spec = GridSpec(
            name="hotpath_identity",
            algorithms=("bw", "crash"),
            topologies=(
                TopologySpec.make("clique", n=4),
                TopologySpec.make("figure-1a"),
            ),
            f_values=(1,),
            behaviors=("crash", "fixed-high"),
            placements=("random",),
            seeds=(1, 2),
            epsilon=0.25,
            path_policy="simple",
        )
        clear_worker_caches()
        serial = SweepEngine(workers=1).run(spec)
        # Warm cache on purpose: identity must hold regardless of cache state.
        sharded = SweepEngine(workers=2).run(spec)
        assert artifact_payload(serial, mode="full") == artifact_payload(sharded, mode="full")
