"""Unit tests for the DiGraph substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.nodes == []
        assert graph.edges == []

    def test_nodes_and_edges_constructor(self):
        graph = DiGraph(nodes=[1, 2], edges=[(1, 2), (2, 3)])
        assert set(graph.nodes) == {1, 2, 3}
        assert graph.has_edge(1, 2) and graph.has_edge(2, 3)

    def test_add_edge_adds_endpoints(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        assert graph.has_node("a") and graph.has_node("b")
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_duplicate_edge_is_idempotent(self):
        graph = DiGraph(edges=[(1, 2), (1, 2)])
        assert graph.num_edges == 1

    def test_add_bidirectional_edge(self):
        graph = DiGraph()
        graph.add_bidirectional_edge(1, 2)
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)

    def test_len_and_contains(self):
        graph = DiGraph(nodes=[1, 2, 3])
        assert len(graph) == 3
        assert 2 in graph and 9 not in graph


class TestMutation:
    def test_remove_edge(self):
        graph = DiGraph(edges=[(1, 2)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.has_node(1) and graph.has_node(2)

    def test_remove_missing_edge_raises(self):
        graph = DiGraph(nodes=[1, 2])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_remove_node_removes_incident_edges(self):
        graph = DiGraph(edges=[(1, 2), (2, 3), (3, 1)])
        graph.remove_node(2)
        assert 2 not in graph
        assert graph.has_edge(3, 1)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1

    def test_remove_missing_node_raises(self):
        graph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(7)


class TestNeighborhoods:
    def test_successors_predecessors(self, diamond):
        assert diamond.successors(0) == frozenset({1, 2})
        assert diamond.predecessors(3) == frozenset({1, 2})
        assert diamond.in_neighbors(0) == frozenset({3})
        assert diamond.out_neighbors(3) == frozenset({0})

    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(0) == 1
        assert diamond.in_degree(3) == 2

    def test_unknown_node_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            diamond.successors(99)

    def test_set_neighborhoods(self, diamond):
        assert diamond.in_neighborhood_of_set({1, 2}) == frozenset({0})
        assert diamond.out_neighborhood_of_set({1, 2}) == frozenset({3})
        assert diamond.in_neighborhood_of_set({0, 1, 2, 3}) == frozenset()


class TestDerivedGraphs:
    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_edge(1, 2)
        assert not diamond.has_edge(1, 2)
        assert clone.has_edge(1, 2)

    def test_induced_subgraph(self, diamond):
        sub = diamond.induced_subgraph({0, 1, 3})
        assert set(sub.nodes) == {0, 1, 3}
        assert sub.has_edge(0, 1) and sub.has_edge(1, 3) and sub.has_edge(3, 0)
        assert not sub.has_edge(0, 2)

    def test_induced_subgraph_ignores_unknown_nodes(self, diamond):
        sub = diamond.induced_subgraph({0, 1, 42})
        assert set(sub.nodes) == {0, 1}

    def test_exclude_nodes(self, diamond):
        sub = diamond.exclude_nodes({3})
        assert set(sub.nodes) == {0, 1, 2}
        assert sub.num_edges == 2

    def test_remove_outgoing_edges_keeps_vertices(self, diamond):
        reduced = diamond.remove_outgoing_edges_of({0})
        assert set(reduced.nodes) == set(diamond.nodes)
        assert not reduced.has_edge(0, 1) and not reduced.has_edge(0, 2)
        assert reduced.has_edge(3, 0)

    def test_reverse(self, diamond):
        rev = diamond.reverse()
        assert rev.has_edge(1, 0) and rev.has_edge(3, 1) and rev.has_edge(0, 3)
        assert rev.num_edges == diamond.num_edges

    def test_is_bidirectional(self):
        graph = DiGraph()
        graph.add_bidirectional_edge(1, 2)
        assert graph.is_bidirectional()
        graph.add_edge(2, 3)
        assert not graph.is_bidirectional()


class TestReachability:
    def test_descendants_ancestors(self, diamond):
        assert diamond.descendants(0) == frozenset({1, 2, 3})
        assert diamond.ancestors(3) == frozenset({0, 1, 2})

    def test_has_path(self, diamond):
        assert diamond.has_path(0, 3)
        assert diamond.has_path(3, 2)
        assert diamond.has_path(1, 1)

    def test_no_path(self):
        graph = DiGraph(edges=[(1, 2)])
        graph.add_node(3)
        assert not graph.has_path(1, 3)
        assert not graph.has_path(2, 1)

    def test_shortest_path(self, diamond):
        path = diamond.shortest_path(0, 3)
        assert path is not None
        assert path[0] == 0 and path[-1] == 3 and len(path) == 3

    def test_shortest_path_trivial_and_missing(self):
        graph = DiGraph(edges=[(1, 2)])
        graph.add_node(3)
        assert graph.shortest_path(1, 1) == [1]
        assert graph.shortest_path(2, 3) is None


class TestStronglyConnectedComponents:
    def test_cycle_is_one_component(self):
        graph = DiGraph(edges=[(0, 1), (1, 2), (2, 0)])
        components = graph.strongly_connected_components()
        assert len(components) == 1
        assert components[0] == frozenset({0, 1, 2})

    def test_dag_components_are_singletons(self):
        graph = DiGraph(edges=[(0, 1), (1, 2)])
        components = graph.strongly_connected_components()
        assert len(components) == 3

    def test_condensation(self):
        graph = DiGraph(edges=[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        components, dag = graph.condensation()
        assert len(components) == 2
        assert dag.num_edges == 1

    def test_is_strongly_connected(self, diamond, cycle5):
        assert diamond.is_strongly_connected()
        assert cycle5.is_strongly_connected()
        assert not DiGraph(edges=[(0, 1)]).is_strongly_connected()
        assert not DiGraph().is_strongly_connected()

    def test_mixed_graph_component_count(self):
        # Two 2-cycles joined by a one-way bridge plus an isolated node.
        graph = DiGraph(edges=[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)])
        graph.add_node(4)
        components = graph.strongly_connected_components()
        assert len(components) == 3


class TestEqualityAndRepr:
    def test_equality(self):
        a = DiGraph(edges=[(1, 2), (2, 3)])
        b = DiGraph(edges=[(2, 3), (1, 2)])
        assert a == b
        b.add_edge(3, 1)
        assert a != b

    def test_repr_and_summary(self, diamond):
        assert "DiGraph" in repr(diamond)
        text = diamond.summary()
        assert "nodes: 4" in text and "edges: 5" in text
