"""Unit tests for the clique specializations (Appendix A closed forms)."""

from __future__ import annotations

import pytest

from repro.conditions.clique import (
    clique_k_reach_closed_form,
    clique_one_reach,
    clique_three_reach,
    clique_threshold,
    clique_two_reach,
    max_byzantine_faults_clique,
    max_crash_faults_clique_async,
    verify_clique_equivalence,
)
from repro.exceptions import InvalidFaultBoundError


class TestClosedForms:
    def test_thresholds(self):
        assert clique_one_reach(4, 3) and not clique_one_reach(4, 4)
        assert clique_two_reach(5, 2) and not clique_two_reach(4, 2)
        assert clique_three_reach(4, 1) and not clique_three_reach(3, 1)

    def test_k_reach_closed_form(self):
        assert clique_k_reach_closed_form(9, 2, 4)
        assert not clique_k_reach_closed_form(8, 2, 4)

    def test_threshold_helper(self):
        assert clique_threshold(3) == 3
        with pytest.raises(InvalidFaultBoundError):
            clique_threshold(0)

    def test_invalid_arguments(self):
        with pytest.raises(InvalidFaultBoundError):
            clique_k_reach_closed_form(0, 1, 1)
        with pytest.raises(InvalidFaultBoundError):
            clique_k_reach_closed_form(3, -1, 1)


class TestOptimalResilience:
    def test_byzantine_resilience(self):
        assert max_byzantine_faults_clique(4) == 1
        assert max_byzantine_faults_clique(6) == 1
        assert max_byzantine_faults_clique(7) == 2
        assert max_byzantine_faults_clique(3) == 0

    def test_crash_resilience(self):
        assert max_crash_faults_clique_async(5) == 2
        assert max_crash_faults_clique_async(2) == 0

    def test_resilience_consistent_with_closed_form(self):
        for n in range(2, 10):
            f = max_byzantine_faults_clique(n)
            assert clique_three_reach(n, f)
            assert not clique_three_reach(n, f + 1)

    def test_invalid_n(self):
        with pytest.raises(InvalidFaultBoundError):
            max_byzantine_faults_clique(0)


class TestEquivalenceWithGeneralCheckers:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize("f", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_general_checker_matches_closed_form(self, n, f, k):
        if n <= f:
            with pytest.raises(ValueError):
                verify_clique_equivalence(n, f, k)
        else:
            assert verify_clique_equivalence(n, f, k)
