"""Unit tests for the graph generators (including the Figure 1 graphs)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators import (
    bidirected_complete,
    bidirected_cycle,
    bidirected_star,
    bidirected_wheel,
    clique_with_feeders,
    complete_digraph,
    directed_cycle,
    directed_path,
    directed_sensor_field,
    figure_1a,
    layered_relay_digraph,
    make_bidirected,
    random_bidirected_graph,
    random_digraph,
    random_k_out_digraph,
    relabel,
    star_out,
    two_cliques_bridged,
)
from repro.graphs.properties import is_complete


class TestElementaryFamilies:
    def test_complete_digraph(self):
        clique = complete_digraph(5)
        assert clique.num_nodes == 5
        assert clique.num_edges == 20
        assert is_complete(clique)

    def test_complete_digraph_custom_labels(self):
        clique = complete_digraph(3, labels=["a", "b", "c"])
        assert set(clique.nodes) == {"a", "b", "c"}

    def test_complete_digraph_label_mismatch(self):
        with pytest.raises(GraphError):
            complete_digraph(3, labels=["a"])

    def test_directed_cycle(self):
        cycle = directed_cycle(4)
        assert cycle.num_edges == 4
        assert cycle.is_strongly_connected()

    def test_directed_path(self):
        path = directed_path(4)
        assert path.num_edges == 3
        assert not path.is_strongly_connected()

    def test_bidirected_cycle_and_star_and_wheel(self):
        assert bidirected_cycle(5).num_edges == 10
        assert bidirected_star(5).num_edges == 8
        wheel = bidirected_wheel(6)
        assert wheel.num_edges == 2 * (5 + 5)
        assert wheel.is_bidirectional()

    def test_star_out(self):
        star = star_out(4)
        assert star.out_degree(0) == 3
        assert star.in_degree(0) == 0

    def test_bidirected_complete_name(self):
        graph = bidirected_complete(4)
        assert is_complete(graph)
        assert "undirected" in graph.name

    def test_invalid_sizes_raise(self):
        with pytest.raises(GraphError):
            complete_digraph(0)
        with pytest.raises(GraphError):
            directed_cycle(1)
        with pytest.raises(GraphError):
            bidirected_wheel(3)
        with pytest.raises(GraphError):
            star_out(1)


class TestFigureGraphs:
    def test_figure_1a_shape(self):
        graph = figure_1a()
        assert graph.num_nodes == 5
        assert graph.is_bidirectional()
        assert graph.num_edges == 16  # 8 undirected edges
        assert all(graph.out_degree(node) >= 3 for node in graph.nodes)

    def test_figure_1b_shape(self, fig1b):
        assert fig1b.num_nodes == 14
        intra = 2 * 2 * 21  # both cliques, both directions
        assert fig1b.num_edges == intra + 8
        # The eight inter-clique edges are exactly the documented ones.
        inter = [(u, v) for u, v in fig1b.edges if u[0] != v[0]]
        assert len(inter) == 8
        assert ("w1", "v1") in inter and ("v7", "w7") in inter

    def test_two_cliques_bridged_parametric(self):
        graph = two_cliques_bridged(4, 2, 3)
        assert graph.num_nodes == 8
        inter = [(u, v) for u, v in graph.edges if u[0] != v[0]]
        assert len(inter) == 5

    def test_two_cliques_bridged_validation(self):
        with pytest.raises(GraphError):
            two_cliques_bridged(3, 4, 0)


class TestRandomFamilies:
    def test_random_digraph_is_seeded(self):
        a = random_digraph(8, 0.3, seed=5)
        b = random_digraph(8, 0.3, seed=5)
        assert set(a.edges) == set(b.edges)

    def test_random_digraph_connected_option(self):
        graph = random_digraph(8, 0.0, seed=1, ensure_connected=True)
        assert graph.is_strongly_connected()

    def test_random_digraph_probability_bounds(self):
        with pytest.raises(GraphError):
            random_digraph(5, 1.5)

    def test_random_bidirected(self):
        graph = random_bidirected_graph(6, 1.0, seed=0)
        assert is_complete(graph)
        assert random_bidirected_graph(6, 0.0, seed=0).num_edges == 0

    def test_random_k_out(self):
        graph = random_k_out_digraph(7, 3, seed=2)
        assert all(graph.out_degree(node) == 3 for node in graph.nodes)
        with pytest.raises(GraphError):
            random_k_out_digraph(4, 4)


class TestStructuredFamilies:
    def test_clique_with_feeders(self):
        graph = clique_with_feeders(4, 2)
        assert graph.num_nodes == 6
        assert graph.out_degree("s0") == 1
        assert graph.in_degree("s0") == 4

    def test_layered_relay_digraph(self):
        graph = layered_relay_digraph(3, 3)
        assert graph.num_nodes == 9
        assert graph.is_strongly_connected()

    def test_directed_sensor_field(self):
        graph = directed_sensor_field(3, 3)
        assert graph.num_nodes == 9
        assert graph.has_edge("s0_0", "s0_1") and graph.has_edge("s0_1", "s0_0")

    def test_sensor_field_long_range(self):
        graph = directed_sensor_field(3, 3, long_range_every=4)
        assert graph.has_edge("s1_0", "s0_0")

    def test_invalid_structured_sizes(self):
        with pytest.raises(GraphError):
            clique_with_feeders(0, 1)
        with pytest.raises(GraphError):
            layered_relay_digraph(0, 2)
        with pytest.raises(GraphError):
            directed_sensor_field(0, 3)


class TestTransformations:
    def test_make_bidirected(self):
        graph = directed_path(3)
        symmetric = make_bidirected(graph)
        assert symmetric.is_bidirectional()
        assert symmetric.num_edges == 4

    def test_relabel_with_mapping(self):
        graph = directed_path(3)
        renamed = relabel(graph, {0: "a", 1: "b", 2: "c"})
        assert set(renamed.nodes) == {"a", "b", "c"}
        assert renamed.has_edge("a", "b")

    def test_relabel_with_callable(self):
        graph = directed_path(3)
        renamed = relabel(graph, lambda node: node + 10)
        assert set(renamed.nodes) == {10, 11, 12}

    def test_relabel_requires_injective_mapping(self):
        graph = directed_path(3)
        with pytest.raises(GraphError):
            relabel(graph, {0: "x", 1: "x", 2: "y"})
