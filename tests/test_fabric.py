"""Tests for the multi-host sweep fabric (repro.runner.fabric / .leases).

The load-bearing property under test everywhere: a fabric journal —
however many workers, fences, splits and crashes produced it — folds into
the byte-identical artifact a serial run writes.  The doc-conformance
class additionally pins every on-disk format to the normative spec in
``docs/fabric-protocol.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import re
import signal
import threading
import time

import pytest

from repro.exceptions import ExperimentError, JournalError, ReproError
from repro.runner.artifacts import (
    artifact_payload,
    compare,
    dumps_canonical,
    load_artifact,
)
from repro.runner.cli import EXIT_ERROR, EXIT_FABRIC_ORPHANED, EXIT_OK, main
from repro.runner.fabric import (
    EXIT_ORPHANED,
    FABRIC_KIND,
    FABRIC_VERSION,
    MANIFEST_FILENAME,
    SHARD_KIND,
    SHARD_VERSION,
    STOP_FILENAME,
    STOP_KIND,
    WORKER_KIND,
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricWorker,
    ShardWriter,
    manifest_path,
    read_manifest,
    read_stop,
    shard_path,
    workers_dir,
    write_manifest,
    write_stop,
)
from repro.runner.journal import load_journal, tail_records
from repro.runner.leases import (
    FENCE_LOG_FILENAME,
    LEASE_KIND,
    LEASE_VERSION,
    Lease,
    LeaseError,
    append_fence,
    atomic_write_json,
    chunk_runs,
    claim,
    contiguous_runs,
    fence_log_path,
    heartbeat,
    lease_age,
    list_available,
    list_owned,
    read_lease,
    release,
    replay_fence_log,
    validate_worker_id,
    write_available,
)
from repro.runner.reporting import render_fabric_status
from repro.runner.scenarios import get_scenario, run_cell
from repro.runner.session import CellCompleted, ExperimentSession

REPO_ROOT = pathlib.Path(__file__).parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
PROTOCOL_DOC = REPO_ROOT / "docs" / "fabric-protocol.md"

#: 24 fast cells (~30 ms each): the quick definition1 grid widened to 8 seeds.
GRID = dataclasses.replace(
    get_scenario("definition1").grid(quick=True), seeds=tuple(range(1, 9))
)


def fast_config(**overrides) -> FabricConfig:
    """A coordinator-only config with test-friendly cadences."""
    base = dict(workers=0, lease_ttl=5.0, poll_interval=0.02, chunks_per_worker=2)
    base.update(overrides)
    return FabricConfig(**base)


def fold_bytes(run_dir) -> str:
    """Canonical artifact bytes of a run dir's journal, provenance-neutral."""
    journal = load_journal(run_dir)
    return dumps_canonical(
        artifact_payload(
            journal.fold(),
            mode=journal.mode,
            provenance={"environment": None, "git": None},
        )
    )


def drive(coordinator: FabricCoordinator, timeout: float = 90.0) -> None:
    """Poll ``step()`` until the run finishes (test-side ``run()`` loop)."""
    deadline = time.monotonic() + timeout
    while not coordinator.step():
        if time.monotonic() > deadline:  # pragma: no cover - failure path
            raise AssertionError("fabric run did not finish within the timeout")
        time.sleep(coordinator.config.poll_interval)


class WorkerThread:
    """An in-process FabricWorker on a daemon thread (no subprocess cost)."""

    def __init__(self, run_dir, worker_id: str, throttle=None) -> None:
        self.worker = FabricWorker(run_dir, worker_id, throttle=throttle)
        self.exit_code = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self.exit_code = self.worker.run()

    def start(self) -> "WorkerThread":
        self._thread.start()
        return self

    def join(self, timeout: float = 60.0) -> int:
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "fabric worker thread did not exit"
        return self.exit_code


@pytest.fixture(scope="module")
def serial_fold(tmp_path_factory) -> str:
    """The serial reference: GRID journaled by an ExperimentSession."""
    run_dir = tmp_path_factory.mktemp("serial")
    session = ExperimentSession(GRID, mode="quick", run_dir=run_dir)
    session.run()
    return fold_bytes(run_dir)


# ----------------------------------------------------------------------
# lease primitives
# ----------------------------------------------------------------------
class TestLeasePrimitives:
    def test_lease_roundtrip_label_and_indexes(self, tmp_path):
        lease = Lease(start=3, end=7, epoch=2)
        assert lease.count == 4
        assert lease.label == "00000003-00000007"
        assert list(lease.indexes()) == [3, 4, 5, 6]
        path = write_available(tmp_path, lease)
        assert path.name == "00000003-00000007.lease"
        assert read_lease(path) == lease

    def test_from_dict_rejects_wire_format_drift(self):
        good = Lease(0, 5, 0).as_dict()
        for corruption in (
            {"kind": "something-else"},
            {"lease_version": 99},
            {"start": 5, "end": 5},  # empty range
            {"start": -1},
            {"epoch": -1},
            {"end": "not-a-number"},
        ):
            with pytest.raises(LeaseError):
                Lease.from_dict({**good, **corruption})
        with pytest.raises(LeaseError):
            Lease.from_dict(["not", "an", "object"])

    def test_worker_ids_must_be_filename_safe(self):
        for ok in ("w1", "host-3.worker_2", "A.B-c_d"):
            assert validate_worker_id(ok) == ok
        for bad in ("", "a/b", "a b", "host:1", "../up"):
            with pytest.raises(ReproError):
                validate_worker_id(bad)

    def test_claim_is_exclusive_and_scans_in_range_order(self, tmp_path):
        write_available(tmp_path, Lease(5, 10, 0))
        write_available(tmp_path, Lease(0, 5, 0))
        first = claim(tmp_path, "alice")
        assert first is not None
        path, lease = first
        assert lease == Lease(0, 5, 0)  # lowest range claimed first
        assert path.name == "00000000-00000005.owned.alice"
        second = claim(tmp_path, "bob")
        assert second is not None and second[1] == Lease(5, 10, 0)
        assert claim(tmp_path, "carol") is None  # nothing left
        assert {owner for _, owner in list_owned(tmp_path)} == {"alice", "bob"}
        assert list_available(tmp_path) == []

    def test_heartbeat_release_and_age(self, tmp_path):
        write_available(tmp_path, Lease(0, 2, 0))
        path, _ = claim(tmp_path, "w")
        old = time.time() - 300
        os.utime(path, (old, old))
        assert lease_age(path) > 200
        heartbeat(path)
        assert lease_age(path) < 5
        release(path)
        assert lease_age(path) is None  # gone
        release(path)  # releasing a fenced (vanished) lease is a no-op

    def test_contiguous_runs_and_chunking(self):
        assert contiguous_runs([]) == []
        assert contiguous_runs([4, 1, 2, 0, 9]) == [(0, 3), (4, 5), (9, 10)]
        assert chunk_runs([(0, 10)], 4) == [(0, 4), (4, 8), (8, 10)]
        assert chunk_runs([(0, 3), (7, 9)], 2) == [(0, 2), (2, 3), (7, 9)]
        with pytest.raises(ValueError):
            chunk_runs([(0, 1)], 0)

    def test_fence_log_replay_takes_the_max_epoch(self, tmp_path):
        append_fence(tmp_path, Lease(0, 10, 1))
        append_fence(tmp_path, Lease(5, 8, 2))
        epochs = replay_fence_log(tmp_path)
        assert epochs[0] == 1 and epochs[4] == 1
        assert epochs[5] == 2 and epochs[7] == 2
        assert epochs[9] == 1
        assert 10 not in epochs

    def test_fence_log_tolerates_a_torn_tail_only(self, tmp_path):
        append_fence(tmp_path, Lease(0, 4, 1))
        log = fence_log_path(tmp_path)
        with open(log, "ab") as handle:
            handle.write(b'{"record": "fence", "start": 4, ')  # torn append
        assert replay_fence_log(tmp_path) == {0: 1, 1: 1, 2: 1, 3: 1}
        # A *terminated* garbage line is real corruption, not a torn tail.
        log.write_bytes(b'{"start": 0, "end": 1, "epoch": 1}\nnot json\n')
        with pytest.raises(LeaseError):
            replay_fence_log(tmp_path)


# ----------------------------------------------------------------------
# incremental shard tailing
# ----------------------------------------------------------------------
class TestTailRecords:
    def test_missing_file_reads_empty(self, tmp_path):
        records, offset = tail_records(tmp_path / "nope.jsonl", 0)
        assert records == [] and offset == 0

    def test_incremental_offsets_defer_the_unterminated_tail(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        path.write_bytes(b'{"record": "x", "a": 1}\n{"record": "x", "a": 2}\n')
        records, offset = tail_records(path, 0)
        assert [r["a"] for r in records] == [1, 2]
        with open(path, "ab") as handle:
            handle.write(b'{"record": "x", "a": 3')  # mid-append, no newline yet
        records, offset2 = tail_records(path, offset)
        assert records == [] and offset2 == offset  # tail not yet a record
        with open(path, "ab") as handle:
            handle.write(b'}\n{"record": "x", "a": 4}\n')
        records, offset3 = tail_records(path, offset2)
        assert [r["a"] for r in records] == [3, 4]
        assert offset3 == path.stat().st_size

    def test_terminated_garbage_raises(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        path.write_bytes(b'{"record": "x", "a": 1}\nnot json\n')
        with pytest.raises(JournalError):
            tail_records(path, 0)


# ----------------------------------------------------------------------
# the coordinator + in-process workers
# ----------------------------------------------------------------------
class TestFabricRuns:
    def test_completes_and_folds_byte_identically_to_serial(
        self, tmp_path, serial_fold
    ):
        indexes = []

        def observer(event):
            if isinstance(event, CellCompleted):
                indexes.append(event.result.index)

        coordinator = FabricCoordinator(
            GRID, run_dir=tmp_path, mode="quick", config=fast_config(), observer=observer
        )
        coordinator.start()
        worker = WorkerThread(tmp_path, "tw1").start()
        try:
            drive(coordinator)
        finally:
            coordinator.close()
        assert worker.join() == 0  # stop sentinel seen
        # The hold-back merge feeds the event stream in strict index order.
        assert indexes == sorted(indexes) == list(range(len(GRID.expand())))
        report = coordinator.report
        assert report.merged == len(indexes)
        assert report.rejected_stale == 0 and report.duplicates == 0
        journal = load_journal(tmp_path)
        assert journal.sealed and journal.seal_reason == "completed"
        assert read_stop(tmp_path) == {
            "kind": STOP_KIND,
            "stop_version": 1,
            "reason": "completed",
        }
        assert fold_bytes(tmp_path) == serial_fold

    def test_stop_policy_seals_early_and_stops_workers(self, tmp_path):
        coordinator = FabricCoordinator(
            GRID,
            run_dir=tmp_path,
            mode="quick",
            config=fast_config(),
            stop_policies=["max-cells:6"],
        )
        coordinator.start()
        worker = WorkerThread(tmp_path, "tw1").start()
        try:
            drive(coordinator)
        finally:
            coordinator.close()
        assert worker.join() == 0  # the sentinel, not exhaustion, stopped it
        assert coordinator.finished.reason == "policy:max-cells"
        assert read_stop(tmp_path)["reason"] == "policy:max-cells"
        journal = load_journal(tmp_path)
        assert journal.sealed and journal.seal_reason == "policy:max-cells"
        assert len(coordinator.result.cells) == 6
        assert coordinator.result.stop_reason == "policy:max-cells"

    def test_resume_after_coordinator_loss(self, tmp_path, serial_fold):
        first = FabricCoordinator(
            GRID, run_dir=tmp_path, mode="quick", config=fast_config()
        )
        first.start()
        worker = WorkerThread(tmp_path, "tw1").start()
        deadline = time.monotonic() + 60
        while first.report.merged < 8:
            assert time.monotonic() < deadline, "no progress before interruption"
            first.step()
            time.sleep(0.02)
        # Die like `run()` dies on SIGINT: sentinel out, journal unsealed.
        write_stop(tmp_path, "interrupted")
        first.close()
        assert worker.join() == 0
        assert not load_journal(tmp_path).sealed

        resumed = FabricCoordinator.resume(tmp_path, config=fast_config())
        resumed.start()
        assert read_stop(tmp_path) is None  # stale sentinel deleted
        # Leftover lease files from the dead incarnation were fenced.
        assert resumed.report.fenced >= 1
        assert max(replay_fence_log(tmp_path).values()) >= 1
        second_worker = WorkerThread(tmp_path, "tw2").start()
        try:
            drive(resumed)
        finally:
            resumed.close()
        assert second_worker.join() == 0
        journal = load_journal(tmp_path)
        assert journal.sealed and journal.seal_reason == "completed"
        assert fold_bytes(tmp_path) == serial_fold

    def test_resume_refuses_a_sealed_journal(self, tmp_path):
        coordinator = FabricCoordinator(
            GRID, run_dir=tmp_path, mode="quick", config=fast_config()
        )
        coordinator.start()
        worker = WorkerThread(tmp_path, "tw1").start()
        try:
            drive(coordinator)
        finally:
            coordinator.close()
        worker.join()
        with pytest.raises(ExperimentError, match="sealed"):
            FabricCoordinator.resume(tmp_path)

    def test_worker_exits_orphaned_when_the_coordinator_heartbeat_stales(
        self, tmp_path
    ):
        coordinator = FabricCoordinator(
            GRID,
            run_dir=tmp_path,
            mode="quick",
            config=fast_config(orphan_grace=0.3),
        )
        coordinator.start()
        coordinator.close()  # coordinator dies; manifest mtime now frozen
        old = time.time() - 100
        os.utime(manifest_path(tmp_path), (old, old))
        worker = FabricWorker(tmp_path, "lonely")
        assert worker.run() == EXIT_ORPHANED
        status = json.loads(
            (workers_dir(tmp_path) / "lonely.json").read_text(encoding="utf-8")
        )
        assert status["state"] == "exited"  # final rewrite on the way out


# ----------------------------------------------------------------------
# lease expiry, epoch fencing, duplicates, work stealing
# ----------------------------------------------------------------------
class TestFencing:
    def test_expired_lease_is_fenced_and_republished(self, tmp_path):
        coordinator = FabricCoordinator(
            GRID,
            run_dir=tmp_path,
            mode="quick",
            config=fast_config(chunks_per_worker=1),  # one lease over all cells
        )
        coordinator.start()
        try:
            claimed = claim(tmp_path, "stalled")
            assert claimed is not None
            path, lease = claimed
            assert lease.epoch == 0
            old = time.time() - 100
            os.utime(path, (old, old))  # heartbeat long dead
            coordinator.step()
            assert not path.exists()
            assert coordinator.report.fenced == 1
            republished = list_available(tmp_path)
            assert len(republished) == 1
            bumped = read_lease(republished[0])
            assert (bumped.start, bumped.end, bumped.epoch) == (lease.start, lease.end, 1)
            epochs = replay_fence_log(tmp_path)
            assert all(epochs[i] == 1 for i in lease.indexes())
        finally:
            coordinator.close()

    def test_stale_epoch_records_are_rejected_and_do_not_leak(
        self, tmp_path, serial_fold
    ):
        coordinator = FabricCoordinator(
            GRID,
            run_dir=tmp_path,
            mode="quick",
            config=fast_config(chunks_per_worker=1),
        )
        coordinator.start()
        # A worker claims, stalls past the TTL, and is fenced (epoch -> 1).
        path, _ = claim(tmp_path, "zombie")
        old = time.time() - 100
        os.utime(path, (old, old))
        coordinator.step()
        # The zombie wakes up and appends a *corrupted* result for cell 0,
        # stamped with the epoch it still believes in.  If epoch fencing
        # failed, this poisoned payload would reach the journal.
        real = run_cell(GRID, GRID.expand()[0])
        poisoned = dataclasses.replace(real, rounds=real.rounds + 999, messages=0)
        with ShardWriter(tmp_path, "zombie", coordinator.spec_hash) as shard:
            shard.append_cell(poisoned, epoch=0)
        coordinator.step()
        assert coordinator.report.rejected_stale == 1
        # A healthy worker now runs everything at the fenced epoch.
        worker = WorkerThread(tmp_path, "healthy").start()
        try:
            drive(coordinator)
        finally:
            coordinator.close()
        assert worker.join() == 0
        assert coordinator.report.rejected_stale >= 1
        assert fold_bytes(tmp_path) == serial_fold  # the poison never landed

    def test_duplicate_shard_records_are_dropped(self, tmp_path):
        coordinator = FabricCoordinator(
            GRID, run_dir=tmp_path, mode="quick", config=fast_config()
        )
        coordinator.start()
        try:
            result = run_cell(GRID, GRID.expand()[0])
            with ShardWriter(tmp_path, "echo", coordinator.spec_hash) as shard:
                shard.append_cell(result, epoch=0)
                shard.append_cell(result, epoch=0)  # re-delivered record
            coordinator.step()
            assert coordinator.report.merged == 1
            assert coordinator.report.duplicates == 1
        finally:
            coordinator.close()

    def test_shard_from_another_run_is_refused(self, tmp_path):
        coordinator = FabricCoordinator(
            GRID, run_dir=tmp_path, mode="quick", config=fast_config()
        )
        coordinator.start()
        try:
            with ShardWriter(tmp_path, "stranger", "0" * 64):
                pass  # header only, wrong spec_hash
            with pytest.raises(FabricError, match="spec_hash"):
                coordinator.step()
        finally:
            coordinator.close()

    def test_split_steals_the_tail_of_the_largest_lease(self, tmp_path):
        coordinator = FabricCoordinator(
            GRID,
            run_dir=tmp_path,
            mode="quick",
            config=fast_config(chunks_per_worker=1, lease_ttl=30.0),
        )
        coordinator.start()
        try:
            path, lease = claim(tmp_path, "slowpoke")  # owns all 24 cells, alive
            # An external idle worker advertises itself via its status file.
            directory = workers_dir(tmp_path)
            directory.mkdir(parents=True, exist_ok=True)
            atomic_write_json(
                directory / "idler.json",
                {
                    "kind": WORKER_KIND,
                    "worker": "idler",
                    "pid": 99999,
                    "state": "idle",
                    "lease": None,
                    "epoch": None,
                    "cells_done": 0,
                    "caches": {},
                },
            )
            coordinator.step()
            assert coordinator.report.splits == 1
            # Owner keeps the head, in place: same file name, shrunk content.
            shrunk = read_lease(path)
            assert path.name == "00000000-00000024.owned.slowpoke"
            assert (shrunk.start, shrunk.end, shrunk.epoch) == (0, 12, 0)
            # The stolen tail is republished at the bumped epoch.
            stolen = [read_lease(p) for p in list_available(tmp_path)]
            assert [(s.start, s.end, s.epoch) for s in stolen] == [(12, 24, 1)]
            epochs = replay_fence_log(tmp_path)
            assert epochs[12] == 1 and epochs[23] == 1 and 11 not in epochs
        finally:
            coordinator.close()


# ----------------------------------------------------------------------
# crash injection: SIGKILL a real pool worker mid-lease
# ----------------------------------------------------------------------
class TestCrashInjection:
    def test_sigkilled_worker_is_fenced_and_the_run_still_folds_identically(
        self, tmp_path, serial_fold
    ):
        config = FabricConfig(
            workers=2,
            lease_ttl=2.0,
            poll_interval=0.05,
            chunks_per_worker=2,
            worker_throttle=0.2,  # widen the mid-lease kill window
        )
        coordinator = FabricCoordinator(
            GRID, run_dir=tmp_path, mode="quick", config=config
        )
        coordinator.start()
        killed = None
        deadline = time.monotonic() + 120
        try:
            while not coordinator.step():
                assert time.monotonic() < deadline, "fabric run did not finish"
                if killed is None:
                    pool_pids = coordinator.worker_pids
                    for _, owner in list_owned(tmp_path):
                        if owner in pool_pids:
                            os.kill(pool_pids[owner], signal.SIGKILL)
                            killed = owner
                            break
                time.sleep(config.poll_interval)
        finally:
            coordinator.close()
        assert killed is not None, "no pool worker ever owned a lease"
        assert coordinator.report.fenced >= 1
        journal = load_journal(tmp_path)
        assert journal.sealed and journal.seal_reason == "completed"
        assert fold_bytes(tmp_path) == serial_fold


# ----------------------------------------------------------------------
# docs/fabric-protocol.md conformance
# ----------------------------------------------------------------------
def _doc_blocks() -> dict:
    """``<!-- conformance:NAME -->`` JSON blocks from the protocol spec."""
    text = PROTOCOL_DOC.read_text(encoding="utf-8")
    pattern = re.compile(
        r"<!-- conformance:(?P<name>[a-z-]+) -->\s*```json\n(?P<body>.*?)```",
        re.DOTALL,
    )
    return {
        match.group("name"): json.loads(match.group("body"))
        for match in pattern.finditer(text)
    }


def _is_placeholder(value) -> bool:
    """Doc values like ``"<sha256 hex ...>"`` / ``{"...": ...}`` are schematic."""
    if isinstance(value, str):
        return value.startswith("<") and value.endswith(">")
    if isinstance(value, dict):
        return "..." in value
    return False


def _assert_conforms(doc: dict, actual: dict, name: str) -> None:
    assert set(doc) == set(actual), f"{name}: key sets differ"
    for key, documented in doc.items():
        if _is_placeholder(documented):
            continue
        assert actual[key] == documented, f"{name}: value of {key!r} differs"


class TestDocConformance:
    def test_the_spec_documents_every_format(self):
        assert set(_doc_blocks()) == {
            "manifest",
            "lease",
            "fence",
            "shard-header",
            "shard-cell",
            "stop",
            "worker-status",
        }

    def test_manifest_block(self, tmp_path):
        doc = _doc_blocks()["manifest"]
        write_manifest(tmp_path, "a" * 64, "quick", FabricConfig())
        actual = read_manifest(tmp_path)
        _assert_conforms(doc, actual, "manifest")
        assert doc["kind"] == FABRIC_KIND
        assert doc["fabric_version"] == FABRIC_VERSION

    def test_lease_block(self):
        doc = _doc_blocks()["lease"]
        assert doc == Lease(0, 5, 0).as_dict()
        assert doc["kind"] == LEASE_KIND and doc["lease_version"] == LEASE_VERSION

    def test_fence_block(self, tmp_path):
        doc = _doc_blocks()["fence"]
        append_fence(tmp_path, Lease(5, 10, 1))
        line = fence_log_path(tmp_path).read_text(encoding="utf-8").strip()
        assert json.loads(line) == doc

    def test_shard_blocks(self, tmp_path):
        header_doc = _doc_blocks()["shard-header"]
        cell_doc = _doc_blocks()["shard-cell"]
        with ShardWriter(tmp_path, "w1", "b" * 64) as shard:
            shard.append_cell(run_cell(GRID, GRID.expand()[0]), epoch=0)
        records, _ = tail_records(shard_path(tmp_path, "w1"), 0)
        header, cell = records
        _assert_conforms(header_doc, header, "shard-header")
        assert header_doc["kind"] == SHARD_KIND
        assert header_doc["shard_version"] == SHARD_VERSION
        _assert_conforms(cell_doc, cell, "shard-cell")

    def test_stop_block(self, tmp_path):
        doc = _doc_blocks()["stop"]
        write_stop(tmp_path, "completed")
        assert read_stop(tmp_path) == doc
        assert doc["kind"] == STOP_KIND

    def test_worker_status_block(self, tmp_path):
        doc = _doc_blocks()["worker-status"]
        worker = FabricWorker(tmp_path, "w1")
        worker._write_status("working", Lease(0, 5, 0))
        actual = json.loads(
            (workers_dir(tmp_path) / "w1.json").read_text(encoding="utf-8")
        )
        assert set(doc) == set(actual)
        assert actual["kind"] == WORKER_KIND == doc["kind"]
        assert actual["lease"] == doc["lease"] == "00000000-00000005"
        # Every state the implementation writes is one the doc enumerates.
        text = PROTOCOL_DOC.read_text(encoding="utf-8")
        for state in ("idle", "working", "orphaned", "exited"):
            assert f"`{state}`" in text

    def test_file_names_and_exit_code_match_the_spec(self):
        text = PROTOCOL_DOC.read_text(encoding="utf-8")
        for constant in (
            MANIFEST_FILENAME,
            STOP_FILENAME,
            FENCE_LOG_FILENAME,
            "journal.jsonl",
            "leases/",
            "shards/",
            "workers/",
            ".lease",
            ".owned.",
        ):
            assert constant in text, f"spec never mentions {constant!r}"
        assert f"**{EXIT_ORPHANED}**" in text  # the orphaned-worker exit code


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFabricCLI:
    def test_conflicting_flags_are_usage_errors(self, capsys):
        base = ["run", "--scenario", "definition1", "--quick"]
        for extra in (
            ["--fabric", "-1"],
            ["--fabric", "1", "--workers", "2"],
            ["--fabric", "1", "--chunk-size", "4"],
            ["--lease-ttl", "5"],  # only meaningful with --fabric
            ["--worker-throttle", "0.1"],
            ["--fabric", "1", "--scenario", "table1"],  # one scenario per run dir
        ):
            assert main(base + extra) == EXIT_ERROR
            assert "error:" in capsys.readouterr().err

    def test_fabric_run_status_and_baseline_comparison(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        artifact = tmp_path / "definition1.quick.json"
        code = main(
            [
                "run",
                "--scenario",
                "definition1",
                "--quick",
                "--fabric",
                "1",
                "--run-dir",
                str(run_dir),
                "--output",
                str(artifact),
                "--no-table",
            ]
        )
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "fabric workers=1" in out and "merged=" in out
        report = compare(
            load_artifact(BASELINE_DIR / "definition1.quick.json"),
            load_artifact(artifact),
        )
        assert report.ok, report.summary() if hasattr(report, "summary") else report
        assert main(["fabric", "status", "--run-dir", str(run_dir)]) == EXIT_OK
        rendered = capsys.readouterr().out
        assert "sealed (completed)" in rendered
        assert "3/3 cells merged" in rendered
        assert main(["fabric", "status", "--run-dir", str(run_dir), "--json"]) == EXIT_OK
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["journal"]["sealed"] is True
        assert snapshot["stop"]["reason"] == "completed"
        # The library helper renders the same snapshot without touching disk.
        assert "sealed (completed)" in render_fabric_status(snapshot)

    def test_status_rejects_a_non_fabric_directory(self, tmp_path, capsys):
        assert main(["fabric", "status", "--run-dir", str(tmp_path)]) == EXIT_ERROR
        assert "not a fabric run directory" in capsys.readouterr().err

    def test_worker_cli_propagates_the_orphan_exit_code(self, tmp_path):
        coordinator = FabricCoordinator(
            GRID,
            run_dir=tmp_path,
            mode="quick",
            config=fast_config(orphan_grace=0.3),
        )
        coordinator.start()
        coordinator.close()
        old = time.time() - 100
        os.utime(manifest_path(tmp_path), (old, old))
        code = main(
            ["fabric", "worker", "--run-dir", str(tmp_path), "--worker-id", "cli-w"]
        )
        assert code == EXIT_FABRIC_ORPHANED == 4

    def test_worker_cli_rejects_unsafe_worker_ids(self, tmp_path, capsys):
        code = main(
            ["fabric", "worker", "--run-dir", str(tmp_path), "--worker-id", "a/b"]
        )
        assert code == EXIT_ERROR
        assert "filename-safe" in capsys.readouterr().err
