"""Tests for the network fault-injection layer (repro.network.faults).

Covers the FAULTS registry and schedule compilation, the simulator's
control-event semantics (suppression, defer/drop, retry, duplication), the
zero-intensity byte-identity guarantee, fail-fast delay-model validation,
the sweep-level ``faults`` axis (serial / sharded / resumed determinism
against the committed ``churn`` baseline), and the fabric's transient-I/O
retry hardening.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import ExperimentError, SimulationError, UnknownPluginError
from repro.graphs.generators import complete_digraph, directed_cycle
from repro.network.delays import CongestionDelay, PerLinkDelay, TargetedDelay, UniformDelay
from repro.network.faults import (
    DEFAULT_HORIZON,
    LINK_DOWN,
    LINK_UP,
    FaultSchedule,
    derive_fault_seed,
    make_faults,
)
from repro.network.node import Process, RecordingProcess
from repro.network.simulator import Simulator
from repro.registry import FAULTS
from repro.runner.artifacts import compare, dumps_canonical, load_artifact
from repro.runner.fabric import ShardWriter, retry_transient_io
from repro.runner.harness import GridSpec, SweepEngine, TopologySpec
from repro.runner.reporting import SWEEP_HEADERS, render_sweep_groups
from repro.runner.scenarios import get_scenario
from repro.runner.session import ExperimentSession
from tests.test_session import BASELINE_DIR, _drop_after


class Broadcaster(Process):
    def __init__(self, node_id, payload):
        super().__init__(node_id)
        self.payload = payload

    def on_start(self):
        self.broadcast(self.payload)


def _wire(graph, faults=None, seed=7, delay_model=None, payloads=("x",)):
    """A simulator where node 0 broadcasts and everyone else records."""
    simulator = Simulator(graph, delay_model or UniformDelay(0.5, 2.0), seed=seed, faults=faults)
    processes = {0: Broadcaster(0, payloads[0])}
    for node in graph.nodes:
        if node != 0:
            processes[node] = RecordingProcess(node)
    simulator.add_processes(processes.values())
    return simulator, processes


# ----------------------------------------------------------------------
# registry + schedule compilation
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_policies_registered(self):
        names = set(FAULTS.names())
        assert {"none", "link-flap", "churn", "drop", "duplicate", "congestion"} <= names

    def test_unknown_policy_raises(self):
        with pytest.raises(UnknownPluginError):
            make_faults("gremlins:0.5")

    def test_spec_is_recorded_on_the_policy(self):
        policy = make_faults("churn:0.4,5.0")
        assert policy.spec == "churn:0.4,5.0"

    def test_invalid_parameters_fail_fast(self):
        with pytest.raises(ExperimentError, match="between 0 and 1"):
            make_faults("churn:1.5")
        with pytest.raises(ExperimentError, match="downtime must be shorter"):
            make_faults("link-flap:0.5,10.0,4.0")
        with pytest.raises(ExperimentError, match="probability"):
            make_faults("drop:1.0")


class TestScheduleDeterminism:
    def test_same_seed_same_trace(self):
        graph = complete_digraph(6)
        one = make_faults("churn:0.9,5.0").build(graph, 42)
        two = make_faults("churn:0.9,5.0").build(graph, 42)
        assert one.trace() == two.trace()
        assert one.trace_digest() == two.trace_digest()

    def test_different_seed_different_trace(self):
        graph = complete_digraph(6)
        one = make_faults("churn:1.0,5.0").build(graph, 1)
        two = make_faults("churn:1.0,5.0").build(graph, 2)
        assert one.trace_digest() != two.trace_digest()

    def test_fault_seed_is_decorrelated_from_the_cell_seed(self):
        assert derive_fault_seed(7, "runtime") != 7
        assert derive_fault_seed(7, "runtime") != derive_fault_seed(7, "windows")

    def test_trace_is_sorted_and_paired(self):
        graph = complete_digraph(4)
        schedule = make_faults("link-flap:1.0,2.0,8.0").build(graph, 3)
        trace = schedule.trace()
        assert trace, "rate-1.0 flapping must produce windows"
        assert list(trace) == sorted(trace)
        downs = sum(1 for event in trace if event[1] == LINK_DOWN)
        ups = sum(1 for event in trace if event[1] == LINK_UP)
        assert downs == ups
        assert all(event[0] <= DEFAULT_HORIZON for event in trace)

    def test_zero_intensity_schedules_are_inactive(self):
        graph = complete_digraph(4)
        for spec in ("none", "drop:0.0", "duplicate:0.0", "churn:0.0", "link-flap:0.0"):
            assert not make_faults(spec).build(graph, 5).active, spec
        assert make_faults("drop:0.2").build(graph, 5).active

    def test_congestion_schedule_is_inactive_but_overrides_the_delay(self):
        graph = complete_digraph(4)
        schedule = make_faults("congestion:0.3").build(graph, 5)
        assert not schedule.active
        assert schedule.delay_spec.startswith("congestion:")


# ----------------------------------------------------------------------
# simulator semantics
# ----------------------------------------------------------------------
class TestSimulatorFaults:
    def test_zero_intensity_run_is_byte_identical_to_no_faults(self):
        graph = complete_digraph(5)
        inert = make_faults("drop:0.0").build(graph, 11)
        plain, _ = _wire(graph, faults=None)
        gated, _ = _wire(graph, faults=inert)
        plain.run()
        gated.run()
        assert plain.stats.__dict__ == gated.stats.__dict__

    def test_unknown_link_in_schedule_raises(self):
        graph = directed_cycle(4)
        schedule = FaultSchedule("custom", link_windows={(0, 3): [(1.0, 2.0)]}, seed=0)
        simulator, _ = _wire(graph, faults=schedule)
        with pytest.raises(SimulationError, match="not in the graph"):
            simulator.run()

    def test_node_down_window_suppresses_and_drops(self):
        graph = complete_digraph(3)
        # Node 0 is down for the whole horizon: its broadcast is suppressed.
        schedule = FaultSchedule("custom", node_windows={0: [(0.0, 100.0)]}, seed=0)
        simulator, processes = _wire(graph, faults=schedule)
        simulator.run()
        assert simulator.stats.suppressed_messages > 0
        assert all(not processes[n].received for n in (1, 2))

    def test_receiver_down_at_delivery_loses_the_message(self):
        graph = complete_digraph(3)
        # Node 1 is down during the delivery window but up at send time.
        schedule = FaultSchedule("custom", node_windows={1: [(0.1, 100.0)]}, seed=0)
        simulator, processes = _wire(graph, faults=schedule)
        simulator.run()
        assert not processes[1].received
        assert processes[2].received
        assert simulator.stats.dropped_messages >= 1

    def test_link_down_defer_redelivers_after_up(self):
        graph = complete_digraph(3)
        schedule = FaultSchedule(
            "custom", link_windows={(0, 1): [(0.0, 10.0)]}, on_down="defer", seed=0
        )
        simulator, processes = _wire(graph, faults=schedule)
        simulator.run()
        assert simulator.stats.deferred_messages >= 1
        assert processes[1].received  # delivered after the link came back
        assert simulator.stats.final_time >= 10.0

    def test_link_down_drop_loses_the_message(self):
        graph = complete_digraph(3)
        schedule = FaultSchedule(
            "custom", link_windows={(0, 1): [(0.0, 10.0)]}, on_down="drop", seed=0
        )
        simulator, processes = _wire(graph, faults=schedule)
        simulator.run()
        assert not processes[1].received
        assert processes[2].received
        assert simulator.stats.dropped_messages >= 1

    def test_drop_policy_counts_retransmissions(self):
        graph = complete_digraph(4)
        schedule = make_faults("drop:0.4,3,0.25").build(graph, 9)
        simulator, _ = _wire(graph, faults=schedule)
        simulator.run()
        stats = simulator.stats
        assert stats.retransmissions > 0
        # every send either eventually lands or exhausts its retries
        assert stats.delivered_messages + stats.dropped_messages == stats.sent_messages

    def test_duplicate_policy_delivers_extra_copies(self):
        graph = complete_digraph(3)
        schedule = make_faults("duplicate:0.9").build(graph, 3)
        simulator, processes = _wire(graph, faults=schedule)
        simulator.run()
        assert simulator.stats.duplicated_messages > 0
        total = sum(len(processes[n].received) for n in (1, 2))
        assert total == 2 + simulator.stats.duplicated_messages

    def test_fault_runs_are_reproducible(self):
        graph = complete_digraph(4)
        runs = []
        for _ in range(2):
            schedule = make_faults("drop:0.3").build(graph, 5)
            simulator, processes = _wire(graph, faults=schedule)
            simulator.run()
            runs.append(
                (simulator.stats.__dict__, {n: processes[n].received for n in (1, 2, 3)})
            )
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# delay-model validation (fail fast on typo'd link keys) + CongestionDelay
# ----------------------------------------------------------------------
class TestDelayValidation:
    def test_per_link_delay_rejects_unknown_edges_at_construction(self):
        graph = directed_cycle(4)
        with pytest.raises(ExperimentError, match="not in the graph"):
            PerLinkDelay(1.0, overrides={(0, 99): 5.0}, graph=graph)

    def test_per_link_delay_validate_hook(self):
        graph = directed_cycle(4)
        model = PerLinkDelay(1.0, overrides={(0, 99): 5.0})
        with pytest.raises(ExperimentError, match="not in the graph"):
            Simulator(graph, model)

    def test_targeted_delay_rejects_unknown_edges(self):
        graph = directed_cycle(4)
        with pytest.raises(ExperimentError, match="not in the graph"):
            TargetedDelay(slow_edges=[(0, 2)], release_time=5.0, graph=graph)

    def test_valid_overrides_pass(self):
        graph = directed_cycle(4)
        model = PerLinkDelay(1.0, overrides={(0, 1): 5.0}, graph=graph)
        Simulator(graph, model)  # no raise

    def test_congestion_delay_zero_slope_matches_uniform(self):
        import random

        base = UniformDelay(0.5, 2.0)
        congested = CongestionDelay(0.5, 2.0, slope=0.0)
        draws_a = [base.delay(0, 1, None, 0.0, random.Random(3)) for _ in range(1)]
        draws_b = [congested.delay(0, 1, None, 0.0, random.Random(3)) for _ in range(1)]
        assert draws_a == draws_b

    def test_congestion_delay_adds_load_penalty(self):
        import random

        model = CongestionDelay(1.0, 1.0, slope=0.5, cap=2.0)
        model.bind_load_probe(lambda sender, receiver: 10)
        delay = model.delay(0, 1, None, 0.0, random.Random(0))
        assert delay == pytest.approx(1.0 + 2.0)  # constant base + capped penalty


# ----------------------------------------------------------------------
# sweep-level integration (the `faults` axis)
# ----------------------------------------------------------------------
CHURN_QUICK = get_scenario("churn").grid(quick=True)


def _grid(**overrides):
    base = dict(
        name="faults-test",
        algorithms=("bw",),
        topologies=(TopologySpec(family="figure-1a"),),
        f_values=(1,),
        behaviors=("crash",),
        placements=("random",),
        seeds=(1,),
        epsilon=0.25,
        inputs="spread",
        rounds=10,
    )
    base.update(overrides)
    return GridSpec(**base)


class TestFaultsAxis:
    def test_expansion_multiplies_by_fault_specs(self):
        spec = _grid(faults=("none", "drop:0.2"), seeds=(1, 2))
        assert spec.num_cells == 4
        labels = {cell.faults for cell in spec.expand()}
        assert labels == {"none", "drop:0.2"}

    def test_grid_spec_round_trips_with_and_without_faults(self):
        with_faults = _grid(faults=("none", "drop:0.2"))
        assert GridSpec.from_dict(with_faults.as_dict()) == with_faults
        plain = _grid()
        assert "faults" not in plain.as_dict()
        assert GridSpec.from_dict(plain.as_dict()) == plain

    def test_unknown_fault_spec_fails_validation(self):
        with pytest.raises(UnknownPluginError):
            _grid(faults=("gremlins",)).validate_plugins()

    def test_zero_intensity_cells_match_fault_free_cells(self):
        inert = SweepEngine().run(_grid(faults=("drop:0.0",))).cells[0].as_dict()
        plain = SweepEngine().run(_grid()).cells[0].as_dict()
        assert inert.pop("faults") == "drop:0.0"
        assert inert == plain

    def test_fault_free_cell_records_omit_the_faults_key(self):
        record = SweepEngine().run(_grid()).cells[0].as_dict()
        assert "faults" not in record

    def test_active_cells_record_fault_provenance(self):
        result = SweepEngine().run(_grid(faults=("drop:0.3",))).cells[0]
        summary = result.metrics["faults"]
        assert summary["policy"] == "drop:0.3"
        assert len(summary["trace_digest"]) == 64

    def test_sync_and_check_cells_reject_fault_schedules(self):
        sync = _grid(algorithms=("iterative",), faults=("churn:0.5",))
        with pytest.raises(ExperimentError, match="cannot carry fault schedule"):
            SweepEngine().run(sync)
        check = _grid(algorithms=("check-reach",), behaviors=("-",),
                      placements=("-",), faults=("drop:0.2",))
        with pytest.raises(ExperimentError, match="cannot carry fault schedule"):
            SweepEngine().run(check)

    def test_serial_and_sharded_runs_are_byte_identical(self):
        serial = SweepEngine(workers=1).run(CHURN_QUICK)
        sharded = SweepEngine(workers=4).run(CHURN_QUICK)
        assert serial.cells == sharded.cells
        digests = [
            cell.metrics["faults"]["trace_digest"]
            for cell in serial.cells
            if "faults" in cell.metrics
        ]
        assert digests  # the churn quick grid must exercise active schedules
        assert digests == [
            cell.metrics["faults"]["trace_digest"]
            for cell in sharded.cells
            if "faults" in cell.metrics
        ]

    def test_interrupt_then_resume_matches_the_committed_baseline(self, tmp_path):
        interrupted = ExperimentSession(
            CHURN_QUICK, mode="quick", workers=2, run_dir=tmp_path / "run"
        )
        assert _drop_after(interrupted, 2) == 2
        resumed = ExperimentSession.resume(tmp_path / "run", workers=2)
        resumed.run()
        reference = ExperimentSession(CHURN_QUICK, mode="quick", workers=1)
        reference.run()
        assert dumps_canonical(resumed.artifact_payload()) == dumps_canonical(
            reference.artifact_payload()
        )
        baseline = load_artifact(BASELINE_DIR / "churn.quick.json")
        assert compare(baseline, resumed.artifact_payload()).ok

    def test_committed_fault_scenarios_reproduce(self):
        for name in ("churn", "congestion"):
            grid = get_scenario(name).grid(quick=True)
            result = SweepEngine(workers=1).run(grid)
            from repro.runner.artifacts import artifact_payload

            baseline = load_artifact(BASELINE_DIR / f"{name}.quick.json")
            assert compare(baseline, artifact_payload(result, mode="quick")).ok, name

    def test_degradation_renders_in_the_report_table(self):
        run = SweepEngine().run(_grid(faults=("none", "churn:0.9,10.0"), seeds=(1, 2)))
        text = render_sweep_groups("degradation", run.groups)
        assert "faults" in text and "churn:0.9,10.0" in text
        plain = render_sweep_groups("plain", SweepEngine().run(_grid()).groups)
        assert "faults" not in plain
        assert "faults" not in SWEEP_HEADERS  # base headers stay fault-free


# ----------------------------------------------------------------------
# fabric transient-I/O hardening
# ----------------------------------------------------------------------
class TestTransientRetry:
    def test_retries_transient_oserror_with_backoff(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert retry_transient_io(flaky, "test op", sleep=sleeps.append) == "ok"
        assert len(attempts) == 3
        assert sleeps == [0.05, 0.1]  # capped exponential backoff

    def test_file_not_found_is_never_retried(self):
        attempts = []

        def fenced():
            attempts.append(1)
            raise FileNotFoundError("lease gone")

        with pytest.raises(FileNotFoundError):
            retry_transient_io(fenced, "test op", sleep=lambda _: None)
        assert len(attempts) == 1  # fencing signal surfaces immediately

    def test_exhausted_retries_reraise_the_original_error(self):
        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_transient_io(always_fails, "test op", sleep=lambda _: None)

    def test_shard_writer_survives_transient_write_failures(self, tmp_path, monkeypatch):
        writer = ShardWriter(tmp_path, "w1", "hash123")
        real_write = os.write
        failures = {"left": 2}

        def flaky_write(fd, data):
            if fd == writer._fd and failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("disk hiccup")
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", flaky_write)
        monkeypatch.setattr("repro.runner.fabric.time.sleep", lambda _: None)
        writer._write({"record": "probe", "value": 1})
        writer.close()
        monkeypatch.undo()
        lines = (tmp_path / "shards" / "w1.jsonl").read_text().splitlines()
        assert len(lines) == 2  # header + exactly one probe record, no torn lines
        assert json.loads(lines[1]) == {"record": "probe", "value": 1}

    def test_shard_writer_resumes_partial_writes_without_duplication(
        self, tmp_path, monkeypatch
    ):
        writer = ShardWriter(tmp_path, "w2", "hash123")
        real_write = os.write
        state = {"split": True}

        def partial_write(fd, data):
            if fd == writer._fd and state["split"] and len(data) > 4:
                state["split"] = False
                return real_write(fd, data[: len(data) // 2])  # short write
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", partial_write)
        writer._write({"record": "probe", "value": 2})
        writer.close()
        monkeypatch.undo()
        lines = (tmp_path / "shards" / "w2.jsonl").read_text().splitlines()
        assert json.loads(lines[1]) == {"record": "probe", "value": 2}
