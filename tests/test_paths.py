"""Unit tests for path machinery (Section 3 terminology, Definition 4)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidPathError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import complete_digraph, directed_cycle
from repro.graphs.paths import (
    append_node,
    concatenate,
    count_redundant_paths_to,
    enumerate_redundant_paths_to,
    enumerate_simple_paths_between,
    enumerate_simple_paths_to,
    find_f_cover,
    fully_nonfaulty,
    has_f_cover,
    init_node,
    is_cover,
    is_fully_contained,
    is_path_in_graph,
    is_redundant,
    is_simple,
    path_intersects,
    path_nodes,
    ter_node,
    validate_path,
)


class TestBasicOperations:
    def test_init_ter(self):
        assert init_node((1, 2, 3)) == 1
        assert ter_node((1, 2, 3)) == 3

    def test_init_ter_empty_raises(self):
        with pytest.raises(InvalidPathError):
            init_node(())
        with pytest.raises(InvalidPathError):
            ter_node(())

    def test_concatenate_shares_endpoint(self):
        assert concatenate((1, 2), (2, 3)) == (1, 2, 3)

    def test_concatenate_mismatch_raises(self):
        with pytest.raises(InvalidPathError):
            concatenate((1, 2), (3, 4))

    def test_concatenate_with_empty(self):
        assert concatenate((), (1, 2)) == (1, 2)
        assert concatenate((1, 2), ()) == (1, 2)

    def test_append_node(self):
        assert append_node((1, 2), 3) == (1, 2, 3)

    def test_path_nodes_and_intersects(self):
        assert path_nodes((1, 2, 1)) == frozenset({1, 2})
        assert path_intersects((1, 2, 3), {3, 9})
        assert not path_intersects((1, 2, 3), {9})

    def test_is_fully_contained(self):
        assert is_fully_contained((1, 2), {1, 2, 3})
        assert not is_fully_contained((1, 4), {1, 2, 3})

    def test_fully_nonfaulty(self):
        assert fully_nonfaulty((1, 2, 3), {4})
        assert not fully_nonfaulty((1, 2, 3), {2})


class TestSimpleAndRedundant:
    def test_is_simple(self):
        assert is_simple((1, 2, 3))
        assert not is_simple((1, 2, 1))

    def test_every_simple_path_is_redundant(self):
        assert is_redundant((1,))
        assert is_redundant((1, 2, 3))

    def test_redundant_with_one_revisit(self):
        # (1,2,1,3) = (1,2) || (2,1,3): wait, shared endpoint must match; use a
        # genuinely decomposable path instead: (1,2,3,1,4) = (1,2,3) || (3,1,4)? no.
        # (2,1,3,1) decomposes as (2,1,3) || (3,1): both simple.
        assert is_redundant((2, 1, 3, 1))

    def test_non_redundant_path(self):
        # (1,2,1,2) cannot be split into two simple halves.
        assert not is_redundant((1, 2, 1, 2))

    def test_empty_path_not_redundant(self):
        assert not is_redundant(())

    def test_redundant_matches_bruteforce_on_random_sequences(self):
        import random

        rng = random.Random(42)

        def brute(path):
            if not path:
                return False
            if is_simple(path):
                return True
            return any(
                is_simple(path[: i + 1]) and is_simple(path[i:]) for i in range(len(path))
            )

        for _ in range(500):
            path = tuple(rng.randint(0, 4) for _ in range(rng.randint(1, 8)))
            assert is_redundant(path) == brute(path)


class TestGraphPathValidation:
    def test_is_path_in_graph(self, diamond):
        assert is_path_in_graph(diamond, (0, 1, 3))
        assert not is_path_in_graph(diamond, (1, 0))
        assert not is_path_in_graph(diamond, (0, 99))
        assert is_path_in_graph(diamond, (2,))
        assert not is_path_in_graph(diamond, ())

    def test_validate_path(self, diamond):
        assert validate_path(diamond, [0, 2, 3]) == (0, 2, 3)
        with pytest.raises(InvalidPathError):
            validate_path(diamond, [3, 1])


class TestEnumeration:
    def test_simple_paths_to_in_cycle(self):
        cycle = directed_cycle(4)
        paths = enumerate_simple_paths_to(cycle, 0)
        # Trivial path plus the three suffixes of the unique incoming chain.
        assert (0,) in paths
        assert (3, 0) in paths and (1, 2, 3, 0) in paths
        assert len(paths) == 4

    def test_simple_paths_respect_sources_filter(self, diamond):
        paths = enumerate_simple_paths_to(diamond, 3, sources=[0])
        assert paths
        assert all(path[0] == 0 and path[-1] == 3 for path in paths)

    def test_simple_paths_between(self, diamond):
        paths = enumerate_simple_paths_between(diamond, 0, 3)
        assert sorted(paths) == [(0, 1, 3), (0, 2, 3)]

    def test_simple_paths_max_length(self):
        clique = complete_digraph(4)
        short = enumerate_simple_paths_to(clique, 0, max_length=2)
        assert all(len(path) <= 2 for path in short)
        assert len(short) == 4  # the trivial path plus three direct edges

    def test_simple_path_count_clique(self):
        clique = complete_digraph(4)
        paths = enumerate_simple_paths_to(clique, 0)
        # 1 trivial + 3 length-2 + 6 length-3 + 6 length-4 = 16.
        assert len(paths) == 16

    def test_redundant_paths_superset_of_simple(self, diamond):
        simple = set(enumerate_simple_paths_to(diamond, 3))
        redundant = set(enumerate_redundant_paths_to(diamond, 3))
        assert simple <= redundant
        assert all(is_redundant(path) for path in redundant)
        assert all(path[-1] == 3 for path in redundant)

    def test_redundant_paths_contain_revisiting_path(self):
        # 0→1→2→0→... in a 3-cycle: the path (1,2,0,1,2) ends at 2 and revisits.
        cycle = directed_cycle(3)
        redundant = set(enumerate_redundant_paths_to(cycle, 2))
        assert (1, 2, 0, 1, 2) in redundant

    def test_count_redundant_paths(self, diamond):
        assert count_redundant_paths_to(diamond, 3) == len(
            enumerate_redundant_paths_to(diamond, 3)
        )

    def test_enumeration_of_missing_target(self):
        graph = DiGraph(nodes=[1])
        assert enumerate_simple_paths_to(graph, 99) == []


class TestFCovers:
    def test_empty_path_set_has_empty_cover(self):
        assert find_f_cover([], 0) == frozenset()
        assert has_f_cover([], 2)

    def test_single_common_node_cover(self):
        paths = [(1, 2, 5), (3, 2, 5), (4, 2, 5)]
        cover = find_f_cover(paths, 1, forbidden={5})
        assert cover == frozenset({2})

    def test_forbidden_node_never_in_cover(self):
        paths = [(1, 5), (2, 5)]
        assert find_f_cover(paths, 1, forbidden={5}) is None
        assert find_f_cover(paths, 1) == frozenset({5})

    def test_f_zero_cannot_cover_nonempty(self):
        assert find_f_cover([(1, 2)], 0) is None

    def test_two_node_cover(self):
        paths = [(1, 9), (2, 9), (1, 8), (2, 8)]
        cover = find_f_cover(paths, 2, forbidden={8, 9})
        assert cover == frozenset({1, 2})
        assert find_f_cover(paths, 1, forbidden={8, 9}) is None

    def test_candidate_restriction(self):
        paths = [(1, 2), (1, 3)]
        assert find_f_cover(paths, 1, candidate_nodes={2, 3}) is None
        assert find_f_cover(paths, 1, candidate_nodes={1}) == frozenset({1})

    def test_is_cover(self):
        paths = [(1, 2), (2, 3)]
        assert is_cover(paths, {2})
        assert not is_cover(paths, {3})
        assert is_cover([], set())

    def test_has_f_cover_matches_find(self):
        paths = [(1, 2, 3), (4, 5, 3)]
        assert has_f_cover(paths, 2, forbidden={3}) == (
            find_f_cover(paths, 2, forbidden={3}) is not None
        )

    def test_negative_f_raises(self):
        with pytest.raises(ValueError):
            find_f_cover([(1,)], -1)
