"""Package-level tests: exceptions hierarchy, public API surface, quickstart path."""

from __future__ import annotations


import repro
from repro import exceptions
from repro.graphs import complete_digraph, figure_1a


class TestExceptionHierarchy:
    def test_all_exceptions_derive_from_repro_error(self):
        leaf_types = [
            exceptions.GraphError,
            exceptions.NodeNotFoundError,
            exceptions.EdgeNotFoundError,
            exceptions.InvalidPathError,
            exceptions.ConditionError,
            exceptions.InvalidFaultBoundError,
            exceptions.SimulationError,
            exceptions.SchedulerError,
            exceptions.ProtocolError,
            exceptions.InfeasibleTopologyError,
            exceptions.AdversaryError,
            exceptions.ExperimentError,
        ]
        for leaf in leaf_types:
            assert issubclass(leaf, exceptions.ReproError)

    def test_node_not_found_carries_node(self):
        error = exceptions.NodeNotFoundError("x")
        assert error.node == "x" and "x" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = exceptions.EdgeNotFoundError(1, 2)
        assert (error.source, error.target) == (1, 2)

    def test_invalid_fault_bound_message(self):
        assert "-3" in str(exceptions.InvalidFaultBoundError(-3))


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quick_consensus_with_byzantine_node(self):
        graph = complete_digraph(4)
        outcome = repro.quick_consensus(
            graph,
            {0: 0.0, 1: 0.25, 2: 0.75, 3: 1.0},
            f=1,
            epsilon=0.2,
            faulty_nodes={3},
            seed=5,
        )
        assert outcome.correct
        assert outcome.algorithm == "byzantine-witness"

    def test_quick_consensus_without_faults(self):
        graph = complete_digraph(4)
        outcome = repro.quick_consensus(
            graph, {0: 0.1, 1: 0.2, 2: 0.3, 3: 0.4}, f=1, epsilon=0.1, seed=1
        )
        assert outcome.correct and not outcome.faulty_nodes

    def test_quick_consensus_on_figure_1a_simple_policy(self):
        graph = figure_1a()
        inputs = {node: index / 4 for index, node in enumerate(sorted(graph.nodes))}
        outcome = repro.quick_consensus(
            graph, inputs, f=1, epsilon=0.3, faulty_nodes={"v5"}, path_policy="simple", seed=2
        )
        assert outcome.correct

    def test_condition_checkers_reexported(self):
        graph = complete_digraph(4)
        assert repro.check_three_reach(graph, 1).holds
        assert repro.check_k_reach(graph, 1, 2).holds
