"""Unit tests for the k-reach condition checkers (Definitions 3 and 20)."""

from __future__ import annotations

import pytest

from repro.conditions.reach_conditions import (
    check_k_reach,
    check_one_reach,
    check_three_reach,
    check_two_reach,
    count_subsets,
    iter_subsets,
    max_tolerable_f,
)
from repro.exceptions import InvalidFaultBoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    complete_digraph,
    directed_cycle,
    directed_path,
    figure_1a,
    star_out,
    two_cliques_bridged,
)


class TestSubsetHelpers:
    def test_iter_subsets_counts(self):
        subsets = list(iter_subsets([1, 2, 3], 2))
        assert len(subsets) == 1 + 3 + 3
        assert frozenset() in subsets and frozenset({1, 2}) in subsets

    def test_iter_subsets_bound_larger_than_population(self):
        assert len(list(iter_subsets([1, 2], 5))) == 4

    def test_iter_subsets_negative_raises(self):
        with pytest.raises(InvalidFaultBoundError):
            list(iter_subsets([1], -1))

    def test_count_subsets(self):
        assert count_subsets(5, 2) == 16
        assert count_subsets(3, 0) == 1
        assert count_subsets(3, 5) == 8


class TestOneReach:
    def test_clique_always_satisfies_one_reach(self):
        assert check_one_reach(complete_digraph(3), 1).holds
        assert check_one_reach(complete_digraph(5), 2).holds

    def test_cycle_satisfies_one_reach_for_one_fault(self):
        assert check_one_reach(directed_cycle(5), 1).holds

    def test_disconnected_graph_violates_one_reach(self):
        graph = DiGraph(nodes=[0, 1, 2])
        graph.add_edge(0, 1)
        report = check_one_reach(graph, 0)
        assert not report.holds
        assert report.reach_violation is not None
        violation = report.reach_violation
        assert not (violation.reach_u & violation.reach_v)

    def test_star_out_violated_when_hub_may_fail(self):
        # With the hub in F, the leaves cannot influence each other.
        report = check_one_reach(star_out(4), 1)
        assert not report.holds
        assert report.reach_violation.shared_fault_set == frozenset({0})

    def test_f_zero_equals_single_source_requirement(self):
        assert check_one_reach(directed_path(4), 0).holds
        two_sources = DiGraph(edges=[(0, 2), (1, 2)])
        assert not check_one_reach(two_sources, 0).holds


class TestTwoReach:
    def test_clique_threshold(self):
        assert check_two_reach(complete_digraph(3), 1).holds
        assert not check_two_reach(complete_digraph(2), 1).holds

    def test_cycle_fails_two_reach(self):
        report = check_two_reach(directed_cycle(5), 1)
        assert not report.holds
        # The violation consists of each node suspecting the other's only feed.
        violation = report.reach_violation
        assert violation.shared_fault_set == frozenset()
        assert len(violation.fault_set_u) <= 1 and len(violation.fault_set_v) <= 1

    def test_figure_1a_satisfies_two_reach(self):
        assert check_two_reach(figure_1a(), 1).holds

    def test_report_counts_checks(self):
        report = check_two_reach(complete_digraph(4), 1)
        assert report.holds
        assert report.checks_performed >= 0


class TestThreeReach:
    def test_clique_three_reach_threshold(self):
        assert check_three_reach(complete_digraph(4), 1).holds
        assert not check_three_reach(complete_digraph(3), 1).holds

    def test_figure_1a(self):
        assert check_three_reach(figure_1a(), 1).holds
        assert not check_three_reach(figure_1a(), 2).holds

    def test_violation_certificate_is_consistent(self):
        report = check_three_reach(complete_digraph(3), 1)
        violation = report.reach_violation
        assert violation is not None
        assert violation.u not in violation.excluded_for_u()
        assert violation.v not in violation.excluded_for_v()
        assert not (violation.reach_u & violation.reach_v)
        assert violation.u in violation.reach_u
        assert violation.v in violation.reach_v
        assert "reach" in violation.describe()

    def test_two_cliques_resilience_grows_with_bridges(self):
        weak = two_cliques_bridged(4, 1, 1)
        strong = two_cliques_bridged(4, 3, 3)
        assert not check_three_reach(weak, 1).holds
        assert check_three_reach(strong, 1).holds

    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidFaultBoundError):
            check_three_reach(DiGraph(), 1)

    def test_negative_f_rejected(self):
        with pytest.raises(InvalidFaultBoundError):
            check_three_reach(complete_digraph(3), -1)


class TestKReach:
    def test_k_reach_specialisations_match(self):
        graph = figure_1a()
        for k, specialised in ((1, check_one_reach), (2, check_two_reach), (3, check_three_reach)):
            assert check_k_reach(graph, 1, k).holds == specialised(graph, 1).holds

    def test_k_reach_on_cliques_matches_counting(self):
        # k-reach on the n-clique should hold exactly when n > k·f.
        for n in (4, 5, 6, 7):
            for f in (1, 2):
                if n <= f:
                    continue
                for k in (1, 2, 3, 4, 5):
                    expected = n > k * f
                    assert check_k_reach(complete_digraph(n), f, k).holds == expected, (n, f, k)

    def test_k_reach_condition_name(self):
        report = check_k_reach(complete_digraph(5), 1, 4)
        assert report.condition == "4-reach"

    def test_invalid_k(self):
        with pytest.raises(InvalidFaultBoundError):
            check_k_reach(complete_digraph(3), 1, 0)

    def test_monotone_in_k(self):
        # Larger k is a stronger requirement.
        graph = figure_1a()
        verdicts = [check_k_reach(graph, 1, k).holds for k in (1, 2, 3, 4)]
        for earlier, later in zip(verdicts, verdicts[1:]):
            assert earlier or not later


class TestMaxTolerableF:
    def test_clique_resilience(self):
        assert max_tolerable_f(complete_digraph(7), k=3) == 2
        assert max_tolerable_f(complete_digraph(7), k=2) == 3
        assert max_tolerable_f(complete_digraph(7), k=1) >= 6

    def test_figure_1a_resilience(self):
        assert max_tolerable_f(figure_1a(), k=3) == 1

    def test_cycle_has_no_byzantine_resilience(self):
        assert max_tolerable_f(directed_cycle(5), k=3) == 0

    def test_upper_bound_respected(self):
        assert max_tolerable_f(complete_digraph(9), k=1, upper_bound=3) == 3


class TestParallelSweep:
    """The opt-in ``parallel=N`` fan-out must agree with the serial sweep."""

    def test_parallel_three_reach_agrees_on_holding_graph(self, fig1a):
        serial = check_three_reach(fig1a, 1)
        parallel = check_three_reach(fig1a, 1, parallel=2)
        assert parallel.holds is serial.holds is True
        # All chunks complete when the condition holds → exact check count.
        assert parallel.checks_performed == serial.checks_performed

    def test_parallel_three_reach_finds_violation(self):
        graph = directed_cycle(6)
        serial = check_three_reach(graph, 1)
        parallel = check_three_reach(graph, 1, parallel=2)
        assert parallel.holds is serial.holds is False
        assert parallel.reach_violation is not None
        # Any reported certificate must be a genuine violation: the two
        # reach sets are disjoint.
        violation = parallel.reach_violation
        assert not (violation.reach_u & violation.reach_v)

    def test_parallel_one_and_k_reach_agree(self):
        graph = two_cliques_bridged(4, 2, 2)
        for k in (1, 3, 4):
            serial = check_k_reach(graph, 1, k)
            parallel = check_k_reach(graph, 1, k, parallel=3)
            assert serial.holds == parallel.holds, k

    def test_parallel_one_is_serial(self, fig1a):
        # parallel=1 (or None) must not spawn workers and equals the default.
        baseline = check_three_reach(fig1a, 1)
        assert check_three_reach(fig1a, 1, parallel=1).checks_performed == baseline.checks_performed
