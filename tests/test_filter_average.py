"""Unit tests for Filter-and-Average (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.algorithms.filter_average import FilterResult, filter_and_average
from repro.algorithms.messagesets import MessageSet
from repro.exceptions import ProtocolError


def build_set(entries):
    message_set = MessageSet()
    for value, path in entries:
        message_set.add(value, path)
    return message_set


class TestTrimming:
    def test_no_faults_no_trimming(self):
        # f = 0: nothing can be covered, nothing is trimmed.
        message_set = build_set([(0.0, ("a", "v")), (1.0, ("b", "v")), (0.5, ("v",))])
        result = filter_and_average(message_set, f=0, evaluating_node="v")
        assert result.trimmed_low == 0 and result.trimmed_high == 0
        assert result.new_value == pytest.approx(0.5)

    def test_extreme_value_from_single_suspect_is_trimmed(self):
        # The lowest value arrives only through paths containing node "x":
        # a single fault could have fabricated it, so it must be trimmed.
        message_set = build_set(
            [
                (-100.0, ("x", "v")),
                (-100.0, ("a", "x", "v")),
                (0.2, ("a", "v")),
                (0.4, ("b", "v")),
                (0.3, ("v",)),
            ]
        )
        result = filter_and_average(message_set, f=1, evaluating_node="v")
        assert result.trimmed_low == 2
        assert min(result.kept_values) == pytest.approx(0.2)
        assert result.new_value == pytest.approx((0.2 + 0.3) / 2)

    def test_both_tails_trimmed(self):
        message_set = build_set(
            [
                (-50.0, ("x", "v")),
                (50.0, ("y", "v")),
                (0.0, ("a", "v")),
                (1.0, ("b", "v")),
                (0.5, ("v",)),
            ]
        )
        result = filter_and_average(message_set, f=1, evaluating_node="v")
        assert result.trimmed_low == 1 and result.trimmed_high == 1
        assert result.new_value == pytest.approx(0.5)

    def test_own_value_never_trimmed(self):
        # Even when the node's own value is the most extreme one, the cover
        # cannot contain the node itself, so the value survives.
        message_set = build_set([(5.0, ("v",)), (0.0, ("a", "v")), (0.1, ("b", "v"))])
        result = filter_and_average(message_set, f=1, evaluating_node="v")
        assert 5.0 in result.kept_values

    def test_value_attributable_to_single_origin_is_trimmed(self):
        # Both copies of the low value originate at q, so the single fault
        # candidate {q} explains them and the value is (correctly) trimmed —
        # q itself may be the liar.
        message_set = build_set(
            [
                (-10.0, ("q", "a", "v")),
                (-10.0, ("q", "b", "v")),
                (0.0, ("v",)),
                (1.0, ("c", "v")),
            ]
        )
        result = filter_and_average(message_set, f=1, evaluating_node="v")
        assert result.trimmed_low == 2
        assert -10.0 not in result.kept_values

    def test_value_from_two_distinct_origins_survives(self):
        # The same low value reported by two different origins over disjoint
        # routes cannot be blamed on one fault, so it stays.
        message_set = build_set(
            [
                (-10.0, ("q", "a", "v")),
                (-10.0, ("r", "b", "v")),
                (0.0, ("v",)),
                (1.0, ("c", "v")),
            ]
        )
        result = filter_and_average(message_set, f=1, evaluating_node="v")
        assert result.trimmed_low == 1
        assert -10.0 in result.kept_values

    def test_f2_trims_pairs(self):
        message_set = build_set(
            [
                (-10.0, ("x", "v")),
                (-9.0, ("y", "v")),
                (0.0, ("v",)),
                (0.5, ("a", "v")),
                (9.0, ("z", "v")),
            ]
        )
        result = filter_and_average(message_set, f=2, evaluating_node="v")
        assert result.trimmed_low == 2
        assert result.trimmed_high == 2
        assert result.new_value == pytest.approx(0.0)

    def test_trim_counts_are_maximal_prefixes(self):
        # Prefix of length 2 is coverable by {x}, length 3 is not.
        message_set = build_set(
            [
                (-3.0, ("x", "v")),
                (-2.0, ("x", "a", "v")),
                (-1.0, ("b", "v")),
                (0.0, ("v",)),
            ]
        )
        result = filter_and_average(message_set, f=1, evaluating_node="v")
        assert result.trimmed_low == 2


class TestResultObject:
    def test_kept_entries_consistent_with_counts(self):
        message_set = build_set([(0.0, ("a", "v")), (1.0, ("v",)), (2.0, ("b", "v"))])
        result = filter_and_average(message_set, f=1, evaluating_node="v")
        assert isinstance(result, FilterResult)
        assert len(result.kept_entries) == len(result.sorted_entries) - result.trimmed_low - result.trimmed_high
        assert result.kept_values == [value for value, _ in result.kept_entries]

    def test_midpoint_of_kept_values(self):
        message_set = build_set([(0.0, ("v",)), (0.4, ("a", "v")), (1.0, ("b", "v"))])
        result = filter_and_average(message_set, f=0, evaluating_node="v")
        assert result.new_value == pytest.approx(0.5)


class TestErrors:
    def test_empty_message_set_rejected(self):
        with pytest.raises(ProtocolError):
            filter_and_average(MessageSet(), f=1, evaluating_node="v")

    def test_everything_coverable_without_own_value_raises(self):
        # Pathological direct invocation: every path goes through "x" and the
        # evaluating node's own value is absent — the trimmed vector is empty.
        message_set = build_set([(1.0, ("x", "v")), (2.0, ("x", "a", "v"))])
        with pytest.raises(ProtocolError):
            filter_and_average(message_set, f=1, evaluating_node="v")
