"""Turning honest processes into Byzantine ones.

The :class:`ByzantineProcess` wrapper runs the honest protocol internally but
routes every outgoing transmission through a
:class:`~repro.adversary.behaviors.ByzantineBehavior`, which may drop, alter
or duplicate it per destination.  A :class:`FaultPlan` bundles the faulty
node set with the behaviour assigned to each node and knows how to wrap a
collection of processes before they are handed to the simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Hashable, Iterable, Mapping, Optional

from repro.adversary.behaviors import ByzantineBehavior, CrashBehavior
from repro.exceptions import AdversaryError
from repro.network.node import Context, Process

NodeId = Hashable
BehaviorFactory = Callable[[NodeId], ByzantineBehavior]


class ByzantineProcess(Process):
    """An honest protocol instance whose outgoing traffic is adversarial.

    The wrapped process sees a context identical to the real one except that
    ``send`` passes through the behaviour, so the honest code runs unmodified
    (it genuinely "thinks" it is participating) while the network observes
    arbitrary misbehaviour.  This matches the strongest reading of the model:
    the adversary knows the protocol and may deviate from it arbitrarily.
    """

    def __init__(self, inner: Process, behavior: ByzantineBehavior, seed: Optional[int] = None) -> None:
        super().__init__(inner.node_id)
        self.inner = inner
        self.behavior = behavior
        self.rng = random.Random(seed)

    def bind(self, context: Context) -> None:
        super().bind(context)
        shadow = Context(
            node_id=context.node_id,
            out_neighbors=context.out_neighbors,
            in_neighbors=context.in_neighbors,
            send=self._adversarial_send,
            set_timer=context._set_timer,
            clock=context._clock,
        )
        self.inner.bind(shadow)

    def _adversarial_send(self, sender: NodeId, receiver: NodeId, payload: Any) -> None:
        for mutated in self.behavior.on_send(sender, receiver, payload, self.rng):
            self.require_context().send(receiver, mutated)
            self.messages_sent += 1

    def on_start(self) -> None:  # noqa: D102 - delegation documented in class docstring
        if self.behavior.processes_messages:
            self.inner.on_start()

    def on_message(self, sender: NodeId, payload: Any) -> None:  # noqa: D102
        if self.behavior.processes_messages:
            self.inner.on_message(sender, payload)

    def on_timer(self, tag: Any) -> None:  # noqa: D102
        if self.behavior.processes_messages:
            self.inner.on_timer(tag)

    def __repr__(self) -> str:
        return f"<ByzantineProcess node={self.node_id!r} behavior={self.behavior.describe()}>"


@dataclass
class FaultPlan:
    """Which nodes are faulty and how each of them misbehaves.

    Attributes
    ----------
    faulty_nodes:
        The set ``F`` of Byzantine nodes for this execution.
    behavior_factory:
        Callable mapping a faulty node id to its behaviour instance (a fresh
        behaviour per node, so stateful behaviours are not shared).
    seed:
        Base seed for the per-node adversarial RNGs.
    """

    faulty_nodes: FrozenSet[NodeId]
    behavior_factory: BehaviorFactory = field(default=lambda node: CrashBehavior())
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.faulty_nodes = frozenset(self.faulty_nodes)

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes in the plan."""
        return len(self.faulty_nodes)

    def is_faulty(self, node: NodeId) -> bool:
        """``True`` when ``node`` is Byzantine under this plan."""
        return node in self.faulty_nodes

    def nonfaulty(self, all_nodes: Iterable[NodeId]) -> FrozenSet[NodeId]:
        """The complement of the faulty set within ``all_nodes``."""
        return frozenset(all_nodes) - self.faulty_nodes

    def validate(self, all_nodes: Iterable[NodeId], f: int) -> None:
        """Check the plan respects the fault bound and the node universe."""
        universe = frozenset(all_nodes)
        if not self.faulty_nodes <= universe:
            unknown = self.faulty_nodes - universe
            raise AdversaryError(f"faulty nodes {sorted(map(repr, unknown))} are not in the graph")
        if self.num_faults > f:
            raise AdversaryError(
                f"fault plan has {self.num_faults} faulty nodes but the bound is f={f}"
            )

    def apply(self, processes: Mapping[NodeId, Process]) -> Dict[NodeId, Process]:
        """Wrap the processes of faulty nodes; honest processes pass through."""
        wrapped: Dict[NodeId, Process] = {}
        for index, (node, process) in enumerate(sorted(processes.items(), key=lambda kv: repr(kv[0]))):
            if node in self.faulty_nodes:
                behavior = self.behavior_factory(node)
                node_seed = None if self.seed is None else self.seed + index
                wrapped[node] = ByzantineProcess(process, behavior, seed=node_seed)
            else:
                wrapped[node] = process
        return wrapped

    def describe(self) -> str:
        """Short description used in experiment reports."""
        if not self.faulty_nodes:
            return "no faults"
        sample_behavior = self.behavior_factory(next(iter(self.faulty_nodes)))
        return (
            f"{self.num_faults} faulty {sorted(map(repr, self.faulty_nodes))} "
            f"behaving as {sample_behavior.describe()}"
        )


def no_faults() -> FaultPlan:
    """A plan with no faulty nodes (the fault-free control run)."""
    return FaultPlan(faulty_nodes=frozenset())
