"""Byzantine behaviours.

The paper's adversary controls up to ``f`` nodes which "may misbehave
arbitrarily" and may collaborate.  We model a faulty node as the honest
protocol wrapped by a :class:`ByzantineBehavior` that intercepts every
outgoing transmission and may drop, alter or multiply it — per destination,
which captures the classical equivocation attack (telling different stories
to different neighbours).  Crash faults (a strict subset of Byzantine faults,
as the necessity proof of Theorem 18 notes) are the behaviour that silently
drops everything.

Behaviours act on protocol payloads generically: any payload exposing a
``value`` attribute (all of this library's protocol messages do — see
:mod:`repro.algorithms.messages`) can have that value rewritten with
:func:`dataclasses.replace`; payloads without a value pass through the
"value" mutators untouched, so a single behaviour works against every
protocol in the library.
"""

from __future__ import annotations

import dataclasses
import random
from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.algorithms.messages import RoundValueMessage, ValueMessage

NodeId = Hashable


def _replace_value(payload: Any, new_value: float) -> Any:
    """Return a copy of ``payload`` with its ``value`` field replaced.

    Payloads that are not dataclasses or carry no ``value`` field are
    returned unchanged (the behaviour then degrades to honest forwarding for
    that message type, which is within the adversary's power anyway).  The
    flooded message types are special-cased: ``dataclasses.replace`` pays a
    per-call field introspection that the hot behaviours (every send of a
    faulty node) should not.
    """
    cls = payload.__class__
    if cls is ValueMessage:
        return ValueMessage(round=payload.round, value=new_value, path=payload.path)
    if cls is RoundValueMessage:
        return RoundValueMessage(round=payload.round, value=new_value, origin=payload.origin)
    if dataclasses.is_dataclass(payload) and hasattr(payload, "value"):
        current = getattr(payload, "value")
        if isinstance(current, (int, float)):
            return dataclasses.replace(payload, value=new_value)
    return payload


class ByzantineBehavior(ABC):
    """Strategy deciding what a faulty node actually puts on each link."""

    #: Whether the wrapped honest protocol keeps processing incoming messages.
    #: Crash-style behaviours set this to ``False`` to save work; the messages
    #: are still delivered by the network (links are reliable).
    processes_messages: bool = True

    @abstractmethod
    def on_send(
        self, sender: NodeId, receiver: NodeId, payload: Any, rng: random.Random
    ) -> List[Any]:
        """Payloads actually transmitted when the honest logic wants to send
        ``payload`` to ``receiver`` (empty list = drop)."""

    def describe(self) -> str:
        """Short name used in experiment reports."""
        return type(self).__name__


class HonestBehavior(ByzantineBehavior):
    """Forward everything unchanged — a faulty node behaving correctly.

    Useful as a control in experiments (the adversary is allowed to do this).
    """

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        return [payload]


class CrashBehavior(ByzantineBehavior):
    """Send nothing at all: the node has crashed from the very beginning.

    This is the fault used by executions ``e1``/``e2`` of Theorem 18.
    """

    processes_messages = False

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        return []


class CrashAfterBehavior(ByzantineBehavior):
    """Behave honestly for the first ``honest_sends`` transmissions, then crash.

    Models mid-execution failures, which stress the event-driven round
    structure more than a crash-from-start.
    """

    def __init__(self, honest_sends: int) -> None:
        if honest_sends < 0:
            raise ValueError("honest_sends must be non-negative")
        self.honest_sends = honest_sends
        self._sent = 0

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        if self._sent >= self.honest_sends:
            return []
        self._sent += 1
        return [payload]

    def describe(self) -> str:
        return f"crash-after-{self.honest_sends}"


class FixedValueBehavior(ByzantineBehavior):
    """Always report the same (typically extreme) value regardless of state.

    The classical attack against averaging protocols: try to drag every
    nonfaulty node's state towards ``value`` and violate validity.
    """

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        return [_replace_value(payload, self.value)]

    def describe(self) -> str:
        return f"fixed-value({self.value})"


class RandomValueBehavior(ByzantineBehavior):
    """Report independent uniform random values in ``[low, high]`` per message."""

    def __init__(self, low: float = -100.0, high: float = 100.0) -> None:
        if high < low:
            raise ValueError("high must be >= low")
        self.low = low
        self.high = high

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        return [_replace_value(payload, rng.uniform(self.low, self.high))]

    def describe(self) -> str:
        return f"random-value[{self.low}, {self.high}]"


class EquivocateBehavior(ByzantineBehavior):
    """Split-brain: report a different value to different receivers.

    ``values_by_receiver`` pins specific lies per destination; receivers not
    listed get the honest payload shifted by ``default_offset``.  This is the
    attack that makes reliable-broadcast-style machinery (the paper's
    Maximal-Consistency condition) necessary.
    """

    def __init__(
        self,
        values_by_receiver: Optional[Dict[NodeId, float]] = None,
        default_offset: float = 0.0,
    ) -> None:
        self.values_by_receiver = dict(values_by_receiver or {})
        self.default_offset = default_offset

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        if receiver in self.values_by_receiver:
            return [_replace_value(payload, self.values_by_receiver[receiver])]
        if self.default_offset and hasattr(payload, "value"):
            current = getattr(payload, "value")
            if isinstance(current, (int, float)):
                return [_replace_value(payload, current + self.default_offset)]
        return [payload]

    def describe(self) -> str:
        return f"equivocate({len(self.values_by_receiver)} pinned, offset={self.default_offset})"


class OffsetValueBehavior(ByzantineBehavior):
    """Add a constant bias to every reported value (a subtle, hard-to-spot lie)."""

    def __init__(self, offset: float) -> None:
        self.offset = float(offset)

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        if hasattr(payload, "value") and isinstance(getattr(payload, "value"), (int, float)):
            return [_replace_value(payload, getattr(payload, "value") + self.offset)]
        return [payload]

    def describe(self) -> str:
        return f"offset({self.offset:+})"


class SelectiveSilenceBehavior(ByzantineBehavior):
    """Honest towards some receivers, silent towards the rest.

    Models asymmetric partitions created by a faulty relay — particularly
    nasty in directed graphs where the victims may have no other incoming
    route.
    """

    def __init__(self, silent_towards: Sequence[NodeId]) -> None:
        self.silent_towards = frozenset(silent_towards)

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        if receiver in self.silent_towards:
            return []
        return [payload]

    def describe(self) -> str:
        return f"selective-silence({len(self.silent_towards)} victims)"


class CompleteTamperBehavior(ByzantineBehavior):
    """Tamper with the Byzantine-Witness ``COMPLETE`` announcements.

    Besides lying about its own state value (like :class:`FixedValueBehavior`),
    the node rewrites every value map it announces or relays inside a
    ``CompleteMessage``-like payload (any dataclass with a ``values`` field of
    ``(node, value)`` pairs), replacing the reported values with ``value``.
    This attacks the witness machinery itself rather than the flooded values:
    the Completeness condition (Algorithm 2) is what stops honest nodes from
    acting on such announcements, because the fabricated values are never
    confirmed through uncoverable path sets.
    """

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        mutated = _replace_value(payload, self.value)
        if dataclasses.is_dataclass(mutated) and hasattr(mutated, "values"):
            reported = getattr(mutated, "values")
            if isinstance(reported, tuple):
                forged = tuple((node, self.value) for node, _ in reported)
                mutated = dataclasses.replace(mutated, values=forged)
        return [mutated]

    def describe(self) -> str:
        return f"tamper-complete({self.value})"


class ReplayBehavior(ByzantineBehavior):
    """Duplicate every message ``copies`` times (a spam/flooding nuisance)."""

    def __init__(self, copies: int = 2) -> None:
        if copies < 1:
            raise ValueError("copies must be at least 1")
        self.copies = copies

    def on_send(self, sender, receiver, payload, rng) -> List[Any]:
        return [payload] * self.copies

    def describe(self) -> str:
        return f"replay(x{self.copies})"


#: Behaviours exercised by the convergence benchmark's behaviour sweep.
STANDARD_BEHAVIOR_FACTORIES = {
    "crash": lambda: CrashBehavior(),
    "fixed-high": lambda: FixedValueBehavior(1e6),
    "fixed-low": lambda: FixedValueBehavior(-1e6),
    "random": lambda: RandomValueBehavior(-1e3, 1e3),
    "equivocate": lambda: EquivocateBehavior(default_offset=50.0),
    "offset": lambda: OffsetValueBehavior(25.0),
    "tamper-complete": lambda: CompleteTamperBehavior(-500.0),
}


# ----------------------------------------------------------------------
# registry: behaviours addressable by name (optionally parametrized) from
# grid axes and scenario files, e.g. behavior="offset:2.5"
# ----------------------------------------------------------------------
def _sync_constant(value: float):
    """Synchronous-model equivalent of a fixed-value lie."""

    def report(node, round_index, receiver, honest_value) -> float:
        return value

    return report


def _sync_offset(offset: float):
    """Synchronous-model equivalent of a constant additive bias."""

    def report(node, round_index, receiver, honest_value) -> float:
        return honest_value + offset

    return report


def _register_behaviors() -> None:
    from repro.registry import BEHAVIORS

    def entry(name, factory, summary, params=(), min_params=0, sync=None):
        metadata = {"params": tuple(params), "min_params": min_params}
        if sync is not None:
            metadata["sync"] = sync
        BEHAVIORS.register(name, factory, summary=summary, metadata=metadata)

    entry(
        "honest",
        lambda: HonestBehavior(),
        "forward everything unchanged (control)",
        sync=lambda: None,  # None = the faulty nodes report honestly
    )
    entry("crash", lambda: CrashBehavior(), "send nothing at all (crash from the start)")
    entry(
        "crash-after",
        lambda honest_sends: CrashAfterBehavior(int(honest_sends)),
        "behave honestly for N transmissions, then crash",
        params=("honest_sends",),
        min_params=1,
    )
    entry(
        "fixed-high",
        lambda value=1e6: FixedValueBehavior(value),
        "always report an extreme high value",
        params=("value",),
        sync=lambda value=1e6: _sync_constant(value),
    )
    entry(
        "fixed-low",
        lambda value=-1e6: FixedValueBehavior(value),
        "always report an extreme low value",
        params=("value",),
        sync=lambda value=-1e6: _sync_constant(value),
    )
    entry(
        "fixed",
        lambda value: FixedValueBehavior(value),
        "always report the given value",
        params=("value",),
        min_params=1,
        sync=lambda value: _sync_constant(value),
    )
    entry(
        "random",
        lambda low=-1e3, high=1e3: RandomValueBehavior(low, high),
        "report uniform random values in [low, high]",
        params=("low", "high"),
    )
    entry(
        "equivocate",
        lambda offset=50.0: EquivocateBehavior(default_offset=offset),
        "tell different stories to different receivers",
        params=("offset",),
    )
    entry(
        "offset",
        lambda offset=25.0: OffsetValueBehavior(offset),
        "add a constant bias to every reported value",
        params=("offset",),
        sync=lambda offset=25.0: _sync_offset(offset),
    )
    entry(
        "tamper-complete",
        lambda value=-500.0: CompleteTamperBehavior(value),
        "forge the BW COMPLETE announcements' value maps",
        params=("value",),
    )
    entry(
        "replay",
        lambda copies=2: ReplayBehavior(int(copies)),
        "duplicate every message N times",
        params=("copies",),
    )


_register_behaviors()
