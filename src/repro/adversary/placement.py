"""Fault-placement strategies.

Which nodes the adversary corrupts matters enormously in directed graphs:
corrupting the only bridge nodes between two regions is far more damaging
than corrupting leaves.  The experiment harness sweeps over the strategies
defined here; all of them respect the fault bound ``f``.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Hashable, Iterable, List, Optional

from repro.exceptions import AdversaryError
from repro.graphs.digraph import DiGraph

NodeId = Hashable


def place_none(graph: DiGraph, f: int) -> FrozenSet[NodeId]:
    """No faults (control runs)."""
    return frozenset()


def place_explicit(nodes: Iterable[NodeId]) -> FrozenSet[NodeId]:
    """Use exactly the given nodes as the faulty set."""
    return frozenset(nodes)


def place_random(graph: DiGraph, f: int, seed: Optional[int] = None) -> FrozenSet[NodeId]:
    """Choose ``f`` faulty nodes uniformly at random."""
    if f < 0:
        raise AdversaryError("f must be non-negative")
    nodes = sorted(graph.nodes, key=repr)
    if f > len(nodes):
        raise AdversaryError(f"cannot corrupt {f} nodes of a {len(nodes)}-node graph")
    rng = random.Random(seed)
    return frozenset(rng.sample(nodes, f))


def place_max_out_degree(graph: DiGraph, f: int) -> FrozenSet[NodeId]:
    """Corrupt the ``f`` most influential nodes (largest out-degree).

    In directed graphs these are the nodes whose lies propagate the widest,
    typically the hardest placement for averaging protocols.
    """
    if f < 0:
        raise AdversaryError("f must be non-negative")
    ranked = sorted(graph.nodes, key=lambda node: (-graph.out_degree(node), repr(node)))
    return frozenset(ranked[:f])


def place_max_in_degree(graph: DiGraph, f: int) -> FrozenSet[NodeId]:
    """Corrupt the ``f`` best-informed nodes (largest in-degree)."""
    if f < 0:
        raise AdversaryError("f must be non-negative")
    ranked = sorted(graph.nodes, key=lambda node: (-graph.in_degree(node), repr(node)))
    return frozenset(ranked[:f])


def place_bridge_nodes(graph: DiGraph, f: int) -> FrozenSet[NodeId]:
    """Corrupt nodes whose removal disconnects the most reachability.

    A greedy heuristic: repeatedly remove the node whose deletion maximally
    reduces the number of ordered reachable pairs.  Expensive (O(f·n·(n+m)))
    but only used on the small graphs of the experiments; it approximates the
    "cut the bridges" adversary that directed topologies are vulnerable to.
    """
    if f < 0:
        raise AdversaryError("f must be non-negative")
    chosen: List[NodeId] = []
    working = graph.copy()

    def reachable_pairs(g: DiGraph) -> int:
        return sum(len(g.descendants(node)) for node in g.nodes)

    for _ in range(min(f, graph.num_nodes)):
        baseline = reachable_pairs(working)
        best_node = None
        best_score = None
        for node in sorted(working.nodes, key=repr):
            trimmed = working.copy()
            trimmed.remove_node(node)
            score = baseline - reachable_pairs(trimmed)
            if best_score is None or score > best_score:
                best_score = score
                best_node = node
        assert best_node is not None
        chosen.append(best_node)
        working.remove_node(best_node)
    return frozenset(chosen)


def place_last(graph: DiGraph, f: int) -> FrozenSet[NodeId]:
    """Corrupt the ``f`` last nodes in label order (deterministic, seed-free).

    Integer labels sort numerically (repr order would put 10 before 2);
    everything else falls back to repr order, mixed universes last.
    """
    if f < 0:
        raise AdversaryError("f must be non-negative")

    def order(node: NodeId):
        if isinstance(node, bool) or not isinstance(node, int):
            return (1, 0, repr(node))
        return (0, node, "")

    return frozenset(sorted(graph.nodes, key=order)[-f:]) if f else frozenset()


def all_fault_sets(graph: DiGraph, f: int, max_sets: Optional[int] = None) -> List[FrozenSet[NodeId]]:
    """Every faulty set of size exactly ``f`` (optionally truncated).

    Used by exhaustive small-graph experiments that sweep the adversary's
    placement entirely.
    """
    from itertools import combinations

    nodes = sorted(graph.nodes, key=repr)
    sets = [frozenset(combo) for combo in combinations(nodes, f)]
    if max_sets is not None:
        sets = sets[:max_sets]
    return sets


#: Every named strategy under one signature ``(graph, f, seed) -> frozenset``.
#: This is the single source the PLACEMENTS registry is populated from (and
#: the historical public mapping).
PLACEMENT_STRATEGIES = {
    "none": lambda graph, f, seed=None: frozenset(),
    "random": place_random,
    "max-out-degree": lambda graph, f, seed=None: place_max_out_degree(graph, f),
    "max-in-degree": lambda graph, f, seed=None: place_max_in_degree(graph, f),
    "bridges": lambda graph, f, seed=None: place_bridge_nodes(graph, f),
    "last": lambda graph, f, seed=None: place_last(graph, f),
}

_PLACEMENT_SUMMARIES = {
    "none": "no faults (control runs)",
    "random": "f faulty nodes chosen uniformly",
    "max-out-degree": "corrupt the f most influential nodes (largest out-degree)",
    "max-in-degree": "corrupt the f best-informed nodes (largest in-degree)",
    "bridges": "greedily corrupt the nodes whose removal cuts the most reachability",
    "last": "corrupt the f last nodes in label order (deterministic)",
}


# ----------------------------------------------------------------------
# registry: strategies addressable by name from grid axes / scenario files
# ----------------------------------------------------------------------
def _register_placements() -> None:
    from repro.registry import PLACEMENTS

    for name, strategy in PLACEMENT_STRATEGIES.items():
        PLACEMENTS.register(name, strategy, summary=_PLACEMENT_SUMMARIES[name])


_register_placements()
