"""Byzantine adversary: behaviours, wrapping, and fault placement."""

from repro.adversary.adversary import ByzantineProcess, FaultPlan, no_faults
from repro.adversary.behaviors import (
    STANDARD_BEHAVIOR_FACTORIES,
    ByzantineBehavior,
    CompleteTamperBehavior,
    CrashAfterBehavior,
    CrashBehavior,
    EquivocateBehavior,
    FixedValueBehavior,
    HonestBehavior,
    OffsetValueBehavior,
    RandomValueBehavior,
    ReplayBehavior,
    SelectiveSilenceBehavior,
)
from repro.adversary.placement import (
    PLACEMENT_STRATEGIES,
    all_fault_sets,
    place_bridge_nodes,
    place_explicit,
    place_max_in_degree,
    place_max_out_degree,
    place_none,
    place_random,
)

__all__ = [
    "ByzantineProcess",
    "FaultPlan",
    "no_faults",
    "STANDARD_BEHAVIOR_FACTORIES",
    "ByzantineBehavior",
    "CompleteTamperBehavior",
    "CrashAfterBehavior",
    "CrashBehavior",
    "EquivocateBehavior",
    "FixedValueBehavior",
    "HonestBehavior",
    "OffsetValueBehavior",
    "RandomValueBehavior",
    "ReplayBehavior",
    "SelectiveSilenceBehavior",
    "PLACEMENT_STRATEGIES",
    "all_fault_sets",
    "place_bridge_nodes",
    "place_explicit",
    "place_max_in_degree",
    "place_max_out_degree",
    "place_none",
    "place_random",
]
