"""Convergence analysis: measured ranges versus the paper's bounds.

Lemma 15 gives ``U[r+1] - µ[r+1] ≤ (U[r] - µ[r]) / 2``, hence by repetition
``U[r] - µ[r] ≤ K / 2^r`` and the termination rule of Section 4.6 (run the
first round ``r > log2(K/ε)``).  The helpers here compare a measured
per-round range trajectory against those bounds; the convergence benchmark
(experiment C1) prints the comparison table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class ConvergenceRow:
    """One round of the measured-vs-theoretical comparison."""

    round_index: int
    measured_range: float
    theoretical_bound: float

    @property
    def within_bound(self) -> bool:
        """``True`` when the measured range respects ``K / 2^r``."""
        return self.measured_range <= self.theoretical_bound + 1e-9


def theoretical_bound(initial_range: float, round_index: int) -> float:
    """``K / 2^r`` — the repeated-Lemma-15 bound."""
    return initial_range / (2 ** round_index)


def required_rounds(initial_range: float, epsilon: float) -> int:
    """The paper's termination round count ``⌊log2(K/ε)⌋ + 1`` (0 when trivial)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if initial_range <= epsilon:
        return 0
    return int(math.floor(math.log2(initial_range / epsilon))) + 1


def convergence_table(
    measured_ranges: Sequence[float], initial_range: Optional[float] = None
) -> List[ConvergenceRow]:
    """Pair every measured per-round range with its theoretical bound.

    ``initial_range`` defaults to the measured round-0 range (which is the
    honest input spread ``U[0] - µ[0]``).
    """
    if not measured_ranges:
        return []
    base = measured_ranges[0] if initial_range is None else initial_range
    return [
        ConvergenceRow(
            round_index=index,
            measured_range=value,
            theoretical_bound=theoretical_bound(base, index),
        )
        for index, value in enumerate(measured_ranges)
    ]


def all_within_bound(measured_ranges: Sequence[float], initial_range: Optional[float] = None) -> bool:
    """``True`` when every measured round respects the ``K / 2^r`` bound."""
    return all(row.within_bound for row in convergence_table(measured_ranges, initial_range))


def contraction_factors(measured_ranges: Sequence[float]) -> List[float]:
    """Per-round contraction ``range[r+1] / range[r]`` (skipping zero ranges).

    Lemma 15 promises factors ≤ 1/2; measured factors are usually far smaller
    because the midpoint update is pessimistically analysed in the proof.
    """
    factors: List[float] = []
    for previous, current in zip(measured_ranges, measured_ranges[1:]):
        if previous > 0:
            factors.append(current / previous)
    return factors
