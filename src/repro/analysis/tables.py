"""Regeneration of the paper's Table 1 and Table 2 as plain text.

The paper's two tables are statements of *which condition is tight in which
cell*.  The reproduction regenerates them empirically: it evaluates every
cell's condition on concrete graph families and prints

* Table 1 — classical counting conditions (``n``, ``κ(G)``) versus the reach
  conditions on undirected (bidirected) graphs, per family member;
* Table 2 — the reach-condition verdicts per cell on directed families,
  together with the Theorem 17 partition-condition cross-check (the paper's
  contribution is the bottom-right cell: Byzantine / asynchronous = 3-reach).

The benchmark scripts call these functions and print their output; the
functions are also directly usable from the examples.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.feasibility import (
    UndirectedComparison,
    compare_undirected,
    directed_feasibility_row,
    equivalences_hold,
)
from repro.conditions.certificates import FeasibilityRow
from repro.graphs.digraph import DiGraph
from repro.runner.reporting import format_check, format_table


TABLE1_HEADERS = (
    "graph", "n", "kappa", "f",
    "crash/sync n>f,k>f", "crash/async n>2f,k>f", "byz n>3f,k>2f",
    "1-reach", "2-reach", "3-reach", "agrees",
)

TABLE2_HEADERS = (
    "graph", "n", "f",
    "crash/sync (1-reach)", "crash/async (2-reach)",
    "byz/sync (3-reach)", "byz/async (3-reach, this paper)",
    "CCS", "CCA", "BCS", "Thm17 agrees",
)


def table1_rows(graphs: Iterable[DiGraph], fault_bounds: Sequence[int]) -> List[UndirectedComparison]:
    """Evaluate Table 1 on a family of bidirected graphs."""
    rows: List[UndirectedComparison] = []
    for graph in graphs:
        for f in fault_bounds:
            rows.append(compare_undirected(graph, f))
    return rows


def render_table1(rows: Iterable[UndirectedComparison]) -> str:
    """Render Table 1 rows as an aligned text table."""
    body = []
    for row in rows:
        body.append(
            [
                row.graph_name,
                row.n,
                row.kappa,
                row.f,
                format_check(row.classical_crash_sync),
                format_check(row.classical_crash_async),
                format_check(row.classical_byz),
                format_check(row.reach_1),
                format_check(row.reach_2),
                format_check(row.reach_3),
                format_check(row.consistent),
            ]
        )
    return format_table(TABLE1_HEADERS, body)


def table2_rows(graphs: Iterable[DiGraph], fault_bounds: Sequence[int]) -> List[FeasibilityRow]:
    """Evaluate Table 2 on a family of directed graphs."""
    rows: List[FeasibilityRow] = []
    for graph in graphs:
        for f in fault_bounds:
            rows.append(directed_feasibility_row(graph, f))
    return rows


def render_table2(rows: Iterable[FeasibilityRow]) -> str:
    """Render Table 2 rows as an aligned text table."""
    body = []
    for row in rows:
        body.append(
            [
                row.graph_name,
                row.n,
                row.f,
                format_check(bool(row.verdict("crash/sync"))),
                format_check(bool(row.verdict("crash/async"))),
                format_check(bool(row.verdict("byz/sync"))),
                format_check(bool(row.verdict("byz/async"))),
                format_check(bool(row.verdict("CCS"))),
                format_check(bool(row.verdict("CCA"))),
                format_check(bool(row.verdict("BCS"))),
                format_check(equivalences_hold(row)),
            ]
        )
    return format_table(TABLE2_HEADERS, body)
