"""Feasibility maps over graph families (the data behind Tables 1 and 2).

For every graph in a family and every fault bound of interest, evaluate the
conditions of the paper's two tables and return
:class:`~repro.conditions.certificates.FeasibilityRow` records.  The Table 1
reproduction additionally cross-checks the directed reach conditions against
the classical ``n`` / ``κ(G)`` counting conditions on undirected
(bidirected) graphs; the Table 2 reproduction cross-checks the reach
conditions against the partition conditions (Theorem 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.conditions.certificates import FeasibilityRow
from repro.conditions.partition_conditions import check_bcs, check_cca, check_ccs
from repro.conditions.reach_conditions import check_one_reach, check_three_reach, check_two_reach
from repro.graphs.digraph import DiGraph
from repro.graphs.properties import undirected_feasibility


@dataclass(frozen=True)
class UndirectedComparison:
    """Table 1 row: classical counting conditions vs reach conditions.

    On undirected (bidirected) graphs the directed reach conditions specialise
    to the classical conditions of Table 1; ``consistent`` records whether the
    two verdicts agree for every cell.
    """

    graph_name: str
    n: int
    kappa: int
    f: int
    classical_crash_sync: bool
    classical_crash_async: bool
    classical_byz: bool
    reach_1: bool
    reach_2: bool
    reach_3: bool

    @property
    def consistent(self) -> bool:
        """Whether reach-condition verdicts match the classical table cells."""
        return (
            self.classical_crash_sync == self.reach_1
            and self.classical_crash_async == self.reach_2
            and self.classical_byz == self.reach_3
        )


def compare_undirected(graph: DiGraph, f: int) -> UndirectedComparison:
    """Evaluate one Table 1 row for a bidirected graph."""
    classical = undirected_feasibility(graph, f)
    return UndirectedComparison(
        graph_name=graph.name or "<unnamed>",
        n=graph.num_nodes,
        kappa=classical.kappa,
        f=f,
        classical_crash_sync=classical.crash_synchronous,
        classical_crash_async=classical.crash_asynchronous,
        classical_byz=classical.byzantine_synchronous,
        reach_1=check_one_reach(graph, f).holds,
        reach_2=check_two_reach(graph, f).holds,
        reach_3=check_three_reach(graph, f).holds,
    )


def undirected_family_comparison(
    graphs: Iterable[DiGraph], fault_bounds: Sequence[int]
) -> List[UndirectedComparison]:
    """Table 1 rows for a whole family of bidirected graphs."""
    rows: List[UndirectedComparison] = []
    for graph in graphs:
        for f in fault_bounds:
            rows.append(compare_undirected(graph, f))
    return rows


#: The four cells of Table 2 with the condition that is tight for each.
TABLE2_CELLS: Tuple[Tuple[str, str], ...] = (
    ("crash / synchronous (exact)", "1-reach"),
    ("crash / asynchronous (approximate)", "2-reach"),
    ("Byzantine / synchronous (exact)", "3-reach"),
    ("Byzantine / asynchronous (approximate)", "3-reach"),
)


def directed_feasibility_row(graph: DiGraph, f: int) -> FeasibilityRow:
    """Evaluate every Table 2 cell (and the partition equivalents) on one digraph."""
    one = check_one_reach(graph, f).holds
    two = check_two_reach(graph, f).holds
    three = check_three_reach(graph, f).holds
    ccs = check_ccs(graph, f).holds
    cca = check_cca(graph, f).holds
    bcs = check_bcs(graph, f).holds
    return FeasibilityRow(
        graph_name=graph.name or "<unnamed>",
        n=graph.num_nodes,
        f=f,
        verdicts=(
            ("1-reach", one),
            ("2-reach", two),
            ("3-reach", three),
            ("CCS", ccs),
            ("CCA", cca),
            ("BCS", bcs),
            ("crash/sync", one),
            ("crash/async", two),
            ("byz/sync", three),
            ("byz/async", three),
        ),
    )


def directed_family_feasibility(
    graphs: Iterable[DiGraph], fault_bounds: Sequence[int]
) -> List[FeasibilityRow]:
    """Table 2 rows for a family of digraphs."""
    rows: List[FeasibilityRow] = []
    for graph in graphs:
        for f in fault_bounds:
            rows.append(directed_feasibility_row(graph, f))
    return rows


def equivalences_hold(row: FeasibilityRow) -> bool:
    """Theorem 17 check on a single feasibility row."""
    return (
        row.verdict("1-reach") == row.verdict("CCS")
        and row.verdict("2-reach") == row.verdict("CCA")
        and row.verdict("3-reach") == row.verdict("BCS")
    )
