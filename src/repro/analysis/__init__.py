"""Analysis layer: convergence bounds, feasibility maps, table regeneration,
and the executable Theorem 18 necessity construction."""

from repro.analysis.convergence import (
    ConvergenceRow,
    all_within_bound,
    contraction_factors,
    convergence_table,
    required_rounds,
    theoretical_bound,
)
from repro.analysis.feasibility import (
    TABLE2_CELLS,
    UndirectedComparison,
    compare_undirected,
    directed_family_feasibility,
    directed_feasibility_row,
    equivalences_hold,
    undirected_family_comparison,
)
from repro.analysis.necessity import (
    DisagreementResult,
    ExecutionDescription,
    IndistinguishabilitySchedule,
    build_schedule,
    demonstrate_disagreement,
    find_violation,
)
from repro.analysis.tables import (
    TABLE1_HEADERS,
    TABLE2_HEADERS,
    render_table1,
    render_table2,
    table1_rows,
    table2_rows,
)

__all__ = [
    "ConvergenceRow",
    "all_within_bound",
    "contraction_factors",
    "convergence_table",
    "required_rounds",
    "theoretical_bound",
    "TABLE2_CELLS",
    "UndirectedComparison",
    "compare_undirected",
    "directed_family_feasibility",
    "directed_feasibility_row",
    "equivalences_hold",
    "undirected_family_comparison",
    "DisagreementResult",
    "ExecutionDescription",
    "IndistinguishabilitySchedule",
    "build_schedule",
    "demonstrate_disagreement",
    "find_violation",
    "TABLE1_HEADERS",
    "TABLE2_HEADERS",
    "render_table1",
    "render_table2",
    "table1_rows",
    "table2_rows",
]
