"""Executable version of Theorem 18 — necessity of the 3-reach condition.

The paper's necessity proof is an indistinguishability argument: when
3-reach fails there are nodes ``u, v`` and sets ``F, F_u, F_v`` whose reach
sets are disjoint, and the adversary can build three executions

* **e1** — every input 0, the nodes of ``F_v`` crashed from the start;
* **e2** — every input ε, the nodes of ``F_u`` crashed from the start;
* **e3** — inputs 0 on ``reach_v(F∪F_v)`` and ε on ``reach_u(F∪F_u)``, the
  nodes of ``F`` Byzantine (behaving towards each side as in the respective
  fault-free execution), and the messages crossing
  ``E(F_v, reach_v(F∪F_v)) ∪ E(F_u, reach_u(F∪F_u))`` delayed past both
  decision points —

so that ``e3`` looks exactly like ``e1`` to ``v`` and exactly like ``e2`` to
``u``, forcing outputs 0 and ε respectively and violating convergence.

This module makes the construction concrete:

* :func:`find_violation` extracts the witnessing certificate;
* :func:`build_schedule` turns it into the three execution descriptions
  (fault sets, inputs, delayed edges) and validates the structural facts the
  proof relies on (disjoint reach sets, disjoint edge sets out of ``F``);
* :func:`demonstrate_disagreement` runs a concrete terminating algorithm
  (the iterative trimmed-mean baseline) under the ``e3`` adversary and
  reports the resulting honest disagreement — an empirical witness that
  consensus genuinely fails on such graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.conditions.certificates import ReachViolation
from repro.conditions.reach_conditions import check_three_reach
from repro.exceptions import ConditionError
from repro.graphs.bitset import BitsetIndex, iter_bits
from repro.graphs.digraph import DiGraph

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class ExecutionDescription:
    """One of the three executions of the Theorem 18 construction."""

    name: str
    inputs: Dict[NodeId, float]
    crashed: FrozenSet[NodeId]
    byzantine: FrozenSet[NodeId]
    delayed_edges: FrozenSet[Edge]
    expected_output_side: str = ""


@dataclass(frozen=True)
class IndistinguishabilitySchedule:
    """The full Theorem 18 construction extracted from a 3-reach violation."""

    violation: ReachViolation
    epsilon: float
    e1: ExecutionDescription
    e2: ExecutionDescription
    e3: ExecutionDescription

    @property
    def structural_facts_hold(self) -> bool:
        """The two disjointness facts the proof needs (Eq. 8 and the edge sets)."""
        reaches_disjoint = not (self.violation.reach_u & self.violation.reach_v)
        edges_u = {edge for edge in self.e3.delayed_edges if edge[1] in self.violation.reach_u}
        edges_v = {edge for edge in self.e3.delayed_edges if edge[1] in self.violation.reach_v}
        return reaches_disjoint and not (edges_u & edges_v)


def find_violation(graph: DiGraph, f: int) -> Optional[ReachViolation]:
    """The 3-reach violation certificate, or ``None`` when the condition holds."""
    report = check_three_reach(graph, f)
    return None if report.holds else report.reach_violation


def _edges_between(graph: DiGraph, sources, targets) -> Set[Edge]:
    """All ``(u, v)`` edges with ``u ∈ sources`` and ``v ∈ targets``.

    Runs on the shared bitmask engine: one successor-mask intersection per
    source node instead of a full edge-list scan (the Theorem 18 construction
    extracts these sets once per certificate)."""
    index = BitsetIndex.for_graph(graph)
    target_mask = index.mask_of(targets, ignore_missing=True)
    nodes = index.nodes
    edges: Set[Edge] = set()
    for u in sources:
        bit = index.index.get(u)
        if bit is None:
            continue
        for v_bit in iter_bits(index.succ_masks[bit] & target_mask):
            edges.add((u, nodes[v_bit]))
    return edges


def build_schedule(
    graph: DiGraph, violation: ReachViolation, epsilon: float = 1.0
) -> IndistinguishabilitySchedule:
    """Materialize the e1 / e2 / e3 executions of Theorem 18."""
    if epsilon <= 0:
        raise ConditionError("epsilon must be positive")
    nodes = list(graph.nodes)
    reach_u = violation.reach_u
    reach_v = violation.reach_v
    f_shared = violation.shared_fault_set
    fu = violation.fault_set_u
    fv = violation.fault_set_v

    e1 = ExecutionDescription(
        name="e1",
        inputs={node: 0.0 for node in nodes},
        crashed=frozenset(fv),
        byzantine=frozenset(),
        delayed_edges=frozenset(),
        expected_output_side=f"node {violation.v!r} outputs 0",
    )
    e2 = ExecutionDescription(
        name="e2",
        inputs={node: float(epsilon) for node in nodes},
        crashed=frozenset(fu),
        byzantine=frozenset(),
        delayed_edges=frozenset(),
        expected_output_side=f"node {violation.u!r} outputs ε",
    )
    inputs_e3: Dict[NodeId, float] = {}
    for node in nodes:
        if node in reach_v:
            inputs_e3[node] = 0.0
        elif node in reach_u:
            inputs_e3[node] = float(epsilon)
        else:
            inputs_e3[node] = float(epsilon) / 2.0
    delayed = _edges_between(graph, fv, reach_v) | _edges_between(graph, fu, reach_u)
    e3 = ExecutionDescription(
        name="e3",
        inputs=inputs_e3,
        crashed=frozenset(),
        byzantine=frozenset(f_shared),
        delayed_edges=frozenset(delayed),
        expected_output_side=(
            f"node {violation.v!r} outputs 0 while node {violation.u!r} outputs ε"
        ),
    )
    return IndistinguishabilitySchedule(
        violation=violation, epsilon=float(epsilon), e1=e1, e2=e2, e3=e3
    )


@dataclass
class DisagreementResult:
    """Outcome of the empirical disagreement demonstration."""

    output_u: float
    output_v: float
    epsilon: float
    rounds: int
    honest_outputs: Dict[NodeId, float] = field(default_factory=dict)

    @property
    def disagreement(self) -> float:
        """|output(u) - output(v)| of the two witness nodes."""
        return abs(self.output_u - self.output_v)

    @property
    def convergence_violated(self) -> bool:
        """``True`` when the witness nodes ended at least ``ε`` apart."""
        return self.disagreement >= self.epsilon - 1e-9


def demonstrate_disagreement(
    graph: DiGraph,
    violation: ReachViolation,
    epsilon: float = 1.0,
    rounds: int = 30,
) -> DisagreementResult:
    """Run a terminating algorithm under the e3 adversary and measure disagreement.

    A fixed-round trimmed-mean update stands in for the hypothetical
    algorithm ``A`` of the proof (it terminates no matter what).  The
    execution reproduces ``e3``:

    * only the nodes of ``F`` are Byzantine: they report 0 towards
      ``reach_v(F∪F_v)`` (as in e1) and ε towards ``reach_u(F∪F_u)`` (as in e2);
    * the messages from ``F_v`` into ``reach_v`` and from ``F_u`` into
      ``reach_u`` are withheld for the whole run — this emulates the
      *delays* of the asynchronous construction and is **not** a fault (the
      senders are honest, their messages are merely slower than the horizon);
    * every edge into ``reach_v`` originates in ``F ∪ F_v`` (by definition of
      the reach set), so the ``reach_v`` side only ever observes the value 0
      and node ``v`` outputs 0; symmetrically ``u`` outputs ε.
    """
    reach_u = violation.reach_u
    reach_v = violation.reach_v
    shared = violation.shared_fault_set
    fu = violation.fault_set_u
    fv = violation.fault_set_v
    schedule = build_schedule(graph, violation, epsilon)

    state: Dict[NodeId, float] = dict(schedule.e3.inputs)
    f = max(1, len(shared))
    from repro.algorithms.baselines.iterative import trimmed_mean_update

    for _round in range(rounds):
        inboxes: Dict[NodeId, Dict[NodeId, float]] = {node: {} for node in graph.nodes}
        for sender in graph.nodes:
            for receiver in graph.successors(sender):
                if sender in shared:
                    if receiver in reach_v:
                        inboxes[receiver][sender] = 0.0
                    elif receiver in reach_u:
                        inboxes[receiver][sender] = float(epsilon)
                    else:
                        inboxes[receiver][sender] = state[sender]
                    continue
                if sender in fv and receiver in reach_v:
                    continue  # delayed past the horizon (asynchrony, not a fault)
                if sender in fu and receiver in reach_u:
                    continue  # delayed past the horizon (asynchrony, not a fault)
                inboxes[receiver][sender] = state[sender]
        next_state = {}
        for node in graph.nodes:
            if node in shared:
                next_state[node] = state[node]
            else:
                next_state[node] = trimmed_mean_update(state[node], inboxes[node], f)
        state = next_state

    honest_outputs = {node: value for node, value in state.items() if node not in shared}
    return DisagreementResult(
        output_u=honest_outputs[violation.u],
        output_v=honest_outputs[violation.v],
        epsilon=float(epsilon),
        rounds=rounds,
        honest_outputs=honest_outputs,
    )
