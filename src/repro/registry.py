"""Typed extension registries: the library's pluggable surface.

Every axis a sweep grid can vary over — topology families, Byzantine
behaviours, fault placements, algorithms, delay models — resolves through a
:class:`Registry`.  The built-in extensions register themselves from their
home modules (:mod:`repro.graphs.generators`, :mod:`repro.adversary.behaviors`,
:mod:`repro.adversary.placement`, :mod:`repro.runner.algorithms`,
:mod:`repro.network.delays`); third-party code registers the same way and is
then addressable by name from any :class:`~repro.runner.harness.GridSpec` or
scenario TOML file without touching engine internals::

    from repro.registry import TOPOLOGIES

    @TOPOLOGIES.register("ring-of-cliques", summary="k cliques in a ring")
    def ring_of_cliques(k: int, clique_size: int) -> DiGraph:
        ...

Names — never the registered callables — travel between worker processes, so
a registered extension only needs to be importable (or already registered,
e.g. inherited over ``fork``) in the worker; nothing is pickled.

Parametrized plugin specs use ``name:arg1,arg2`` syntax (e.g.
``behavior="offset:2.5"``); :func:`parse_plugin_spec` splits and converts the
arguments.  Lookups of unregistered names raise
:class:`~repro.exceptions.UnknownPluginError` with a did-you-mean suggestion
and the full list of valid names.
"""

from __future__ import annotations

import difflib
import importlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.exceptions import ExperimentError, RegistryError, UnknownPluginError

T = TypeVar("T")


def __getattr__(name: str):
    """Back-compat: ``API_VERSION`` moved to its canonical home in
    :mod:`repro.api` with the v2 (streaming sessions) bump; keep the old
    ``from repro.registry import API_VERSION`` import path working."""
    if name == "API_VERSION":
        from repro.api import API_VERSION

        return API_VERSION
    raise AttributeError(f"module 'repro.registry' has no attribute {name!r}")


@dataclass(frozen=True)
class RegistryEntry(Generic[T]):
    """One registered extension: the object plus its documentation metadata.

    ``summary`` is the one-line description shown by
    ``python -m repro.runner list --plugins``; ``metadata`` carries
    registry-specific structured facts (e.g. a behaviour's parameter schema
    or its synchronous-model equivalent).
    """

    name: str
    obj: T
    summary: str = ""
    metadata: Mapping[str, object] = field(default_factory=dict)


class Registry(Generic[T]):
    """A named mapping of extension points with did-you-mean lookups.

    Parameters
    ----------
    kind:
        Singular noun used in error messages and docs ("topology",
        "behavior", ...); ``plural`` overrides the default ``kind + "s"``.
    providers:
        Module names imported lazily on first lookup; each provider module
        registers the built-in extensions of its kind at import time.  Lazy
        loading keeps :mod:`repro.registry` import-cycle-free (it imports
        nothing but the exception hierarchy).
    """

    def __init__(
        self, kind: str, providers: Sequence[str] = (), plural: Optional[str] = None
    ) -> None:
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._providers: Tuple[str, ...] = tuple(providers)
        self._entries: Dict[str, RegistryEntry[T]] = {}
        self._frozen = False
        self._loaded = False

    # -- population -----------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in self._providers:
            importlib.import_module(module)

    def register(
        self,
        name: str,
        obj: Optional[T] = None,
        *,
        summary: str = "",
        metadata: Optional[Mapping[str, object]] = None,
        replace: bool = False,
    ) -> Union[T, Callable[[T], T]]:
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Duplicate names raise :class:`~repro.exceptions.RegistryError` unless
        ``replace=True``; so does registering into a frozen registry.
        """
        if obj is None:

            def decorator(target: T) -> T:
                self.register(name, target, summary=summary, metadata=metadata, replace=replace)
                return target

            return decorator
        if self._frozen:
            raise RegistryError(f"{self.kind} registry is frozen; cannot register {name!r}")
        if not replace and name in self._entries:
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        if not summary:
            doc = getattr(obj, "__doc__", None) or ""
            summary = doc.strip().splitlines()[0] if doc.strip() else ""
        self._entries[name] = RegistryEntry(
            name=name, obj=obj, summary=summary, metadata=dict(metadata or {})
        )
        return obj

    def unregister(self, name: str) -> None:
        """Remove one registration (test teardown; frozen registries refuse)."""
        if self._frozen:
            raise RegistryError(f"{self.kind} registry is frozen; cannot unregister {name!r}")
        self._ensure_loaded()
        if name not in self._entries:
            raise self._unknown(name)
        del self._entries[name]

    @contextmanager
    def temporarily(
        self,
        name: str,
        obj: T,
        *,
        summary: str = "",
        metadata: Optional[Mapping[str, object]] = None,
    ):
        """Context manager registering ``obj`` for the block only (tests)."""
        self.register(name, obj, summary=summary, metadata=metadata)
        try:
            yield obj
        finally:
            self._entries.pop(name, None)

    # -- freezing (tests pin the plugin surface against accidental edits) --
    def freeze(self) -> None:
        """Refuse further (un)registrations until :meth:`unfreeze`."""
        self._ensure_loaded()
        self._frozen = True

    def unfreeze(self) -> None:
        self._frozen = False

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- lookup ---------------------------------------------------------
    def _unknown(self, name: object) -> UnknownPluginError:
        known = self.names()
        suggestion = None
        if isinstance(name, str) and known:
            close = difflib.get_close_matches(name, known, n=1, cutoff=0.6)
            suggestion = close[0] if close else None
        return UnknownPluginError(
            self.kind, name, known=known, suggestion=suggestion, plural=self.plural
        )

    def entry(self, name: str) -> RegistryEntry[T]:
        """The full :class:`RegistryEntry` of ``name`` (metadata included)."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise self._unknown(name) from None

    def get(self, name: str) -> T:
        """The registered object, or :class:`UnknownPluginError` with a
        did-you-mean suggestion listing every valid name."""
        return self.entry(name).obj

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        self._ensure_loaded()
        return list(self._entries)

    def entries(self) -> List[RegistryEntry[T]]:
        """Every entry, in registration order (the ``--plugins`` listing)."""
        self._ensure_loaded()
        return list(self._entries.values())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, names={self.names()!r})"


# ----------------------------------------------------------------------
# parametrized plugin specs:  "offset:2.5", "random:-1e3,1e3", "replay:3"
# ----------------------------------------------------------------------
def _parse_arg(token: str) -> Union[int, float, bool, str]:
    text = token.strip()
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_plugin_spec(spec: str) -> Tuple[str, Tuple[object, ...]]:
    """Split ``"name:arg1,arg2"`` into ``("name", (arg1, arg2))``.

    Arguments are converted to ``int``/``float``/``bool`` when they parse as
    one (ints before floats, so ``replay:3`` yields an integer) and kept as
    strings otherwise.  A bare ``"name"`` yields an empty argument tuple.
    """
    if not isinstance(spec, str) or not spec:
        raise ExperimentError(f"plugin spec must be a non-empty string, got {spec!r}")
    name, _, arg_text = spec.partition(":")
    name = name.strip()
    if not name:
        raise ExperimentError(f"plugin spec {spec!r} has an empty name")
    if not arg_text:
        return name, ()
    return name, tuple(_parse_arg(token) for token in arg_text.split(","))


def validate_plugin_args(
    registry: Registry, spec: str, *, param_key: str = "params", min_key: str = "min_params"
) -> RegistryEntry:
    """Check a parametrized spec against the entry's declared parameter schema.

    The entry's metadata declares ``params`` (tuple of parameter names, in
    call order) and optionally ``min_params`` (how many are required;
    defaults to 0, i.e. every parameter has a default).  Raises
    :class:`UnknownPluginError` for unknown names and
    :class:`~repro.exceptions.ExperimentError` for arity mismatches.
    """
    name, args = parse_plugin_spec(spec)
    entry = registry.entry(name)
    params = tuple(entry.metadata.get(param_key, ()))
    minimum = int(entry.metadata.get(min_key, 0))
    if len(args) < minimum or len(args) > len(params):
        expected = (
            f"between {minimum} and {len(params)}" if minimum != len(params) else f"{minimum}"
        )
        raise ExperimentError(
            f"{registry.kind} {name!r} takes {expected} parameter(s) "
            f"({', '.join(params) or 'none'}); spec {spec!r} supplies {len(args)}"
        )
    return entry


# ----------------------------------------------------------------------
# the five concrete registries
# ----------------------------------------------------------------------
#: Graph families addressable from ``TopologySpec.family``.  Registered
#: objects are factories ``(**params) -> DiGraph``.
TOPOLOGIES: Registry = Registry(
    "topology", providers=("repro.graphs.generators",), plural="topologies"
)

#: Byzantine behaviours addressable from a grid's ``behaviors`` axis.
#: Registered objects are factories ``(*args) -> ByzantineBehavior``; entry
#: metadata carries ``params`` (name tuple), ``min_params`` and optionally
#: ``sync`` — a factory ``(*args) -> Optional[SyncByzantineValue]`` giving
#: the behaviour's synchronous-model equivalent.
BEHAVIORS: Registry = Registry("behavior", providers=("repro.adversary.behaviors",))

#: Fault-placement strategies.  Registered objects are callables
#: ``(graph, f, seed) -> FrozenSet[NodeId]``.
PLACEMENTS: Registry = Registry("placement", providers=("repro.adversary.placement",))

#: Sweep algorithms (consensus drivers and condition checks).  Registered
#: objects are :class:`~repro.runner.algorithms.AlgorithmSpec` instances.
ALGORITHMS: Registry = Registry("algorithm", providers=("repro.runner.algorithms",))

#: Link-delay models.  Registered objects are factories
#: ``(*args) -> DelayModel`` with ``params`` metadata like behaviours.
DELAYS: Registry = Registry("delay", providers=("repro.network.delays",))

#: Network fault schedules (a grid's ``faults`` axis).  Registered objects
#: are factories ``(*args) -> FaultPolicy`` with ``params`` metadata like
#: behaviours; a policy compiles per (graph, cell seed) into a deterministic
#: :class:`~repro.network.faults.FaultSchedule`.
FAULTS: Registry = Registry("fault", providers=("repro.network.faults",))

#: Session stop policies (``run --stop-policy name:args``).  Registered
#: objects are factories ``(*args) -> StopPolicy`` with ``params`` metadata
#: like behaviours; built-ins live in :mod:`repro.runner.session`.
STOP_POLICIES: Registry = Registry(
    "stop-policy", providers=("repro.runner.session",), plural="stop-policies"
)

#: Bitset computation backends (``REPRO_BITSET_BACKEND`` / ``--bitset-backend``).
#: Registered objects are :class:`~repro.graphs.bitset_backends.BitsetBackend`
#: singletons; ``python`` is always present, ``numpy`` only when numpy
#: imports (the ``repro[fast]`` extra).  Backends must return identical masks
#: and verdicts — they are a speed knob, never a semantics knob.
BITSET_BACKENDS: Registry = Registry(
    "bitset-backend",
    providers=("repro.graphs.bitset_backends",),
    plural="bitset-backends",
)

#: Every registry, keyed by its plural CLI/docs name.
ALL_REGISTRIES: Dict[str, Registry] = {
    "topologies": TOPOLOGIES,
    "behaviors": BEHAVIORS,
    "placements": PLACEMENTS,
    "algorithms": ALGORITHMS,
    "delays": DELAYS,
    "faults": FAULTS,
    "stop-policies": STOP_POLICIES,
    "bitset-backends": BITSET_BACKENDS,
}


__all__ = [
    "ALGORITHMS",
    "ALL_REGISTRIES",
    "API_VERSION",
    "BEHAVIORS",
    "BITSET_BACKENDS",
    "DELAYS",
    "FAULTS",
    "PLACEMENTS",
    "Registry",
    "RegistryEntry",
    "STOP_POLICIES",
    "TOPOLOGIES",
    "parse_plugin_spec",
    "validate_plugin_args",
]
