"""The cross-run results store: ingest sweep outputs, query them over time.

Every sweep so far has left a lone JSON file — a schema-v1 artifact, a
crash-safe journal, a ``BENCH_*.json`` perf record — compared pairwise at
best.  :class:`ResultsStore` folds them all into one indexed sqlite
database so history becomes queryable: success-rate trends per scenario
(and per group) across commits, mean-rounds distributions, perf
trajectories from BENCH files, and per-cell variance by group (the signal
an adaptive seed-budgeting policy needs).

**Ingestion** (:meth:`ResultsStore.ingest`) accepts the three artifact
kinds the repo produces and is *idempotent*:

* schema-v1 sweep artifacts (``kind: repro-sweep`` JSON files),
* run journals (``journal.jsonl`` files or the run directories holding
  them — sealed or still in flight; a journal is folded through
  :meth:`~repro.runner.journal.Journal.fold` into exactly the artifact
  payload the run would write, so a journal and its derived artifact
  land as one store row),
* ``BENCH_*.json`` perf records (flattened to dotted numeric metrics),
* PhaseCurve artifacts (``kind: repro-phase-curve``, :mod:`repro.phase`),
  keyed by **scenario × mode × family × knob × git commit** with their
  per-point measurements denormalized into ``phase_points``.

Runs are keyed by **spec_hash × scenario × git commit × mode**.  Ingesting
a byte-identical payload again is a no-op (``unchanged``); re-ingesting the
same key with different bytes — a longer journal of a live run, a re-run in
a dirty worktree — *replaces* the stored row (``replaced``).  BENCH records
are keyed by ``name × content digest`` (the files carry no provenance of
their own), with the ingest-time checkout commit recorded as the
trajectory's x-axis.

The sqlite schema lives in :mod:`repro.store.schema` (normative doc:
``docs/store-schema.md``) and migrates forward automatically on open.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.exceptions import ArtifactError, JournalError, StoreError
from repro.runner.artifacts import (
    dumps_canonical,
    git_metadata,
    validate_artifact,
)
from repro.runner.journal import (
    JOURNAL_FILENAME,
    Journal,
    load_journal,
)
from repro.store.schema import SCHEMA_VERSION, migrate, schema_version

PathLike = Union[str, pathlib.Path]

#: Default store location (relative to the invocation directory, like the
#: artifact directory the CLI writes to).
DEFAULT_STORE_PATH = pathlib.Path("benchmarks") / "results" / "store.sqlite"

#: Axes a group-level query may filter on.
GROUP_AXES = ("algorithm", "topology", "f", "behavior", "placement", "faults")

#: Run-level metrics :meth:`ResultsStore.trend` serves without a group filter.
RUN_METRICS = ("success_rate", "mean_rounds", "cells")

#: Group-level metrics served when any group axis is filtered.
GROUP_METRICS = ("success_rate", "mean_rounds", "mean_messages", "runs")


# ----------------------------------------------------------------------
# typed query results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestReport:
    """Outcome of ingesting one source file/directory."""

    path: str
    kind: str  # "artifact" | "journal" | "bench" | "phase" | "unknown"
    action: str  # "inserted" | "unchanged" | "replaced" | "skipped"
    row_id: Optional[int] = None
    detail: Optional[str] = None

    @property
    def changed(self) -> bool:
        return self.action in ("inserted", "replaced")


@dataclass(frozen=True)
class TrendPoint:
    """One point of a per-commit metric trend."""

    scenario: str
    mode: str
    metric: str
    value: float
    git_commit: str  # "" when the source carried no checkout provenance
    git_dirty: Optional[bool]
    ingested_at: float
    run_id: int
    source_kind: str
    sealed: bool
    cells: int
    #: ``algorithm|topology|f=N|behavior|placement[|faults]`` for group-level
    #: points; ``None`` for run-level points.
    group: Optional[str] = None


@dataclass(frozen=True)
class GroupVariance:
    """Per-cell variance of one aggregation group, pooled across runs.

    The SAVA-style budgeting signal: ``success_variance`` is the Bernoulli
    variance ``p·(1−p)`` of the group's success indicator and
    ``rounds_variance`` the population variance of its round counts.  High
    variance marks the groups where extra seeds buy the most information.
    """

    algorithm: str
    topology: str
    f: int
    behavior: str
    placement: str
    faults: str
    cells: int
    runs_pooled: int
    success_rate: float
    success_variance: float
    mean_rounds: float
    rounds_variance: float

    @property
    def group(self) -> str:
        label = f"{self.algorithm}|{self.topology}|f={self.f}|{self.behavior}|{self.placement}"
        if self.faults != "none":
            label += f"|faults={self.faults}"
        return label


@dataclass(frozen=True)
class BenchPoint:
    """One point of a benchmark-metric trajectory."""

    name: str
    metric: str
    value: float
    git_commit: str
    ingested_at: float
    bench_id: int


def _digest(payload: Mapping[str, object]) -> str:
    return hashlib.sha256(dumps_canonical(payload).encode("utf-8")).hexdigest()


def _group_label(row: Mapping[str, object]) -> str:
    label = (
        f"{row['algorithm']}|{row['topology']}|f={row['f']}"
        f"|{row['behavior']}|{row['placement']}"
    )
    if row["faults"] != "none":
        label += f"|faults={row['faults']}"
    return label


def flatten_metrics(payload: object, prefix: str = "") -> Dict[str, float]:
    """Flatten nested JSON to dotted numeric leaves.

    ``{"grids": {"bw": {"cells_per_second": 4.7}}}`` becomes
    ``{"grids.bw.cells_per_second": 4.7}``.  Booleans and strings are
    dropped; list elements are addressed by index.
    """
    metrics: Dict[str, float] = {}
    if isinstance(payload, Mapping):
        items: Iterable[Tuple[str, object]] = (
            (str(key), value) for key, value in payload.items()
        )
    elif isinstance(payload, (list, tuple)):
        items = ((str(index), value) for index, value in enumerate(payload))
    else:
        items = ()
    for key, value in items:
        dotted = f"{prefix}.{key}" if prefix else key
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            metrics[dotted] = float(value)
        elif isinstance(value, (Mapping, list, tuple)):
            metrics.update(flatten_metrics(value, dotted))
    return metrics


class ResultsStore:
    """One sqlite results database: connect, migrate, ingest, query.

    Usable as a context manager; :meth:`close` is idempotent.  The
    connection enforces foreign keys so replacing a run cascades to its
    groups and cells.  ``readonly=True`` opens an existing store without
    writing (and refuses a database that would need migrating).
    """

    def __init__(self, path: PathLike = DEFAULT_STORE_PATH, readonly: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.readonly = readonly
        if readonly:
            if not self.path.exists():
                raise StoreError(
                    f"results store {self.path} does not exist; create it with "
                    "'python -m repro.runner store init'"
                )
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, check_same_thread=False
            )
            version = schema_version(self._conn)
            if version != SCHEMA_VERSION:
                self._conn.close()
                raise StoreError(
                    f"results store {self.path} is at schema version {version}, "
                    f"expected {SCHEMA_VERSION}; open it writable once to migrate"
                )
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(self.path)
            migrate(self._conn)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreError(f"results store {self.path} is closed")
        return self._conn

    # -- ingestion --------------------------------------------------------
    def ingest(self, path: PathLike) -> List[IngestReport]:
        """Ingest one source — or walk a directory of them.

        * a run directory (contains ``journal.jsonl``) or a ``.jsonl``
          file → the journal, folded to its canonical artifact payload;
        * a ``BENCH_*.json`` file → a perf record;
        * any other ``.json`` file → a schema-v1 sweep artifact;
        * any other directory → recursively all of the above (files that
          are none of them are reported ``skipped``, never an error).

        Idempotent throughout: re-ingesting identical bytes is a no-op.
        """
        target = pathlib.Path(path)
        if not target.exists():
            raise StoreError(f"ingest source {target} does not exist")
        if target.is_dir():
            if (target / JOURNAL_FILENAME).exists():
                return [self._ingest_journal_path(target)]
            return self._ingest_tree(target)
        return [self._ingest_file(target, strict=True)]

    def _ingest_tree(self, root: pathlib.Path) -> List[IngestReport]:
        reports: List[IngestReport] = []
        for path in sorted(root.rglob("*")):
            if path.name == JOURNAL_FILENAME and path.is_file():
                reports.append(self._ingest_journal_path(path))
            elif path.suffix == ".json" and path.is_file():
                reports.append(self._ingest_file(path, strict=False))
        return reports

    def _ingest_file(self, path: pathlib.Path, strict: bool) -> IngestReport:
        from repro.phase.curve import PHASE_CURVE_KIND

        if path.suffix == ".jsonl" or path.name == JOURNAL_FILENAME:
            return self._ingest_journal_path(path)
        if path.name.startswith("BENCH_") and path.suffix == ".json":
            return self._ingest_bench_file(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            if strict:
                raise StoreError(f"cannot ingest {path}: {error}") from None
            return IngestReport(str(path), "unknown", "skipped", detail=str(error))
        if isinstance(raw, Mapping) and raw.get("kind") == PHASE_CURVE_KIND:
            return self._ingest_phase_file(path, raw, strict)
        try:
            validate_artifact(raw)
        except ArtifactError as error:
            if strict:
                raise StoreError(
                    f"cannot ingest {path}: not a journal, sweep artifact, "
                    f"phase curve or BENCH_*.json file ({error})"
                ) from None
            return IngestReport(str(path), "unknown", "skipped", detail=str(error))
        return self.ingest_run_payload(raw, source_kind="artifact", source_path=path)

    def _ingest_phase_file(
        self, path: pathlib.Path, payload: Mapping[str, object], strict: bool
    ) -> IngestReport:
        from repro.exceptions import PhaseError

        try:
            return self.ingest_phase_payload(payload, source_path=path)
        except PhaseError as error:
            if strict:
                raise StoreError(f"cannot ingest {path}: {error}") from None
            return IngestReport(str(path), "phase", "skipped", detail=str(error))

    def _ingest_journal_path(self, path: pathlib.Path) -> IngestReport:
        try:
            journal = load_journal(path)
        except JournalError as error:
            return IngestReport(str(path), "journal", "skipped", detail=str(error))
        return self.ingest_journal(journal, source_path=path)

    def ingest_journal(
        self, journal: Journal, source_path: Optional[PathLike] = None
    ) -> IngestReport:
        """Ingest a loaded journal (sealed or in flight) as a run row.

        The journal is folded into the byte-identical artifact payload the
        run writes, so ingesting a journal and then its derived artifact
        (or vice versa) converges on one unchanged row.
        """
        from repro.runner.artifacts import artifact_payload

        payload = artifact_payload(
            journal.fold(), mode=journal.mode, provenance=journal.provenance()
        )
        return self.ingest_run_payload(
            payload,
            source_kind="journal",
            source_path=source_path if source_path is not None else journal.path,
            sealed=journal.sealed,
            seal_reason=journal.seal_reason,
        )

    def ingest_run_payload(
        self,
        payload: Mapping[str, object],
        source_kind: str = "artifact",
        source_path: Optional[PathLike] = None,
        sealed: bool = True,
        seal_reason: Optional[str] = None,
    ) -> IngestReport:
        """Ingest one validated artifact payload under the run key.

        Key: ``(spec_hash, scenario, git_commit, mode)``.  Same key + same
        digest → ``unchanged``; same key + different digest → ``replaced``
        (groups and cells cascade); new key → ``inserted``.
        """
        from repro.runner.journal import spec_digest

        validate_artifact(payload)
        if source_kind not in ("artifact", "journal"):
            raise StoreError(f"invalid run source kind {source_kind!r}")
        digest = _digest(payload)
        spec_hash = spec_digest(payload["spec"])
        git = payload.get("git") or {}
        git_commit = str(git.get("commit", "") or "")
        git_dirty = git.get("dirty")
        scenario = str(payload["scenario"])
        mode = str(payload["mode"])
        source = str(source_path) if source_path is not None else None

        conn = self.connection
        existing = conn.execute(
            "SELECT id, digest FROM runs WHERE spec_hash = ? AND scenario = ? "
            "AND git_commit = ? AND mode = ?",
            (spec_hash, scenario, git_commit, mode),
        ).fetchone()
        if existing is not None and existing["digest"] == digest:
            return IngestReport(source or scenario, "run", "unchanged", existing["id"])

        cells = payload["cells"]
        total_rounds = sum(int(cell.get("rounds", 0)) for cell in cells)
        mean_rounds = total_rounds / len(cells) if cells else 0.0
        with conn:
            if existing is not None:
                conn.execute("DELETE FROM runs WHERE id = ?", (existing["id"],))
            cursor = conn.execute(
                "INSERT INTO runs (scenario, mode, spec_hash, git_commit, git_dirty, "
                "source_kind, source_path, digest, ingested_at, sealed, seal_reason, "
                "cells, successes, success_rate, mean_rounds, environment, spec) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    scenario,
                    mode,
                    spec_hash,
                    git_commit,
                    None if git_dirty is None else int(bool(git_dirty)),
                    source_kind,
                    source,
                    digest,
                    time.time(),
                    int(bool(sealed)),
                    seal_reason,
                    int(payload["totals"]["cells"]),
                    int(payload["totals"]["successes"]),
                    float(payload["totals"]["success_rate"]),
                    mean_rounds,
                    json.dumps(payload.get("environment"), sort_keys=True),
                    json.dumps(payload["spec"], sort_keys=True),
                ),
            )
            run_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO run_groups (run_id, algorithm, topology, f, behavior, "
                "placement, faults, runs, successes, success_rate, mean_rounds, "
                "mean_messages, worst_range) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        group["algorithm"],
                        group["topology"],
                        int(group["f"]),
                        group["behavior"],
                        group["placement"],
                        str(group.get("faults", "none")),
                        int(group["runs"]),
                        int(group["successes"]),
                        float(group["success_rate"]),
                        float(group["mean_rounds"]),
                        float(group["mean_messages"]),
                        group.get("worst_range"),
                    )
                    for group in payload["groups"]
                ],
            )
            conn.executemany(
                "INSERT INTO run_cells (run_id, idx, algorithm, topology, f, behavior, "
                "placement, faults, seed, success, rounds, messages, output_range) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        int(cell["index"]),
                        cell["algorithm"],
                        cell["topology"],
                        int(cell["f"]),
                        cell["behavior"],
                        cell["placement"],
                        str(cell.get("faults", "none")),
                        int(cell["seed"]),
                        int(bool(cell["success"])),
                        int(cell.get("rounds", 0)),
                        int(cell.get("messages", 0)),
                        cell.get("output_range"),
                    )
                    for cell in cells
                ],
            )
        action = "replaced" if existing is not None else "inserted"
        return IngestReport(source or scenario, "run", action, run_id)

    def _ingest_bench_file(self, path: pathlib.Path) -> IngestReport:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            return IngestReport(str(path), "bench", "skipped", detail=str(error))
        name = path.stem[len("BENCH_"):] if path.stem.startswith("BENCH_") else path.stem
        return self.ingest_bench_payload(name, payload, source_path=path)

    def ingest_bench_payload(
        self,
        name: str,
        payload: Mapping[str, object],
        source_path: Optional[PathLike] = None,
    ) -> IngestReport:
        """Ingest one BENCH record, keyed by ``(name, content digest)``.

        BENCH files carry no provenance of their own, so the ingest-time
        checkout commit (if any) is recorded as the trajectory x-axis.
        """
        if not isinstance(payload, Mapping):
            raise StoreError(f"bench payload for {name!r} must be a JSON object")
        digest = _digest(payload)
        source = str(source_path) if source_path is not None else None
        conn = self.connection
        existing = conn.execute(
            "SELECT id FROM benches WHERE name = ? AND digest = ?", (name, digest)
        ).fetchone()
        if existing is not None:
            return IngestReport(source or name, "bench", "unchanged", existing["id"])
        git = git_metadata() or {}
        metrics = flatten_metrics(payload)
        with conn:
            cursor = conn.execute(
                "INSERT INTO benches (name, digest, git_commit, source_path, "
                "ingested_at, payload) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    name,
                    digest,
                    str(git.get("commit", "") or ""),
                    source,
                    time.time(),
                    json.dumps(payload, sort_keys=True),
                ),
            )
            bench_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO bench_metrics (bench_id, metric, value) VALUES (?, ?, ?)",
                [(bench_id, metric, value) for metric, value in sorted(metrics.items())],
            )
        return IngestReport(source or name, "bench", "inserted", bench_id)

    def ingest_phase_payload(
        self,
        payload: Mapping[str, object],
        source_path: Optional[PathLike] = None,
    ) -> IngestReport:
        """Ingest one validated PhaseCurve document (:mod:`repro.phase`).

        Key: ``(scenario, mode, family, knob, git_commit)`` — one curve per
        swept knob per checkout.  Same key + same digest → ``unchanged``;
        same key + different bytes (a refined curve superseding the plain
        one) → ``replaced``, with the points cascading.
        """
        from repro.phase.curve import validate_phase_curve

        validate_phase_curve(payload)
        digest = _digest(payload)
        git = payload.get("git") or {}
        git_commit = str(git.get("commit", "") or "")
        git_dirty = git.get("dirty")
        scenario = str(payload["scenario"])
        mode = str(payload["mode"])
        family = str(payload["family"])
        knob = str(payload["knob"])
        budget = payload["budget"]
        source = str(source_path) if source_path is not None else None

        conn = self.connection
        existing = conn.execute(
            "SELECT id, digest FROM phase_curves WHERE scenario = ? AND mode = ? "
            "AND family = ? AND knob = ? AND git_commit = ?",
            (scenario, mode, family, knob, git_commit),
        ).fetchone()
        if existing is not None and existing["digest"] == digest:
            return IngestReport(source or scenario, "phase", "unchanged", existing["id"])
        with conn:
            if existing is not None:
                conn.execute("DELETE FROM phase_curves WHERE id = ?", (existing["id"],))
            cursor = conn.execute(
                "INSERT INTO phase_curves (scenario, mode, family, knob, git_commit, "
                "git_dirty, source_path, digest, ingested_at, points, base_cells, "
                "spent_cells, uniform_cells, concentration_ratio, refined, "
                "environment, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    scenario,
                    mode,
                    family,
                    knob,
                    git_commit,
                    None if git_dirty is None else int(bool(git_dirty)),
                    source,
                    digest,
                    time.time(),
                    len(payload["points"]),
                    int(budget["base_cells"]),
                    int(budget["spent_cells"]),
                    budget["uniform_cells"],
                    budget["concentration_ratio"],
                    int(payload["refinement"] is not None),
                    json.dumps(payload.get("environment"), sort_keys=True),
                    json.dumps(payload, sort_keys=True),
                ),
            )
            curve_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO phase_points (curve_id, n, f, knob, seeds, "
                "condition_rate, success_rate, mean_rounds, success_variance) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        curve_id,
                        int(point["n"]),
                        int(point["f"]),
                        float(point["knob"]),
                        int(point["seeds"]),
                        point["condition_rate"],
                        point["success_rate"],
                        point["mean_rounds"],
                        float(point["success_variance"]),
                    )
                    for point in payload["points"]
                ],
            )
        action = "replaced" if existing is not None else "inserted"
        return IngestReport(source or scenario, "phase", action, curve_id)

    def bootstrap(self, root: PathLike = ".") -> List[IngestReport]:
        """Ingest the repo's committed corpus: every ``benchmarks/baselines``
        artifact plus every ``benchmarks/results/BENCH_*.json`` record.

        The ``store init --bootstrap`` path.  Idempotent like everything
        else — bootstrapping twice changes nothing.
        """
        root = pathlib.Path(root)
        reports: List[IngestReport] = []
        baselines = root / "benchmarks" / "baselines"
        if baselines.is_dir():
            for path in sorted(baselines.glob("*.json")):
                reports.append(self._ingest_file(path, strict=False))
        results = root / "benchmarks" / "results"
        if results.is_dir():
            for path in sorted(results.glob("BENCH_*.json")):
                reports.append(self._ingest_bench_file(path))
        return reports

    # -- snapshots (fabric status --store) --------------------------------
    def record_snapshot(self, snapshot: Mapping[str, object]) -> int:
        """Append one :func:`~repro.runner.fabric.fabric_status` snapshot.

        Snapshots are observations of *live* run directories, so they
        append (time series) rather than upsert; the journal summary is
        denormalized for querying and the full snapshot kept as JSON.
        """
        journal = snapshot.get("journal") or {}
        conn = self.connection
        with conn:
            cursor = conn.execute(
                "INSERT INTO snapshots (run_dir, scenario, mode, spec_hash, cells, "
                "total, sealed, seal_reason, recorded_at, payload) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(snapshot.get("run_dir", "")),
                    journal.get("scenario"),
                    journal.get("mode"),
                    journal.get("spec_hash"),
                    journal.get("cells"),
                    journal.get("total"),
                    None if journal.get("sealed") is None else int(bool(journal["sealed"])),
                    journal.get("seal_reason"),
                    time.time(),
                    json.dumps(snapshot, sort_keys=True),
                ),
            )
        return cursor.lastrowid

    def snapshots(
        self, scenario: Optional[str] = None, limit: int = 50
    ) -> List[Dict[str, object]]:
        """Recorded fabric snapshots, newest first."""
        query = (
            "SELECT id, run_dir, scenario, mode, spec_hash, cells, total, sealed, "
            "seal_reason, recorded_at FROM snapshots"
        )
        params: List[object] = []
        if scenario is not None:
            query += " WHERE scenario = ?"
            params.append(scenario)
        query += " ORDER BY recorded_at DESC, id DESC LIMIT ?"
        params.append(int(limit))
        return [dict(row) for row in self.connection.execute(query, params)]

    # -- queries ----------------------------------------------------------
    def scenarios(self) -> List[Dict[str, object]]:
        """Per-scenario summary of everything ingested."""
        rows = self.connection.execute(
            "SELECT scenario, COUNT(*) AS runs, SUM(cells) AS cells, "
            "GROUP_CONCAT(DISTINCT mode) AS modes, "
            "COUNT(DISTINCT git_commit) AS commits, MAX(ingested_at) AS last_ingested "
            "FROM runs GROUP BY scenario ORDER BY scenario"
        )
        return [dict(row) for row in rows]

    def runs(
        self, scenario: Optional[str] = None, mode: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Stored run rows (without groups/cells), oldest first."""
        query = (
            "SELECT id, scenario, mode, spec_hash, git_commit, git_dirty, source_kind, "
            "source_path, ingested_at, sealed, seal_reason, cells, successes, "
            "success_rate, mean_rounds FROM runs"
        )
        clauses, params = [], []
        if scenario is not None:
            clauses.append("scenario = ?")
            params.append(scenario)
        if mode is not None:
            clauses.append("mode = ?")
            params.append(mode)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY ingested_at, id"
        return [dict(row) for row in self.connection.execute(query, params)]

    def trend(
        self,
        scenario: str,
        metric: str = "success_rate",
        mode: Optional[str] = None,
        **axes: object,
    ) -> List[TrendPoint]:
        """Per-commit trend of ``metric`` for a scenario, oldest first.

        Without axis filters the trend is run-level (one point per stored
        run; metrics: :data:`RUN_METRICS`).  With any of
        :data:`GROUP_AXES` as keyword filters the trend is group-level
        (one point per matching group per run; metrics:
        :data:`GROUP_METRICS`).
        """
        unknown = set(axes) - set(GROUP_AXES)
        if unknown:
            raise StoreError(
                f"unknown group axes {sorted(unknown)}; valid: {list(GROUP_AXES)}"
            )
        if axes:
            if metric not in GROUP_METRICS:
                raise StoreError(
                    f"unknown group metric {metric!r}; valid: {list(GROUP_METRICS)}"
                )
            return self._group_trend(scenario, metric, mode, axes)
        if metric not in RUN_METRICS:
            raise StoreError(f"unknown run metric {metric!r}; valid: {list(RUN_METRICS)}")
        query = (
            f"SELECT id, mode, git_commit, git_dirty, ingested_at, source_kind, "
            f"sealed, cells, {metric} AS value FROM runs WHERE scenario = ?"
        )
        params: List[object] = [scenario]
        if mode is not None:
            query += " AND mode = ?"
            params.append(mode)
        query += " ORDER BY ingested_at, id"
        return [
            TrendPoint(
                scenario=scenario,
                mode=row["mode"],
                metric=metric,
                value=float(row["value"]),
                git_commit=row["git_commit"],
                git_dirty=None if row["git_dirty"] is None else bool(row["git_dirty"]),
                ingested_at=row["ingested_at"],
                run_id=row["id"],
                source_kind=row["source_kind"],
                sealed=bool(row["sealed"]),
                cells=row["cells"],
            )
            for row in self.connection.execute(query, params)
        ]

    def _group_trend(
        self,
        scenario: str,
        metric: str,
        mode: Optional[str],
        axes: Mapping[str, object],
    ) -> List[TrendPoint]:
        query = (
            f"SELECT r.id, r.mode, r.git_commit, r.git_dirty, r.ingested_at, "
            f"r.source_kind, r.sealed, g.runs AS group_runs, g.{metric} AS value, "
            f"g.algorithm, g.topology, g.f, g.behavior, g.placement, g.faults "
            f"FROM run_groups g JOIN runs r ON r.id = g.run_id WHERE r.scenario = ?"
        )
        params: List[object] = [scenario]
        if mode is not None:
            query += " AND r.mode = ?"
            params.append(mode)
        for axis, value in sorted(axes.items()):
            query += f" AND g.{axis} = ?"
            params.append(int(value) if axis == "f" else str(value))
        query += " ORDER BY r.ingested_at, r.id, g.algorithm, g.topology, g.f"
        return [
            TrendPoint(
                scenario=scenario,
                mode=row["mode"],
                metric=metric,
                value=float(row["value"]),
                git_commit=row["git_commit"],
                git_dirty=None if row["git_dirty"] is None else bool(row["git_dirty"]),
                ingested_at=row["ingested_at"],
                run_id=row["id"],
                source_kind=row["source_kind"],
                sealed=bool(row["sealed"]),
                cells=row["group_runs"],
                group=_group_label(row),
            )
            for row in self.connection.execute(query, params)
        ]

    def group_variance(
        self, scenario: str, mode: Optional[str] = None, **axes: object
    ) -> List[GroupVariance]:
        """Per-cell variance by group, pooled across every ingested run.

        Highest ``rounds_variance`` first — the groups where additional
        seeds buy the most information (the SAVA-style budgeting signal).
        """
        unknown = set(axes) - set(GROUP_AXES)
        if unknown:
            raise StoreError(
                f"unknown group axes {sorted(unknown)}; valid: {list(GROUP_AXES)}"
            )
        query = (
            "SELECT c.algorithm, c.topology, c.f, c.behavior, c.placement, c.faults, "
            "COUNT(*) AS n, COUNT(DISTINCT c.run_id) AS runs_pooled, "
            "AVG(c.success) AS p, AVG(c.rounds) AS mean_rounds, "
            "AVG(c.rounds * c.rounds) - AVG(c.rounds) * AVG(c.rounds) AS var_rounds "
            "FROM run_cells c JOIN runs r ON r.id = c.run_id WHERE r.scenario = ?"
        )
        params: List[object] = [scenario]
        if mode is not None:
            query += " AND r.mode = ?"
            params.append(mode)
        for axis, value in sorted(axes.items()):
            query += f" AND c.{axis} = ?"
            params.append(int(value) if axis == "f" else str(value))
        query += (
            " GROUP BY c.algorithm, c.topology, c.f, c.behavior, c.placement, c.faults"
            " ORDER BY var_rounds DESC, n DESC"
        )
        results: List[GroupVariance] = []
        for row in self.connection.execute(query, params):
            p = float(row["p"])
            results.append(
                GroupVariance(
                    algorithm=row["algorithm"],
                    topology=row["topology"],
                    f=row["f"],
                    behavior=row["behavior"],
                    placement=row["placement"],
                    faults=row["faults"],
                    cells=row["n"],
                    runs_pooled=row["runs_pooled"],
                    success_rate=p,
                    success_variance=p * (1.0 - p),
                    mean_rounds=float(row["mean_rounds"]),
                    rounds_variance=max(0.0, float(row["var_rounds"] or 0.0)),
                )
            )
        return results

    def phase_curves(self, scenario: Optional[str] = None) -> List[Dict[str, object]]:
        """Ingested phase curves (newest first), optionally per scenario."""
        query = (
            "SELECT id, scenario, mode, family, knob, git_commit, points, "
            "base_cells, spent_cells, uniform_cells, concentration_ratio, "
            "refined, ingested_at FROM phase_curves"
        )
        params: List[object] = []
        if scenario is not None:
            query += " WHERE scenario = ?"
            params.append(scenario)
        query += " ORDER BY ingested_at DESC, id DESC"
        return [dict(row) for row in self.connection.execute(query, params)]

    def phase_points(self, curve_id: int) -> List[Dict[str, object]]:
        """The per-point measurements of one ingested curve, in curve order."""
        rows = self.connection.execute(
            "SELECT n, f, knob, seeds, condition_rate, success_rate, "
            "mean_rounds, success_variance FROM phase_points "
            "WHERE curve_id = ? ORDER BY n, f, knob",
            (curve_id,),
        ).fetchall()
        if not rows:
            exists = self.connection.execute(
                "SELECT 1 FROM phase_curves WHERE id = ?", (curve_id,)
            ).fetchone()
            if exists is None:
                raise StoreError(f"no ingested phase curve with id {curve_id}")
        return [dict(row) for row in rows]

    def bench_names(self) -> List[Dict[str, object]]:
        """Ingested bench families with record counts."""
        rows = self.connection.execute(
            "SELECT name, COUNT(*) AS records, MAX(ingested_at) AS last_ingested "
            "FROM benches GROUP BY name ORDER BY name"
        )
        return [dict(row) for row in rows]

    def bench_metrics(self, name: str) -> List[str]:
        """Distinct dotted metric names recorded for one bench family."""
        rows = self.connection.execute(
            "SELECT DISTINCT m.metric FROM bench_metrics m "
            "JOIN benches b ON b.id = m.bench_id WHERE b.name = ? ORDER BY m.metric",
            (name,),
        )
        return [row[0] for row in rows]

    def bench_trend(self, name: str, metric: str) -> List[BenchPoint]:
        """Trajectory of one bench metric across ingests, oldest first."""
        rows = self.connection.execute(
            "SELECT b.id, b.git_commit, b.ingested_at, m.value "
            "FROM bench_metrics m JOIN benches b ON b.id = m.bench_id "
            "WHERE b.name = ? AND m.metric = ? ORDER BY b.ingested_at, b.id",
            (name, metric),
        )
        return [
            BenchPoint(
                name=name,
                metric=metric,
                value=float(row["value"]),
                git_commit=row["git_commit"],
                ingested_at=row["ingested_at"],
                bench_id=row["id"],
            )
            for row in rows
        ]


__all__ = [
    "DEFAULT_STORE_PATH",
    "GROUP_AXES",
    "GROUP_METRICS",
    "RUN_METRICS",
    "BenchPoint",
    "GroupVariance",
    "IngestReport",
    "ResultsStore",
    "TrendPoint",
    "flatten_metrics",
]
