"""Cross-run results store and live serving layer.

Two modules:

:mod:`repro.store.store`
    :class:`ResultsStore` — the sqlite-backed store: idempotent ingestion
    of journals, schema-v1 artifacts and ``BENCH_*.json`` records, plus
    the typed query API (trends, variance, bench trajectories).
:mod:`repro.store.serve`
    The stdlib-only HTTP layer behind ``python -m repro.runner serve``:
    JSON query endpoints over a store plus an SSE endpoint streaming live
    progress of in-flight journaled/fabric runs.

The sqlite schema and migration ladder live in :mod:`repro.store.schema`;
``docs/store-schema.md`` is the normative schema document.
"""

from __future__ import annotations

from repro.store.schema import SCHEMA_VERSION, migrate, schema_version
from repro.store.serve import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServeConfig,
    journal_record_to_event,
    make_server,
    serve_forever,
)
from repro.store.store import (
    DEFAULT_STORE_PATH,
    GROUP_AXES,
    GROUP_METRICS,
    RUN_METRICS,
    BenchPoint,
    GroupVariance,
    IngestReport,
    ResultsStore,
    TrendPoint,
    flatten_metrics,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_STORE_PATH",
    "GROUP_AXES",
    "GROUP_METRICS",
    "RUN_METRICS",
    "SCHEMA_VERSION",
    "BenchPoint",
    "GroupVariance",
    "IngestReport",
    "ResultsStore",
    "ServeConfig",
    "TrendPoint",
    "flatten_metrics",
    "journal_record_to_event",
    "make_server",
    "migrate",
    "schema_version",
    "serve_forever",
]
