"""Stdlib-only HTTP serving layer over the results store and live runs.

``python -m repro.runner serve`` binds a :class:`ThreadingHTTPServer`
exposing two kinds of read-only traffic:

* **JSON query endpoints** over a :class:`~repro.store.store.ResultsStore`
  (trends, variance, bench trajectories, fabric snapshots).  Every request
  opens its own read-only sqlite connection — sqlite connections are not
  shareable across the server's request threads, and read-only mode keeps a
  misbehaving client from ever mutating history.
* **an SSE endpoint** (``/v1/live/<run>/events``) that replays and then
  follows a run journal as Server-Sent Events, reusing the incremental
  :func:`~repro.runner.journal.tail_records` reader the fabric coordinator
  uses.  Journal records map onto the session event vocabulary — the
  header becomes ``RunStarted``, each cell record ``CellCompleted``, the
  seal ``RunFinished`` — and the stream closes once the seal is streamed.
  Because journals are appended in strict cell-index order on both the
  serial and sharded paths, the SSE stream inherits that ordering for
  free, and folding the streamed cells reproduces the run's artifact
  byte-for-byte.

Endpoints (all ``GET``):

====================================  =========================================
``/``                                 service index (endpoint table)
``/v1/scenarios``                     per-scenario ingest summary
``/v1/runs``                          stored runs (``?scenario=&mode=``)
``/v1/trend``                         metric trend (``?scenario=&metric=&mode=``
                                      plus group-axis filters)
``/v1/variance``                      per-cell variance by group
``/v1/benches``                       ingested bench families
``/v1/benches/metrics``               dotted metrics of one family (``?name=``)
``/v1/benches/trend``                 one metric's trajectory (``?name=&metric=``)
``/v1/snapshots``                     recorded fabric snapshots
``/v1/live``                          journaled run dirs under ``--runs-dir``
``/v1/live/<run>/events``             SSE stream of one run's journal
====================================  =========================================

Errors are JSON too: ``{"error": ...}`` with 400 (bad query), 404 (unknown
path/run) or 503 (store missing).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import JournalError, ReproError, StoreError
from repro.runner.journal import JOURNAL_FILENAME, journal_path, tail_records
from repro.store.store import DEFAULT_STORE_PATH, GROUP_AXES, ResultsStore

#: Default bind address: loopback only — the store is unauthenticated.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8742

ENDPOINTS = (
    ("/", "service index"),
    ("/v1/scenarios", "per-scenario ingest summary"),
    ("/v1/runs", "stored runs; ?scenario=&mode="),
    ("/v1/trend", "metric trend; ?scenario=&metric=&mode= plus group axes"),
    ("/v1/variance", "per-cell variance by group; ?scenario=&mode= plus group axes"),
    ("/v1/benches", "ingested bench families"),
    ("/v1/benches/metrics", "dotted metrics of one bench family; ?name="),
    ("/v1/benches/trend", "one bench metric's trajectory; ?name=&metric="),
    ("/v1/snapshots", "recorded fabric snapshots; ?scenario=&limit="),
    ("/v1/live", "journaled run directories under --runs-dir"),
    ("/v1/live/<run>/events", "SSE stream of one run's journal"),
)


@dataclass(frozen=True)
class ServeConfig:
    """Everything the server needs; handlers read it, never mutate it."""

    store_path: pathlib.Path = DEFAULT_STORE_PATH
    runs_dir: Optional[pathlib.Path] = None
    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    #: Seconds between journal polls while an SSE stream is idle.
    poll_interval: float = 0.2
    #: Wall-clock cap on one SSE stream of an unsealed journal (a client may
    #: lower it per-request with ``?timeout=``); the stream then ends with a
    #: ``StreamTimeout`` event instead of holding the socket forever.
    sse_timeout: float = 300.0
    quiet: bool = True


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _event_frame(event: str, payload: Mapping[str, object]) -> bytes:
    """One SSE frame; compact JSON keeps the data on a single line."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


def journal_record_to_event(
    record: Mapping[str, object],
) -> Optional[Tuple[str, Dict[str, object]]]:
    """Map one journal record to its ``(event, payload)`` SSE frame.

    The vocabulary mirrors :mod:`repro.runner.session`: header →
    ``RunStarted`` (with the full spec and provenance, so a client can
    fold the stream back into the run's artifact), cell →
    ``CellCompleted`` (the cell's ``as_dict`` form, verbatim), seal →
    ``RunFinished``.  Unknown record kinds map to ``None`` (skipped) so a
    reader of a newer journal version degrades gracefully.
    """
    kind = record.get("record")
    if kind == "header":
        from repro.runner.harness import GridSpec

        try:
            total = GridSpec.from_dict(record["spec"]).num_cells
        except (ReproError, KeyError, TypeError):
            total = None
        return (
            "RunStarted",
            {
                "scenario": record.get("scenario"),
                "mode": record.get("mode"),
                "spec": record.get("spec"),
                "spec_hash": record.get("spec_hash"),
                "environment": record.get("environment"),
                "git": record.get("git"),
                "total_cells": total,
            },
        )
    if kind == "cell":
        return ("CellCompleted", dict(record["cell"]))
    if kind == "seal":
        return (
            "RunFinished",
            {"reason": record.get("reason"), "totals": record.get("totals")},
        )
    return None


class StoreRequestHandler(BaseHTTPRequestHandler):
    """One request: route, open a read-only store if needed, answer JSON/SSE."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    config: ServeConfig  # injected by make_server()

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.config.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, payload: object, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _open_store(self) -> ResultsStore:
        try:
            return ResultsStore(self.config.store_path, readonly=True)
        except StoreError as error:
            raise _HTTPError(503, str(error)) from None

    def _param(self, query: Mapping[str, List[str]], name: str) -> Optional[str]:
        values = query.get(name)
        return values[-1] if values else None

    def _require(self, query: Mapping[str, List[str]], name: str) -> str:
        value = self._param(query, name)
        if value is None:
            raise _HTTPError(400, f"missing required query parameter {name!r}")
        return value

    def _axes(self, query: Mapping[str, List[str]]) -> Dict[str, object]:
        axes: Dict[str, object] = {}
        for axis in GROUP_AXES:
            value = self._param(query, axis)
            if value is None:
                continue
            if axis == "f":
                try:
                    axes[axis] = int(value)
                except ValueError:
                    raise _HTTPError(400, f"axis f must be an integer, got {value!r}")
            else:
                axes[axis] = value
        return axes

    # -- routing ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        split = urllib.parse.urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(split.query)
        try:
            if path == "/":
                self._send_json(
                    {
                        "service": "repro results store",
                        "store": str(self.config.store_path),
                        "runs_dir": (
                            str(self.config.runs_dir) if self.config.runs_dir else None
                        ),
                        "endpoints": [
                            {"path": route, "description": text}
                            for route, text in ENDPOINTS
                        ],
                    }
                )
            elif path == "/v1/scenarios":
                with self._open_store() as store:
                    self._send_json({"scenarios": store.scenarios()})
            elif path == "/v1/runs":
                with self._open_store() as store:
                    self._send_json(
                        {
                            "runs": store.runs(
                                scenario=self._param(query, "scenario"),
                                mode=self._param(query, "mode"),
                            )
                        }
                    )
            elif path == "/v1/trend":
                self._handle_trend(query)
            elif path == "/v1/variance":
                self._handle_variance(query)
            elif path == "/v1/benches":
                with self._open_store() as store:
                    self._send_json({"benches": store.bench_names()})
            elif path == "/v1/benches/metrics":
                name = self._require(query, "name")
                with self._open_store() as store:
                    self._send_json({"name": name, "metrics": store.bench_metrics(name)})
            elif path == "/v1/benches/trend":
                name = self._require(query, "name")
                metric = self._require(query, "metric")
                with self._open_store() as store:
                    points = store.bench_trend(name, metric)
                self._send_json(
                    {
                        "name": name,
                        "metric": metric,
                        "points": [dataclasses.asdict(point) for point in points],
                    }
                )
            elif path == "/v1/snapshots":
                limit = self._param(query, "limit") or "50"
                try:
                    limit_value = int(limit)
                except ValueError:
                    raise _HTTPError(400, f"limit must be an integer, got {limit!r}")
                with self._open_store() as store:
                    self._send_json(
                        {
                            "snapshots": store.snapshots(
                                scenario=self._param(query, "scenario"),
                                limit=limit_value,
                            )
                        }
                    )
            elif path == "/v1/live":
                self._send_json({"runs": self._live_runs()})
            elif path.startswith("/v1/live/") and path.endswith("/events"):
                name = path[len("/v1/live/"):-len("/events")]
                self._handle_sse(name, query)
            else:
                raise _HTTPError(404, f"unknown endpoint {path!r}")
        except _HTTPError as error:
            self._send_json({"error": str(error)}, status=error.status)
        except StoreError as error:
            self._send_json({"error": str(error)}, status=400)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer

    # -- store endpoints --------------------------------------------------
    def _handle_trend(self, query: Mapping[str, List[str]]) -> None:
        scenario = self._require(query, "scenario")
        metric = self._param(query, "metric") or "success_rate"
        mode = self._param(query, "mode")
        axes = self._axes(query)
        with self._open_store() as store:
            points = store.trend(scenario, metric, mode=mode, **axes)
        self._send_json(
            {
                "scenario": scenario,
                "metric": metric,
                "mode": mode,
                "axes": axes,
                "points": [dataclasses.asdict(point) for point in points],
            }
        )

    def _handle_variance(self, query: Mapping[str, List[str]]) -> None:
        scenario = self._require(query, "scenario")
        mode = self._param(query, "mode")
        axes = self._axes(query)
        with self._open_store() as store:
            groups = store.group_variance(scenario, mode=mode, **axes)
        self._send_json(
            {
                "scenario": scenario,
                "mode": mode,
                "axes": axes,
                "groups": [
                    dict(dataclasses.asdict(group), group=group.group)
                    for group in groups
                ],
            }
        )

    # -- live runs --------------------------------------------------------
    def _live_runs(self) -> List[Dict[str, object]]:
        runs_dir = self.config.runs_dir
        if runs_dir is None or not runs_dir.is_dir():
            return []
        runs: List[Dict[str, object]] = []
        for candidate in sorted(runs_dir.iterdir()):
            journal_file = candidate / JOURNAL_FILENAME
            if not journal_file.is_file():
                continue
            entry: Dict[str, object] = {"run": candidate.name}
            try:
                from repro.runner.journal import load_journal

                journal = load_journal(candidate)
                entry.update(
                    scenario=journal.scenario,
                    mode=journal.mode,
                    spec_hash=journal.spec_hash,
                    cells=len(journal.cells),
                    sealed=journal.sealed,
                    seal_reason=journal.seal_reason,
                )
            except JournalError as error:
                entry["error"] = str(error)
            runs.append(entry)
        return runs

    def _resolve_run(self, name: str) -> pathlib.Path:
        runs_dir = self.config.runs_dir
        if runs_dir is None:
            raise _HTTPError(404, "no --runs-dir configured; live streaming is off")
        if not name or "/" in name or "\\" in name or name in (".", ".."):
            raise _HTTPError(400, f"invalid run name {name!r}")
        run_dir = runs_dir / name
        if not journal_path(run_dir).is_file():
            raise _HTTPError(404, f"no journal under run {name!r}")
        return run_dir

    def _handle_sse(self, name: str, query: Mapping[str, List[str]]) -> None:
        run_dir = self._resolve_run(name)
        timeout = self.config.sse_timeout
        raw = self._param(query, "timeout")
        if raw is not None:
            try:
                timeout = min(timeout, float(raw))
            except ValueError:
                raise _HTTPError(400, f"timeout must be a number, got {raw!r}")

        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        # SSE is an unbounded stream: no Content-Length, so the connection
        # (kept alive by protocol_version 1.1 otherwise) must close to mark
        # the end of the body.
        self.send_header("Connection", "close")
        self.end_headers()

        path = journal_path(run_dir)
        offset = 0
        deadline = time.monotonic() + timeout
        try:
            while True:
                records, offset = tail_records(path, offset)
                for record in records:
                    mapped = journal_record_to_event(record)
                    if mapped is None:
                        continue
                    event, payload = mapped
                    self.wfile.write(_event_frame(event, payload))
                    self.wfile.flush()
                    if event == "RunFinished":
                        return  # seal streamed: close the stream
                if time.monotonic() >= deadline:
                    self.wfile.write(
                        _event_frame("StreamTimeout", {"timeout": timeout})
                    )
                    self.wfile.flush()
                    return
                if not records:
                    # keepalive comment so proxies/clients see a live socket
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    time.sleep(self.config.poll_interval)
        except (BrokenPipeError, ConnectionResetError):
            return  # client disconnected; the journal is untouched
        finally:
            self.close_connection = True


def make_server(config: ServeConfig) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``config`` (not yet serving).

    The handler class is specialized per call so concurrent servers (tests
    run several) never share configuration through class attributes.
    """
    handler = type("BoundStoreRequestHandler", (StoreRequestHandler,), {"config": config})
    server = ThreadingHTTPServer((config.host, config.port), handler)
    server.daemon_threads = True  # in-flight SSE streams never block shutdown
    return server


def serve_forever(config: ServeConfig) -> None:
    """Blocking entry point behind ``python -m repro.runner serve``."""
    with make_server(config) as server:
        host, port = server.server_address[:2]
        print(f"serving results store {config.store_path} on http://{host}:{port}/")
        if config.runs_dir is not None:
            print(f"live runs from {config.runs_dir} at /v1/live")
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ENDPOINTS",
    "ServeConfig",
    "StoreRequestHandler",
    "journal_record_to_event",
    "make_server",
    "serve_forever",
]
