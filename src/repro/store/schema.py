"""The results-store sqlite schema and its migration ladder.

``docs/store-schema.md`` is the normative statement of this schema — the
DDL here and that document are kept in lockstep (tests cross-check the
table list).  The store tracks its schema version in sqlite's
``PRAGMA user_version``; :func:`migrate` applies every migration past the
database's current version, in order, each inside one transaction.  Opening
a database *newer* than this library understands raises
:class:`~repro.exceptions.StoreError` rather than guessing.

Version history
---------------
1
    Initial schema: ``runs`` (one row per ingested sweep run, unique on
    ``spec_hash × scenario × git_commit × mode``), ``run_groups`` and
    ``run_cells`` (the denormalized aggregates and per-cell records queries
    aggregate over), ``benches`` + ``bench_metrics`` (BENCH_*.json files
    flattened to dotted numeric metrics).
2
    ``snapshots`` — point-in-time fabric/status observations of live run
    directories (``fabric status --store`` appends here; the serving layer
    reads them back out).
3
    ``phase_curves`` + ``phase_points`` — ingested PhaseCurve artifacts
    (``kind: repro-phase-curve``, :mod:`repro.phase`), one row per curve
    (unique on ``scenario × mode × family × knob × git commit``) plus its
    denormalized per-point measurements.
"""

from __future__ import annotations

import sqlite3

from repro.exceptions import StoreError

#: Schema version a freshly migrated store reports (``PRAGMA user_version``).
SCHEMA_VERSION = 3

_DDL_V1 = """
CREATE TABLE runs (
    id           INTEGER PRIMARY KEY,
    scenario     TEXT NOT NULL,
    mode         TEXT NOT NULL CHECK (mode IN ('quick', 'full')),
    spec_hash    TEXT NOT NULL,
    git_commit   TEXT NOT NULL DEFAULT '',
    git_dirty    INTEGER,
    source_kind  TEXT NOT NULL CHECK (source_kind IN ('artifact', 'journal')),
    source_path  TEXT,
    digest       TEXT NOT NULL,
    ingested_at  REAL NOT NULL,
    sealed       INTEGER NOT NULL DEFAULT 1,
    seal_reason  TEXT,
    cells        INTEGER NOT NULL,
    successes    INTEGER NOT NULL,
    success_rate REAL NOT NULL,
    mean_rounds  REAL NOT NULL,
    environment  TEXT,
    spec         TEXT NOT NULL,
    UNIQUE (spec_hash, scenario, git_commit, mode)
);

CREATE TABLE run_groups (
    run_id       INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    algorithm    TEXT NOT NULL,
    topology     TEXT NOT NULL,
    f            INTEGER NOT NULL,
    behavior     TEXT NOT NULL,
    placement    TEXT NOT NULL,
    faults       TEXT NOT NULL DEFAULT 'none',
    runs         INTEGER NOT NULL,
    successes    INTEGER NOT NULL,
    success_rate REAL NOT NULL,
    mean_rounds  REAL NOT NULL,
    mean_messages REAL NOT NULL,
    worst_range  REAL,
    PRIMARY KEY (run_id, algorithm, topology, f, behavior, placement, faults)
);

CREATE TABLE run_cells (
    run_id       INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    idx          INTEGER NOT NULL,
    algorithm    TEXT NOT NULL,
    topology     TEXT NOT NULL,
    f            INTEGER NOT NULL,
    behavior     TEXT NOT NULL,
    placement    TEXT NOT NULL,
    faults       TEXT NOT NULL DEFAULT 'none',
    seed         INTEGER NOT NULL,
    success      INTEGER NOT NULL,
    rounds       INTEGER NOT NULL,
    messages     INTEGER NOT NULL,
    output_range REAL,
    PRIMARY KEY (run_id, idx)
);

CREATE TABLE benches (
    id           INTEGER PRIMARY KEY,
    name         TEXT NOT NULL,
    digest       TEXT NOT NULL,
    git_commit   TEXT NOT NULL DEFAULT '',
    source_path  TEXT,
    ingested_at  REAL NOT NULL,
    payload      TEXT NOT NULL,
    UNIQUE (name, digest)
);

CREATE TABLE bench_metrics (
    bench_id     INTEGER NOT NULL REFERENCES benches(id) ON DELETE CASCADE,
    metric       TEXT NOT NULL,
    value        REAL NOT NULL,
    PRIMARY KEY (bench_id, metric)
);

CREATE INDEX idx_runs_scenario ON runs(scenario, mode, ingested_at);
CREATE INDEX idx_run_groups_axes ON run_groups(algorithm, topology, f);
CREATE INDEX idx_bench_metrics ON bench_metrics(metric);
"""

_DDL_V2 = """
CREATE TABLE snapshots (
    id           INTEGER PRIMARY KEY,
    run_dir      TEXT NOT NULL,
    scenario     TEXT,
    mode         TEXT,
    spec_hash    TEXT,
    cells        INTEGER,
    total        INTEGER,
    sealed       INTEGER,
    seal_reason  TEXT,
    recorded_at  REAL NOT NULL,
    payload      TEXT NOT NULL
);

CREATE INDEX idx_snapshots_scenario ON snapshots(scenario, recorded_at);
"""

_DDL_V3 = """
CREATE TABLE phase_curves (
    id            INTEGER PRIMARY KEY,
    scenario      TEXT NOT NULL,
    mode          TEXT NOT NULL CHECK (mode IN ('quick', 'full')),
    family        TEXT NOT NULL,
    knob          TEXT NOT NULL,
    git_commit    TEXT NOT NULL DEFAULT '',
    git_dirty     INTEGER,
    source_path   TEXT,
    digest        TEXT NOT NULL,
    ingested_at   REAL NOT NULL,
    points        INTEGER NOT NULL,
    base_cells    INTEGER NOT NULL,
    spent_cells   INTEGER NOT NULL,
    uniform_cells INTEGER,
    concentration_ratio REAL,
    refined       INTEGER NOT NULL DEFAULT 0,
    environment   TEXT,
    payload       TEXT NOT NULL,
    UNIQUE (scenario, mode, family, knob, git_commit)
);

CREATE TABLE phase_points (
    curve_id         INTEGER NOT NULL REFERENCES phase_curves(id) ON DELETE CASCADE,
    n                INTEGER NOT NULL,
    f                INTEGER NOT NULL,
    knob             REAL NOT NULL,
    seeds            INTEGER NOT NULL,
    condition_rate   REAL,
    success_rate     REAL,
    mean_rounds      REAL,
    success_variance REAL NOT NULL,
    PRIMARY KEY (curve_id, n, f, knob)
);

CREATE INDEX idx_phase_curves_scenario ON phase_curves(scenario, mode, ingested_at);
"""

#: Ordered migration ladder: ``version -> DDL applied to reach it``.  Append
#: only — never edit a shipped entry; an existing database replays exactly
#: the steps past its recorded version.
MIGRATIONS = {
    1: _DDL_V1,
    2: _DDL_V2,
    3: _DDL_V3,
}


def schema_version(conn: sqlite3.Connection) -> int:
    """The schema version recorded in the database (0 = empty file)."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(conn: sqlite3.Connection) -> int:
    """Bring ``conn`` up to :data:`SCHEMA_VERSION`; returns the new version.

    Each pending step runs inside its own transaction, so an interrupted
    migration leaves the database at the last completed version — never
    half-migrated.  A database from a *newer* library version is refused.
    """
    current = schema_version(conn)
    if current > SCHEMA_VERSION:
        raise StoreError(
            f"results store was written by a newer schema (version {current}, "
            f"this library supports up to {SCHEMA_VERSION}); upgrade the library "
            "or point at a different --store file"
        )
    for version in sorted(MIGRATIONS):
        if version <= current:
            continue
        with conn:  # one transaction per step
            conn.executescript(MIGRATIONS[version])
            conn.execute(f"PRAGMA user_version = {version}")
    return schema_version(conn)


def table_names(conn: sqlite3.Connection) -> list:
    """Sorted user-table names (the schema doc's conformance surface)."""
    rows = conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' "
        "AND name NOT LIKE 'sqlite_%' ORDER BY name"
    ).fetchall()
    return [row[0] for row in rows]


__all__ = ["MIGRATIONS", "SCHEMA_VERSION", "migrate", "schema_version", "table_names"]
