"""repro.api — the curated, versioned public surface of the library.

Everything a downstream user (or plugin package) should need is re-exported
here; internals are free to move as long as this module keeps working.
:data:`API_VERSION` is bumped when anything in ``__all__`` changes
incompatibly.

The surface has four layers:

**Registries** (:class:`Registry` and the five instances) — register custom
topology families, Byzantine behaviours, fault placements, algorithms and
delay models by name; grids and scenario TOML files then reference them like
the built-ins::

    from repro.api import BEHAVIORS, TOPOLOGIES

    @TOPOLOGIES.register("double-star")
    def double_star(n: int) -> DiGraph: ...

    BEHAVIORS.register("stutter", lambda copies=2: ReplayBehavior(int(copies)),
                       metadata={"params": ("copies",), "min_params": 0})

**Sweeps** — :class:`GridSpec` (declarative grids over algorithm × topology
× f × behaviour × placement × seed), :class:`SweepEngine` / :func:`run_grid`
(serial or sharded execution with byte-identical artifacts), and
:class:`Scenario` with the TOML loaders from
:mod:`repro.runner.scenario_files`.

**Single executions** — :class:`ConsensusConfig`, :func:`run_bw_experiment`
and the baseline drivers, plus :func:`quick_consensus` for one-liners.

**Artifacts** — :func:`write_artifact` / :func:`load_artifact` /
:func:`compare` for the canonical JSON documents CI gates on.
"""

from __future__ import annotations

from repro import quick_consensus
from repro.algorithms.base import ConsensusConfig
from repro.exceptions import (
    ReproError,
    ScenarioFileError,
    UnknownPluginError,
)
from repro.graphs.digraph import DiGraph
from repro.registry import (
    ALGORITHMS,
    ALL_REGISTRIES,
    API_VERSION,
    BEHAVIORS,
    DELAYS,
    PLACEMENTS,
    TOPOLOGIES,
    Registry,
    RegistryEntry,
    parse_plugin_spec,
)
from repro.runner.algorithms import AlgorithmSpec
from repro.runner.artifacts import (
    ComparisonReport,
    compare,
    compare_files,
    load_artifact,
    write_artifact,
)
from repro.runner.experiment import (
    run_bw_experiment,
    run_clique_experiment,
    run_crash_experiment,
    run_iterative_experiment,
    run_local_average_experiment,
)
from repro.runner.harness import (
    NOT_APPLICABLE,
    CellResult,
    GridSpec,
    GroupAggregate,
    SweepCell,
    SweepEngine,
    SweepRunResult,
    TopologySpec,
    run_grid,
)
from repro.runner.scenario_files import (
    Scenario,
    dump_scenario_toml,
    load_scenario_file,
    load_scenario_text,
)
from repro.runner.scenarios import SCENARIOS, get_scenario, run_cell, scenario_names

__all__ = [
    # versioning
    "API_VERSION",
    # registries
    "ALGORITHMS",
    "ALL_REGISTRIES",
    "BEHAVIORS",
    "DELAYS",
    "PLACEMENTS",
    "TOPOLOGIES",
    "Registry",
    "RegistryEntry",
    "AlgorithmSpec",
    "parse_plugin_spec",
    # errors
    "ReproError",
    "ScenarioFileError",
    "UnknownPluginError",
    # graphs + sweeps
    "DiGraph",
    "NOT_APPLICABLE",
    "CellResult",
    "GridSpec",
    "GroupAggregate",
    "SweepCell",
    "SweepEngine",
    "SweepRunResult",
    "TopologySpec",
    "run_cell",
    "run_grid",
    # scenarios
    "SCENARIOS",
    "Scenario",
    "dump_scenario_toml",
    "get_scenario",
    "load_scenario_file",
    "load_scenario_text",
    "scenario_names",
    # single executions
    "ConsensusConfig",
    "quick_consensus",
    "run_bw_experiment",
    "run_clique_experiment",
    "run_crash_experiment",
    "run_iterative_experiment",
    "run_local_average_experiment",
    # artifacts
    "ComparisonReport",
    "compare",
    "compare_files",
    "load_artifact",
    "write_artifact",
]
