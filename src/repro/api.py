"""repro.api — the curated, versioned public surface of the library.

Everything a downstream user (or plugin package) should need is re-exported
here; internals are free to move as long as this module keeps working.
:data:`API_VERSION` is bumped when anything in ``__all__`` changes
incompatibly.  **Version 2** redesigns the run surface around streaming,
resumable :class:`ExperimentSession`\\ s; every v1 name remains importable
(deprecated names emit a :class:`DeprecationWarning` and are listed in
:data:`DEPRECATED_V1_NAMES` — migration table in ``EXPERIMENTS.md``).

The surface is layered:

**Registries** (:class:`Registry` and the seven instances) — register custom
topology families, Byzantine behaviours, fault placements, algorithms,
delay models and session stop policies by name; grids and scenario TOML
files then reference them like the built-ins::

    from repro.api import BEHAVIORS, TOPOLOGIES

    @TOPOLOGIES.register("double-star")
    def double_star(n: int) -> DiGraph: ...

    BEHAVIORS.register("stutter", lambda copies=2: ReplayBehavior(int(copies)),
                       metadata={"params": ("copies",), "min_params": 0})

**Sessions** (the v2 run surface) — :class:`ExperimentSession` wraps a
:class:`GridSpec` (plus an optional run directory) and streams typed events
(:class:`RunStarted`, :class:`CellCompleted`, :class:`GroupUpdated`,
:class:`CheckpointWritten`, :class:`RunFinished`) as cells finish, serially
or sharded with byte-identical artifacts either way.  With a run directory
every completed cell is fsynced to a JSONL journal
(:class:`Journal` / :func:`load_journal`), ``ExperimentSession.resume``
continues interrupted runs, and :class:`StopPolicy` plugins
(:data:`STOP_POLICIES`) seal runs early::

    session = ExperimentSession(spec, workers=4, run_dir="runs/table2.full")
    for event in session.events():
        ...
    session.write_artifact("table2.full.json")

**Sweeps** — :class:`GridSpec` (declarative grids over algorithm × topology
× f × behaviour × placement × seed), :class:`SweepEngine` (the low-level
executor sessions drive; its ``stream()`` is the observer hook), and
:class:`Scenario` with the TOML loaders from
:mod:`repro.runner.scenario_files`.

**Single executions** — :class:`ConsensusConfig`, :func:`run_bw_experiment`
and the baseline drivers, plus :func:`quick_consensus` for one-liners.

**Artifacts** — :func:`write_artifact` / :func:`load_artifact` /
:func:`compare` for the canonical JSON documents CI gates on; journaled
sessions *derive* the same bytes from their journal.

**The results store** (cross-run history) — :class:`ResultsStore` ingests
journals, artifacts and ``BENCH_*.json`` records idempotently (keyed by
spec hash × scenario × git commit × mode) into one sqlite database and
serves typed queries: :meth:`~ResultsStore.trend` (per-commit
:class:`TrendPoint` series, run- or group-level),
:meth:`~ResultsStore.group_variance` (per-cell :class:`GroupVariance`, the
seed-budgeting signal), :meth:`~ResultsStore.bench_trend`
(:class:`BenchPoint` perf trajectories).  ``python -m repro.runner serve``
exposes the same queries over HTTP plus SSE live streams
(:func:`make_server` / :class:`ServeConfig`); schema in
``docs/store-schema.md``::

    with ResultsStore("benchmarks/results/store.sqlite") as store:
        store.bootstrap(".")
        for point in store.trend("figure1b", "success_rate"):
            print(point.git_commit[:12], point.value)

**The phase-transition explorer** (:mod:`repro.phase`) — :func:`run_phase`
sweeps one random-family knob (``p``, ``beta``, ``m``) into a
schema-versioned PhaseCurve artifact (``docs/phase-curves.md``), and
:func:`refine_phase` adaptively bisects the knob axis / boosts seed counts
where the store's pooled variance marks the transition band
(:data:`PHASE_BAND_VARIANCE`), under a fixed cell budget::

    refinement = refine_phase(get_scenario("phase_density"), quick=True,
                              budget_cells=96, resolution=0.05)
    write_phase_curve("phase_density.curve.json", refinement.curve)

**The sweep fabric** (distributed execution over a shared directory) —
:class:`FabricCoordinator` publishes cell-range leases over a run
directory, merges per-worker shards into the canonical journal with epoch
fencing, and seals it; :class:`FabricWorker` is the lease-claiming
executor (the ``fabric worker`` CLI wraps it, and third-party workers can
implement the documented wire format in ``docs/fabric-protocol.md``
instead).  :func:`fabric_status` snapshots a live run::

    coordinator = FabricCoordinator(spec, run_dir="/nfs/sweeps/table2.full",
                                    config=FabricConfig(workers=0))
    coordinator.run()          # workers join from any host sharing the dir
"""

from __future__ import annotations

import warnings

from repro import quick_consensus
from repro.algorithms.base import ConsensusConfig
from repro.exceptions import (
    JournalError,
    PhaseError,
    ReproError,
    ScenarioFileError,
    StoreError,
    UnknownPluginError,
)
from repro.graphs.digraph import DiGraph
from repro.registry import (
    ALGORITHMS,
    ALL_REGISTRIES,
    BEHAVIORS,
    DELAYS,
    FAULTS,
    PLACEMENTS,
    STOP_POLICIES,
    TOPOLOGIES,
    Registry,
    RegistryEntry,
    parse_plugin_spec,
)
from repro.runner.algorithms import AlgorithmSpec
from repro.runner.artifacts import (
    ComparisonReport,
    artifact_payload,
    compare,
    compare_files,
    load_artifact,
    write_artifact,
)
from repro.runner.fabric import (
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricReport,
    FabricWorker,
    fabric_status,
)
from repro.runner.experiment import (
    run_bw_experiment,
    run_clique_experiment,
    run_crash_experiment,
    run_iterative_experiment,
    run_local_average_experiment,
)
from repro.runner.harness import (
    NOT_APPLICABLE,
    CellResult,
    GridSpec,
    GroupAggregate,
    StopSweep,
    SweepCell,
    SweepEngine,
    SweepRunResult,
    TopologySpec,
)
from repro.runner.journal import (
    Journal,
    JournalWriter,
    journal_from_artifact,
    journal_path,
    load_journal,
    tail_records,
)
from repro.runner.leases import Lease, LeaseError, read_lease, replay_fence_log
from repro.runner.reporting import SessionProgress, render_fabric_status
from repro.runner.scenario_files import (
    Scenario,
    dump_scenario_toml,
    load_scenario_file,
    load_scenario_text,
)
from repro.runner.scenarios import SCENARIOS, get_scenario, run_cell, scenario_names
from repro.runner.session import (
    CellCompleted,
    CheckpointWritten,
    ExperimentSession,
    GroupUpdated,
    RunFinished,
    RunStarted,
    SessionEvent,
    StopPolicy,
    make_stop_policy,
    run_session,
)
from repro.phase import (
    PHASE_BAND_VARIANCE,
    PHASE_CURVE_KIND,
    PHASE_SCHEMA_VERSION,
    PhasePoint,
    PhaseRefinement,
    PhaseRun,
    curve_from_result,
    load_phase_curve,
    phase_knob,
    refine_phase,
    render_curve,
    run_phase,
    validate_phase_curve,
    validate_phase_spec,
    write_phase_curve,
)
from repro.store import (
    BenchPoint,
    GroupVariance,
    IngestReport,
    ResultsStore,
    ServeConfig,
    TrendPoint,
    make_server,
    serve_forever,
)

#: Version of this public surface (the single source of truth; the legacy
#: ``repro.registry.API_VERSION`` import path forwards here).  2 = streaming
#: execution sessions (events / journals / resume / stop policies).
API_VERSION = 2

#: v1 names superseded in api v2, kept importable as deprecation shims:
#: ``name -> (replacement hint, removal horizon)``.
DEPRECATED_V1_NAMES = {
    "run_grid": ("ExperimentSession(spec, workers=N).run()", "api v3"),
}


def __getattr__(name: str):
    """Serve deprecated v1 names with a :class:`DeprecationWarning`."""
    if name in DEPRECATED_V1_NAMES:
        replacement, horizon = DEPRECATED_V1_NAMES[name]
        warnings.warn(
            f"repro.api.{name} is deprecated since api v2; use {replacement} "
            f"(removal: {horizon})",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.runner import harness

        return getattr(harness, name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


__all__ = [
    # versioning
    "API_VERSION",
    "DEPRECATED_V1_NAMES",
    # registries
    "ALGORITHMS",
    "ALL_REGISTRIES",
    "BEHAVIORS",
    "DELAYS",
    "FAULTS",
    "PLACEMENTS",
    "STOP_POLICIES",
    "TOPOLOGIES",
    "Registry",
    "RegistryEntry",
    "AlgorithmSpec",
    "parse_plugin_spec",
    # errors
    "JournalError",
    "PhaseError",
    "ReproError",
    "ScenarioFileError",
    "StoreError",
    "UnknownPluginError",
    # graphs + sweeps
    "DiGraph",
    "NOT_APPLICABLE",
    "CellResult",
    "GridSpec",
    "GroupAggregate",
    "StopSweep",
    "SweepCell",
    "SweepEngine",
    "SweepRunResult",
    "TopologySpec",
    "run_cell",
    # sessions (api v2)
    "CellCompleted",
    "CheckpointWritten",
    "ExperimentSession",
    "GroupUpdated",
    "RunFinished",
    "RunStarted",
    "SessionEvent",
    "SessionProgress",
    "StopPolicy",
    "make_stop_policy",
    "run_session",
    # journals (api v2)
    "Journal",
    "JournalWriter",
    "journal_from_artifact",
    "journal_path",
    "load_journal",
    "tail_records",
    # the sweep fabric (api v2; wire format in docs/fabric-protocol.md)
    "FabricConfig",
    "FabricCoordinator",
    "FabricError",
    "FabricReport",
    "FabricWorker",
    "Lease",
    "LeaseError",
    "fabric_status",
    "read_lease",
    "render_fabric_status",
    "replay_fence_log",
    # the phase-transition explorer (schema in docs/phase-curves.md)
    "PHASE_BAND_VARIANCE",
    "PHASE_CURVE_KIND",
    "PHASE_SCHEMA_VERSION",
    "PhasePoint",
    "PhaseRefinement",
    "PhaseRun",
    "curve_from_result",
    "load_phase_curve",
    "phase_knob",
    "refine_phase",
    "render_curve",
    "run_phase",
    "validate_phase_curve",
    "validate_phase_spec",
    "write_phase_curve",
    # the results store + serving layer (schema in docs/store-schema.md)
    "BenchPoint",
    "GroupVariance",
    "IngestReport",
    "ResultsStore",
    "ServeConfig",
    "TrendPoint",
    "make_server",
    "serve_forever",
    # scenarios
    "SCENARIOS",
    "Scenario",
    "dump_scenario_toml",
    "get_scenario",
    "load_scenario_file",
    "load_scenario_text",
    "scenario_names",
    # single executions
    "ConsensusConfig",
    "quick_consensus",
    "run_bw_experiment",
    "run_clique_experiment",
    "run_crash_experiment",
    "run_iterative_experiment",
    "run_local_average_experiment",
    # artifacts
    "ComparisonReport",
    "artifact_payload",
    "compare",
    "compare_files",
    "load_artifact",
    "write_artifact",
    # deprecated v1 shims (module __getattr__)
    "run_grid",
]
