"""Durable execution journals: crash-safe JSONL logs of sweep progress.

A journal is the append-only record of one journaled sweep run, living as
``journal.jsonl`` inside a *run directory*.  Every completed cell is
appended — and fsynced — the moment it finishes, so an interrupted run
(SIGINT, OOM kill, power loss) keeps everything it already paid for and
``ExperimentSession.resume(run_dir)`` continues exactly where it stopped.
The canonical schema-v1 JSON artifact is *derived* from the journal:
``artifact_payload(journal.fold(), mode=journal.mode,
provenance=journal.provenance())`` reproduces, byte for byte, the artifact
the same grid writes through the in-memory path.

File format (``journal_version`` 1) — one JSON object per line:

* **header** (first line)::

      {"record": "header", "kind": "repro-journal", "journal_version": 1,
       "scenario": ..., "mode": "quick" | "full",
       "spec": { ...GridSpec.as_dict()... }, "spec_hash": "<sha256 hex>",
       "environment": { ...environment_metadata()... },
       "git": { ...git_metadata()... } | null}

* **cell** (zero or more)::

      {"record": "cell", "cell": { ...CellResult.as_dict()... }}

* **seal** (at most one, always last)::

      {"record": "seal", "reason": "completed" | "policy:<name>",
       "totals": {"cells": N, "successes": M, "success_rate": x}}

Crash safety is append-then-fsync with checkpoint-granular fsync barriers:
every record is flushed to the kernel as it is appended (a *process* crash
— SIGKILL, OOM — loses nothing), and ``fsync`` is issued at the header,
at every :meth:`JournalWriter.checkpoint`, at the seal and on close, so a
*machine* crash loses at most the cells since the last checkpoint.  Either
way a record is complete or it is the file's final, truncated line.  The
**tail-truncation recovery rule** readers apply: a final line missing its
terminating newline — parseable or not — is a torn append and is dropped
(and physically truncated away when the journal is reopened for appending;
the dropped cell simply re-runs on resume, deterministically); a malformed
record anywhere *before* the tail, a duplicate cell index, records after
the seal, or a header whose ``spec_hash`` does not match its ``spec`` raise
:class:`~repro.exceptions.JournalError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Union

from repro.exceptions import JournalError
from repro.runner.artifacts import environment_metadata, git_metadata
from repro.runner.harness import CellResult, GridSpec, SweepRunResult, aggregate_cells

JOURNAL_VERSION = 1
JOURNAL_KIND = "repro-journal"

#: File name of the journal inside a run directory.
JOURNAL_FILENAME = "journal.jsonl"

PathLike = Union[str, pathlib.Path]

#: Sentinel distinguishing "use the probed default" from an explicit ``None``
#: (``git_metadata()`` legitimately returns ``None`` outside a checkout).
_PROBE = object()


def journal_path(run_dir: PathLike) -> pathlib.Path:
    """The journal file inside ``run_dir`` (tolerates a direct file path)."""
    target = pathlib.Path(run_dir)
    if target.suffix == ".jsonl":
        return target
    return target / JOURNAL_FILENAME


def spec_digest(spec_payload: Mapping[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a ``GridSpec.as_dict()``.

    Resume verifies this digest against a freshly recomputed one, so a run
    directory can never silently continue under an edited grid.
    """
    canonical = json.dumps(spec_payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _dump_line(record: Mapping[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
@dataclass
class Journal:
    """A parsed journal: header facts, recorded cells, optional seal."""

    path: pathlib.Path
    scenario: str
    mode: str
    spec_payload: Dict[str, object]
    spec_hash: str
    environment: Optional[Dict[str, object]]
    git: Optional[Dict[str, object]]
    cells: List[CellResult]
    seal: Optional[Dict[str, object]]
    #: Byte offset just past the last complete record — the truncation point
    #: writers restore before appending after a crash.
    good_bytes: int
    #: True when a truncated final line was dropped during reading.
    recovered_tail: bool

    @property
    def sealed(self) -> bool:
        return self.seal is not None

    @property
    def seal_reason(self) -> Optional[str]:
        return str(self.seal["reason"]) if self.seal else None

    def completed_indices(self) -> Set[int]:
        """Cell indexes already durably recorded."""
        return {cell.index for cell in self.cells}

    def grid_spec(self) -> GridSpec:
        """Rehydrate the grid this journal records (validated)."""
        return GridSpec.from_dict(self.spec_payload)

    def provenance(self) -> Dict[str, object]:
        """The ``environment``/``git`` metadata recorded at run start, in the
        shape :func:`~repro.runner.artifacts.artifact_payload` accepts."""
        return {"environment": self.environment, "git": self.git}

    def fold(self) -> SweepRunResult:
        """Fold the recorded cells into a :class:`SweepRunResult`.

        Cells are ordered by index and groups aggregated exactly like a
        live run, so ``artifact_payload(journal.fold(), mode=journal.mode,
        provenance=journal.provenance())`` round-trips the artifact the
        run would have written (byte-identical, committed baselines
        included).  Timing/worker fields are observational and left at
        their defaults — they are never serialized anyway.
        """
        cells = sorted(self.cells, key=lambda cell: cell.index)
        return SweepRunResult(
            spec=self.grid_spec(),
            cells=cells,
            groups=aggregate_cells(cells),
            stop_reason=None if self.seal_reason in (None, "completed") else self.seal_reason,
        )


def _parse_record(line: str, number: int, path: pathlib.Path) -> Dict[str, object]:
    record = json.loads(line)
    if not isinstance(record, dict) or "record" not in record:
        raise JournalError(f"journal {path} line {number}: not a journal record: {line[:80]!r}")
    return record


def _validate_header(record: Mapping[str, object], path: pathlib.Path) -> None:
    if record.get("kind") != JOURNAL_KIND:
        raise JournalError(f"journal {path}: not a sweep journal (kind={record.get('kind')!r})")
    version = record.get("journal_version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path}: unsupported journal version {version!r} "
            f"(expected {JOURNAL_VERSION})"
        )
    for key in ("scenario", "mode", "spec", "spec_hash"):
        if key not in record:
            raise JournalError(f"journal {path}: header is missing {key!r}")
    if record["mode"] not in ("quick", "full"):
        raise JournalError(f"journal {path}: invalid mode {record['mode']!r}")
    recorded = record["spec_hash"]
    recomputed = spec_digest(record["spec"])
    if recorded != recomputed:
        raise JournalError(
            f"journal {path}: spec hash mismatch — header says {recorded!r} but the "
            f"recorded spec hashes to {recomputed!r}; the journal is corrupt or the "
            "spec was edited"
        )


def load_journal(run_dir: PathLike) -> Journal:
    """Read and validate a journal, applying the tail-truncation rule.

    ``run_dir`` may be the run directory or the ``journal.jsonl`` path
    itself.  A final line without its newline (crash mid-append) is dropped
    and reported via :attr:`Journal.recovered_tail`; every other
    malformation raises :class:`~repro.exceptions.JournalError`.
    """
    path = journal_path(run_dir)
    if not path.exists():
        raise JournalError(f"journal {path} does not exist")
    raw = path.read_bytes()

    # Split into (line, end_offset) pairs; a final chunk without a newline is
    # a truncation candidate, only accepted as such if it also fails to parse.
    lines: List[tuple] = []
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline == -1:
            lines.append((raw[offset:], len(raw), False))
            break
        lines.append((raw[offset:newline], newline + 1, True))
        offset = newline + 1

    header: Optional[Dict[str, object]] = None
    cells: List[CellResult] = []
    seen: Set[int] = set()
    seal: Optional[Dict[str, object]] = None
    good_bytes = 0
    recovered_tail = False
    for number, (line_bytes, end, terminated) in enumerate(lines, start=1):
        is_last = number == len(lines)
        if is_last and not terminated:
            # The tail-truncation rule, uniformly: a final line without its
            # terminating newline is a torn append and is dropped whether or
            # not its bytes happen to parse — keeping it would leave
            # ``good_bytes`` pointing mid-line and a resuming writer would
            # fuse the next record onto it.  Dropping a cell is always safe:
            # resume simply re-runs it (deterministically).
            recovered_tail = True
            break
        try:
            record = _parse_record(line_bytes.decode("utf-8", errors="strict"), number, path)
        except (json.JSONDecodeError, UnicodeDecodeError):
            if is_last:
                recovered_tail = True
                break
            raise JournalError(
                f"journal {path} line {number}: corrupt record before the tail"
            ) from None
        if seal is not None:
            raise JournalError(f"journal {path} line {number}: record after the seal")
        kind = record["record"]
        if number == 1:
            if kind != "header":
                raise JournalError(f"journal {path}: first record must be the header")
            _validate_header(record, path)
            header = record
        elif kind == "header":
            raise JournalError(f"journal {path} line {number}: duplicate header")
        elif kind == "cell":
            try:
                cell = CellResult.from_dict(record["cell"])
            except (KeyError, TypeError, ValueError) as error:
                raise JournalError(
                    f"journal {path} line {number}: malformed cell record: {error}"
                ) from None
            if cell.index in seen:
                raise JournalError(
                    f"journal {path} line {number}: duplicate cell index {cell.index}"
                )
            seen.add(cell.index)
            cells.append(cell)
        elif kind == "seal":
            if "reason" not in record:
                raise JournalError(f"journal {path} line {number}: seal has no reason")
            seal = record
        else:
            raise JournalError(f"journal {path} line {number}: unknown record kind {kind!r}")
        good_bytes = end
    if header is None:
        raise JournalError(f"journal {path}: no complete header record")
    return Journal(
        path=path,
        scenario=str(header["scenario"]),
        mode=str(header["mode"]),
        spec_payload=dict(header["spec"]),
        spec_hash=str(header["spec_hash"]),
        environment=header.get("environment"),
        git=header.get("git"),
        cells=cells,
        seal=seal,
        good_bytes=good_bytes,
        recovered_tail=recovered_tail,
    )


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
class JournalWriter:
    """Append-only journal writer with checkpointed durability.

    Every record is written and flushed before the append returns — a crash
    of the writing *process* loses nothing.  ``fsync`` barriers (surviving
    a machine crash) are issued at the header, at every
    :meth:`checkpoint`, at the seal and on :meth:`close`; sessions call
    :meth:`checkpoint` on their checkpoint cadence so the emitted
    ``CheckpointWritten`` events mark real durability barriers.  Use
    :meth:`create` for a fresh run directory and :meth:`resume` to continue
    an unsealed journal (restoring a truncated tail first).
    """

    def __init__(self, path: pathlib.Path, handle, recorded: Set[int]) -> None:
        self.path = path
        self._handle = handle
        self._recorded = set(recorded)
        self._sealed = False
        self._dirty = False

    # -- constructors ----------------------------------------------------
    @classmethod
    def create(
        cls,
        run_dir: PathLike,
        spec: GridSpec,
        mode: str = "full",
        environment: object = _PROBE,
        git: object = _PROBE,
    ) -> "JournalWriter":
        """Start a fresh journal for ``spec`` inside ``run_dir``.

        Refuses to overwrite an existing journal — resuming an interrupted
        run must go through :meth:`resume` (via
        ``ExperimentSession.resume``) so completed work is never discarded.
        ``environment``/``git`` default to freshly probed metadata; tests
        and derivation tools may pin them explicitly.
        """
        path = journal_path(run_dir)
        if path.exists():
            raise JournalError(
                f"journal {path} already exists — resume an interrupted run with "
                f"'run --resume {path.parent}', or delete the run directory (or pick "
                "a fresh --run-dir) to start over"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        spec_payload = spec.as_dict()
        header = {
            "record": "header",
            "kind": JOURNAL_KIND,
            "journal_version": JOURNAL_VERSION,
            "scenario": spec.name,
            "mode": mode,
            "spec": spec_payload,
            "spec_hash": spec_digest(spec_payload),
            "environment": environment_metadata() if environment is _PROBE else environment,
            "git": git_metadata() if git is _PROBE else git,
        }
        handle = open(path, "ab")
        writer = cls(path, handle, set())
        writer._append(header, fsync=True)
        return writer

    @classmethod
    def resume(cls, journal: Journal) -> "JournalWriter":
        """Reopen ``journal`` for appending, truncating any recovered tail."""
        if journal.sealed:
            raise JournalError(
                f"journal {journal.path} is sealed ({journal.seal_reason!r}); a "
                "sealed run is complete — delete the run directory (or pick a "
                "fresh --run-dir) to run the grid again"
            )
        handle = open(journal.path, "r+b")
        handle.truncate(journal.good_bytes)
        handle.seek(journal.good_bytes)
        return cls(journal.path, handle, journal.completed_indices())

    # -- appending -------------------------------------------------------
    def _append(self, record: Mapping[str, object], fsync: bool = False) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} writer is closed")
        if self._sealed:
            raise JournalError(f"journal {self.path} is sealed; no further records")
        self._handle.write(_dump_line(record).encode("utf-8"))
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())
            self._dirty = False
        else:
            self._dirty = True

    def append_cell(self, result: CellResult) -> None:
        """Record one completed cell (flushed; duplicate indexes refused)."""
        if result.index in self._recorded:
            raise JournalError(
                f"journal {self.path}: cell index {result.index} is already recorded"
            )
        self._append({"record": "cell", "cell": result.as_dict()})
        self._recorded.add(result.index)

    def checkpoint(self) -> None:
        """``fsync`` everything appended so far — a machine-crash barrier."""
        if self._handle is None:
            raise JournalError(f"journal {self.path} writer is closed")
        if self._dirty:
            os.fsync(self._handle.fileno())
            self._dirty = False

    def seal(self, reason: str, results: List[CellResult]) -> None:
        """Write (and fsync) the final seal; the journal becomes immutable."""
        successes = sum(1 for cell in results if cell.success)
        self._append(
            {
                "record": "seal",
                "reason": reason,
                "totals": {
                    "cells": len(results),
                    "successes": successes,
                    "success_rate": successes / len(results) if results else 0.0,
                },
            },
            fsync=True,
        )
        self._sealed = True

    @property
    def cells_recorded(self) -> int:
        return len(self._recorded)

    def close(self) -> None:
        if self._handle is not None:
            if self._dirty:
                os.fsync(self._handle.fileno())
                self._dirty = False
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def tail_records(path: PathLike, offset: int = 0) -> "tuple[List[Dict[str, object]], int]":
    """Incrementally read complete JSONL records from ``path`` past ``offset``.

    The polling-reader counterpart of the tail-truncation rule: returns the
    parsed records whose terminating newline is already on disk, plus the
    byte offset just past the last complete record — pass it back on the
    next call to stream a file another process is still appending to (the
    fabric coordinator does this against worker shards).  An unterminated
    final line is left for a later call; a *terminated* line that fails to
    parse raises :class:`~repro.exceptions.JournalError` (torn appends
    never gain a newline, so terminated garbage is real corruption).
    A missing file reads as empty — the writer may not have started yet.
    """
    path = pathlib.Path(path)
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            raw = handle.read()
    except FileNotFoundError:
        return [], offset
    records: List[Dict[str, object]] = []
    cursor = 0
    while cursor < len(raw):
        newline = raw.find(b"\n", cursor)
        if newline == -1:
            break  # unterminated tail: not yet a record
        line = raw[cursor:newline]
        cursor = newline + 1
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8", errors="strict"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise JournalError(
                f"shard {path}: corrupt terminated record at byte {offset + newline}"
            ) from None
        if not isinstance(record, dict) or "record" not in record:
            raise JournalError(
                f"shard {path}: not a journal record at byte {offset + newline}"
            )
        records.append(record)
    return records, offset + cursor


def journal_from_artifact(run_dir: PathLike, payload: Mapping[str, object]) -> Journal:
    """Materialize a journal equivalent to an existing artifact payload.

    The inverse direction of ``artifact_payload(journal.fold())`` — used by
    tests to prove the round trip over the committed baselines, and handy
    for backfilling run directories for pre-journal artifacts.
    """
    spec = GridSpec.from_dict(payload["spec"])
    writer = JournalWriter.create(
        run_dir,
        spec,
        mode=str(payload["mode"]),
        environment=payload.get("environment"),
        git=payload.get("git"),
    )
    with writer:
        results = [CellResult.from_dict(cell) for cell in payload["cells"]]
        for cell in sorted(results, key=lambda cell: cell.index):
            writer.append_cell(cell)
        writer.seal("completed", results)
    return load_journal(run_dir)


__all__ = [
    "JOURNAL_FILENAME",
    "JOURNAL_KIND",
    "JOURNAL_VERSION",
    "Journal",
    "JournalWriter",
    "journal_from_artifact",
    "journal_path",
    "load_journal",
    "spec_digest",
    "tail_records",
]
