"""``python -m repro.runner`` — the sweep orchestration command line.

Four subcommands drive the whole experiment surface:

``list``
    Show every registered scenario with its grid sizes and paper artefact.
``run``
    Expand a named scenario's grid, execute it (optionally sharded across
    worker processes), print the aggregate table and write the canonical
    JSON artifact.  ``--quick`` selects the CI-sized grid.
``compare``
    Diff a freshly generated artifact against a stored baseline and exit
    nonzero on drift — the regression gate CI builds on.
``profile``
    cProfile one scenario run with a per-phase wall-clock breakdown
    (expansion / topology precomputation / cell execution) — the entry
    point for hot-path investigations.

Examples
--------
::

    python -m repro.runner list
    python -m repro.runner run --scenario figure1b --workers 4 --quick
    python -m repro.runner compare benchmarks/baselines/figure1b.quick.json \\
        benchmarks/results/figure1b.quick.json
    python -m repro.runner profile --scenario definition1 --quick --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pathlib
import pstats
import sys
import time
from typing import List, Optional, Sequence

from repro.exceptions import ReproError
from repro.runner.artifacts import compare_files, write_artifact
from repro.runner.harness import SweepEngine
from repro.runner.reporting import format_table, render_sweep_groups
from repro.runner.scenarios import (
    SCENARIOS,
    clear_worker_caches,
    get_scenario,
    warm_worker_caches,
)

#: Default artifact directory (relative to the invocation directory).
DEFAULT_OUTPUT_DIR = pathlib.Path("benchmarks") / "results"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Sharded sweep orchestration over the paper's experiment grids.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios and their grid sizes")

    run_parser = commands.add_parser("run", help="run a scenario and write its JSON artifact")
    run_parser.add_argument(
        "--scenario",
        action="append",
        required=True,
        metavar="NAME",
        help="scenario to run (repeatable; see 'list')",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded execution (default: 1, serial)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="cells per pool task (default: balanced automatically)",
    )
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="run the reduced CI grid instead of the full grid",
    )
    run_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="artifact path (single scenario) or directory (default: benchmarks/results/)",
    )
    run_parser.add_argument(
        "--no-table", action="store_true", help="suppress the aggregate table on stdout"
    )

    compare_parser = commands.add_parser(
        "compare", help="diff an artifact against a baseline; exit 1 on drift"
    )
    compare_parser.add_argument("baseline", type=pathlib.Path, help="baseline artifact (JSON)")
    compare_parser.add_argument("current", type=pathlib.Path, help="current artifact (JSON)")
    compare_parser.add_argument(
        "--tol-success",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute success-rate drift per group (default: 0)",
    )
    compare_parser.add_argument(
        "--tol-rounds",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute mean-round drift per group (default: 0)",
    )

    profile_parser = commands.add_parser(
        "profile", help="cProfile a scenario run with per-phase timings"
    )
    profile_parser.add_argument(
        "--scenario", required=True, metavar="NAME", help="scenario to profile (see 'list')"
    )
    profile_parser.add_argument(
        "--quick", action="store_true", help="profile the reduced CI grid"
    )
    profile_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1; >1 mostly profiles pool waits)",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="number of profile rows to print (default: 20)",
    )
    profile_parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    profile_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also dump the raw pstats file here (for snakeviz etc.)",
    )
    return parser


def _cmd_list() -> int:
    rows = []
    for scenario in SCENARIOS.values():
        rows.append(
            [
                scenario.name,
                scenario.spec.num_cells,
                scenario.quick.num_cells,
                scenario.description,
            ]
        )
    print(format_table(["scenario", "cells", "quick cells", "description"], rows))
    return 0


def _artifact_path(
    output: Optional[pathlib.Path], names: Sequence[str], name: str, mode: str
) -> pathlib.Path:
    filename = f"{name}.{mode}.json"
    if output is None:
        return DEFAULT_OUTPUT_DIR / filename
    if len(names) == 1 and output.suffix == ".json":
        return output
    return output / filename


def _cmd_run(args: argparse.Namespace) -> int:
    engine = SweepEngine(workers=args.workers, chunk_size=args.chunk_size)
    mode = "quick" if args.quick else "full"
    names: List[str] = []
    for entry in args.scenario:
        names.extend(part for part in entry.split(",") if part)
    for name in names:
        scenario = get_scenario(name)
        spec = scenario.grid(quick=args.quick)
        result = engine.run(spec)
        path = _artifact_path(args.output, names, name, mode)
        write_artifact(path, result, mode=mode)
        if not args.no_table:
            print(render_sweep_groups(f"{name} ({mode} grid)", result.groups))
        rate = len(result.cells) / result.wall_seconds if result.wall_seconds else float("inf")
        print(
            f"{name}: {len(result.cells)} cells in {result.wall_seconds:.2f}s "
            f"({rate:.1f} cells/s, workers={result.workers}) -> {path}"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one scenario run, reporting per-phase wall-clock first.

    Phases: grid expansion, topology precomputation (the worker-cache
    warm-up, forced here so it is attributed separately), and cell
    execution.  The cache is cleared first so the run profiles a cold
    start — what a fresh worker pays — rather than whatever this process
    happened to have warm.
    """
    scenario = get_scenario(args.scenario)
    spec = scenario.grid(quick=args.quick)
    engine = SweepEngine(workers=args.workers)
    clear_worker_caches()

    phases = []
    start = time.perf_counter()
    cells = spec.expand()
    phases.append(("expand", time.perf_counter() - start, f"{len(cells)} cells"))

    start = time.perf_counter()
    warm_worker_caches(spec, cells)
    phases.append(
        ("precompute", time.perf_counter() - start, "graphs + topology knowledge")
    )

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = engine.run(spec)
    profiler.disable()
    phases.append(("execute", time.perf_counter() - start, f"workers={args.workers}"))

    total = sum(seconds for _, seconds, _ in phases)
    rows = [
        [name, f"{seconds:.4f}", f"{(seconds / total * 100 if total else 0):.1f}%", note]
        for name, seconds, note in phases
    ]
    print(format_table(["phase", "seconds", "share", "detail"], rows))
    rate = len(result.cells) / result.wall_seconds if result.wall_seconds else float("inf")
    print(f"\n{spec.name}: {len(result.cells)} cells, {rate:.1f} cells/s\n")

    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.output is not None:
        stats.dump_stats(str(args.output))
        print(f"raw profile -> {args.output}")
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    report = compare_files(
        args.baseline,
        args.current,
        tol_success=args.tol_success,
        tol_rounds=args.tol_rounds,
    )
    print(report.describe())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "profile":
            return _cmd_profile(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


__all__ = ["main"]
