"""``python -m repro.runner`` — the sweep orchestration command line.

Ten subcommands drive the whole experiment surface:

``list``
    Show every registered scenario with its grid sizes, paper artefact and
    grid-axis detail (topology families × behaviours × f values, derived
    from the plugin registries).  ``--plugins`` lists every registered
    extension instead: topology families, behaviours (with parameter
    schemas), placements, algorithms, delay models and stop policies.
``run``
    Expand a scenario's grid — a registered name (``--scenario``) or a
    declarative TOML file (``--scenario-file``) — and drive it through an
    :class:`~repro.runner.session.ExperimentSession` (optionally sharded
    across worker processes), printing the aggregate table and writing the
    canonical JSON artifact.  ``--journal`` makes the run durable (every
    completed cell appended to ``<run dir>/journal.jsonl``), ``--resume
    RUN_DIR`` continues an interrupted journaled run, ``--stop-policy
    NAME:ARGS`` seals a run early, and ``--progress`` renders a live
    progress line from the event stream.  ``--quick`` selects the CI-sized
    grid; ``--plugins MODULE`` imports a module first so it can register
    custom extensions (topologies, behaviours, stop policies, ...).
``phase``
    The phase-transition explorer (:mod:`repro.phase`): ``phase run``
    sweeps one random-family knob and writes the sweep artifact plus its
    PhaseCurve; ``phase refine`` adds the adaptive loop — store-pooled
    variance steers knob-axis bisection and seed boosting into the
    transition band under a fixed budget; ``phase show`` renders a curve
    (or derives one from a phase-shaped sweep artifact).  Document layout:
    ``docs/phase-curves.md``.
``compare``
    Diff a freshly generated artifact against a stored baseline and exit
    nonzero on drift — the regression gate CI builds on.
``profile``
    cProfile one scenario run with a per-phase wall-clock breakdown
    (expansion / topology precomputation / cell execution) — the entry
    point for hot-path investigations.
``fabric``
    The multi-host sweep fabric's worker-side entry points:
    ``fabric worker --run-dir DIR`` joins a coordinated run as a leasing
    worker (the same protocol ``run --fabric N`` uses for its local pool,
    so pointing several machines at one NFS run dir just works) and
    ``fabric status --run-dir DIR`` prints a read-only snapshot of the
    leases, shards and workers (``--store PATH`` also records the snapshot
    into the results store).  Wire format: ``docs/fabric-protocol.md``.
``store``
    Manage the cross-run results store (:mod:`repro.store`):
    ``store init`` creates/migrates the sqlite database and ``store init
    --bootstrap`` also ingests the committed corpus (every
    ``benchmarks/baselines`` artifact plus the ``BENCH_*.json`` records).
    Schema: ``docs/store-schema.md``.
``ingest``
    Idempotently ingest journals, schema-v1 artifacts, ``BENCH_*.json``
    files — or directories of them — into the results store.
``query``
    Query the store headlessly: per-commit metric trends
    (``--scenario/--metric`` plus group-axis filters), per-cell variance by
    group (``--variance``), bench trajectories (``--bench/--metric``) and
    ingest summaries (``--list``).
``serve``
    Serve the store over HTTP (stdlib only): JSON query endpoints plus an
    SSE endpoint streaming live progress of journaled/fabric runs under
    ``--runs-dir`` (``/v1/live/<run>/events``).

Exit codes (documented in :mod:`repro.runner`): 0 success — including runs
sealed early by a stop policy; 1 ``compare`` drift; 2 usage/configuration
errors; 3 a journaled run was interrupted and is resumable; 4 a fabric
worker aborted because the coordinator's heartbeat went stale.

Examples
--------
::

    python -m repro.runner list --plugins
    python -m repro.runner run --scenario figure1b --workers 4 --quick
    python -m repro.runner run --scenario table2 --journal --progress
    python -m repro.runner run --resume benchmarks/results/runs/table2.full
    python -m repro.runner run --scenario necessity --stop-policy max-cells:100
    python -m repro.runner run --scenario figure1b --fabric 3 --progress
    python -m repro.runner fabric worker --run-dir /nfs/sweeps/figure1b.full
    python -m repro.runner fabric status --run-dir /nfs/sweeps/figure1b.full
    python -m repro.runner phase run --scenario phase_density --quick --workers 4
    python -m repro.runner phase refine --scenario phase_density --quick \\
        --budget 96 --resolution 0.05
    python -m repro.runner phase show benchmarks/results/phase_density.quick.curve.json
    python -m repro.runner compare benchmarks/baselines/figure1b.quick.json \\
        benchmarks/results/figure1b.quick.json
    python -m repro.runner profile --scenario definition1 --quick --top 15
    python -m repro.runner store init --bootstrap
    python -m repro.runner ingest benchmarks/results/runs/table2.full
    python -m repro.runner query --scenario figure1b --metric success_rate
    python -m repro.runner query --scenario table1 --variance --mode full
    python -m repro.runner query --bench store --metric ingest.runs_per_second
    python -m repro.runner serve --port 8742
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import importlib
import io
import json
import os
import pathlib
import pstats
import sys
import time
from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import PhaseError, ReproError
from repro.graphs.bitset_backends import backend_policy
from repro.registry import ALL_REGISTRIES
from repro.runner.artifacts import compare_files
from repro.runner.fabric import (
    EXIT_ORPHANED,
    FabricConfig,
    FabricCoordinator,
    FabricWorker,
    fabric_status,
)
from repro.runner.harness import NOT_APPLICABLE, GridSpec, SweepEngine
from repro.runner.reporting import SessionProgress, format_table, render_fabric_status
from repro.runner.scenario_files import Scenario, load_scenario_file
from repro.runner.scenarios import (
    SCENARIOS,
    clear_worker_caches,
    get_scenario,
    warm_worker_caches,
)
from repro.runner.worker_cache import bitset_cache_stats, worker_cache_stats
from repro.store.store import DEFAULT_STORE_PATH, GROUP_AXES
from repro.runner.session import (
    CellCompleted,
    ExperimentSession,
    RunFinished,
    RunStarted,
)

#: Default artifact directory (relative to the invocation directory).
DEFAULT_OUTPUT_DIR = pathlib.Path("benchmarks") / "results"

#: Default parent of journaled run directories (``<name>.<mode>`` inside).
DEFAULT_RUNS_DIR = DEFAULT_OUTPUT_DIR / "runs"

# Process exit codes (also documented in repro/runner/__init__.py).
EXIT_OK = 0  # success, including runs sealed early by a stop policy
EXIT_DRIFT = 1  # `compare` found drift against the baseline
EXIT_ERROR = 2  # usage or configuration error (ReproError)
EXIT_INTERRUPTED = 3  # journaled run interrupted; resumable via run --resume
EXIT_FABRIC_ORPHANED = EXIT_ORPHANED  # 4: fabric worker lost its coordinator


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Sharded sweep orchestration over the paper's experiment grids.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered scenarios (or, with --plugins, every extension)"
    )
    list_parser.add_argument(
        "--plugins",
        action="store_true",
        help="list every registered extension (topologies, behaviours, placements, "
        "algorithms, delay models) instead of scenarios",
    )

    run_parser = commands.add_parser("run", help="run a scenario and write its JSON artifact")
    run_parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="registered scenario to run (repeatable; see 'list')",
    )
    run_parser.add_argument(
        "--scenario-file",
        action="append",
        default=None,
        type=pathlib.Path,
        metavar="PATH",
        help="declarative scenario TOML file to run (repeatable)",
    )
    run_parser.add_argument(
        "--plugins",
        action="append",
        default=None,
        metavar="MODULE",
        help="import MODULE before running so it can register custom extensions "
        "(repeatable; the module must be on PYTHONPATH)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded execution (default: 1, serial)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="cells per pool task (default: balanced automatically)",
    )
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="run the reduced CI grid instead of the full grid",
    )
    run_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="artifact path (single scenario) or directory (default: benchmarks/results/)",
    )
    run_parser.add_argument(
        "--no-table", action="store_true", help="suppress the aggregate table on stdout"
    )
    run_parser.add_argument(
        "--journal",
        action="store_true",
        help="journal every completed cell to <run dir>/journal.jsonl (crash-safe; "
        "interrupted runs resume with --resume and exit with code 3)",
    )
    run_parser.add_argument(
        "--run-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="run directory for --journal (default: benchmarks/results/runs/<name>.<mode>; "
        "with several scenarios, a <name>.<mode> subdirectory per scenario)",
    )
    run_parser.add_argument(
        "--resume",
        type=pathlib.Path,
        default=None,
        metavar="RUN_DIR",
        help="resume an interrupted journaled run from its run directory "
        "(the grid, mode and provenance come from the journal header)",
    )
    run_parser.add_argument(
        "--stop-policy",
        action="append",
        default=None,
        metavar="NAME:ARGS",
        help="seal the run early via a registered stop policy, e.g. max-cells:100, "
        "max-wall-time:3600, group-converged:3 (repeatable; see 'list --plugins')",
    )
    run_parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live one-line progress view from the session event stream",
    )
    run_parser.add_argument(
        "--bitset-backend",
        default=None,
        metavar="NAME",
        help="bitset computation backend: a registered name (see 'list --plugins') "
        "or 'auto' (default: auto — numpy on large graphs when installed); "
        "exported as REPRO_BITSET_BACKEND so sweep workers inherit it",
    )
    run_parser.add_argument(
        "--fabric",
        type=int,
        default=None,
        metavar="N",
        help="run through the multi-host sweep fabric with N leased pool workers "
        "(0 = coordinator only; external workers join with 'fabric worker "
        "--run-dir'); always journaled, resumable with 'run --resume DIR "
        "--fabric N' — see docs/fabric-protocol.md",
    )
    run_parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fabric lease expiry: a worker that misses heartbeats this long is "
        "fenced and its unfinished range re-leased (default: 30; must exceed "
        "the slowest single cell)",
    )
    run_parser.add_argument(
        "--worker-throttle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="artificial per-cell delay in fabric workers (straggler/crash-window "
        "simulation for fault-injection tests; default: 0)",
    )

    phase_parser = commands.add_parser(
        "phase",
        help="phase-transition explorer: sweep a family knob, refine the "
        "transition band, render curves (docs/phase-curves.md)",
    )
    phase_commands = phase_parser.add_subparsers(dest="phase_command", required=True)
    phase_run = phase_commands.add_parser(
        "run", help="run one phase scenario; write its sweep artifact and PhaseCurve"
    )
    phase_refine = phase_commands.add_parser(
        "refine",
        help="run + adaptively refine: bisect the knob axis and concentrate "
        "seeds in the transition band under a fixed extra-cell budget",
    )
    for sub in (phase_run, phase_refine):
        sub.add_argument(
            "--scenario",
            default=None,
            metavar="NAME",
            help="registered phase scenario to explore (see 'list')",
        )
        sub.add_argument(
            "--scenario-file",
            type=pathlib.Path,
            default=None,
            metavar="PATH",
            help="declarative scenario TOML file to explore instead",
        )
        sub.add_argument(
            "--plugins",
            action="append",
            default=None,
            metavar="MODULE",
            help="import MODULE first so it can register custom topologies "
            "(repeatable)",
        )
        sub.add_argument(
            "--quick", action="store_true", help="explore the reduced CI grid"
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker processes per sweep (default: 1, serial)",
        )
        sub.add_argument(
            "--output",
            type=pathlib.Path,
            default=None,
            metavar="PATH",
            help="PhaseCurve path (*.json) or directory "
            "(default: benchmarks/results/<name>.<mode>.curve.json)",
        )
        sub.add_argument(
            "--progress",
            action="store_true",
            help="render a live one-line progress view per sweep",
        )
        sub.add_argument(
            "--no-curve", action="store_true", help="suppress the curve rendering on stdout"
        )
    phase_run.add_argument(
        "--journal",
        action="store_true",
        help="journal the sweep (resumable via 'run --resume <run dir>'; derive "
        "the curve from the finished artifact with 'phase show')",
    )
    phase_run.add_argument(
        "--run-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="run directory for --journal (default: benchmarks/results/runs/"
        "<name>.<mode>)",
    )
    phase_refine.add_argument(
        "--budget",
        type=int,
        required=True,
        metavar="CELLS",
        help="cap on cells spent beyond the base sweep",
    )
    phase_refine.add_argument(
        "--resolution",
        type=float,
        required=True,
        metavar="STEP",
        help="target knob-axis resolution inside the transition band",
    )
    phase_refine.add_argument(
        "--variance-floor",
        type=float,
        default=None,
        metavar="VAR",
        help="Bernoulli variance p(1-p) marking the transition band "
        "(default: 0.09, i.e. 0.1 < p < 0.9)",
    )
    phase_refine.add_argument(
        "--seed-boost",
        type=int,
        default=None,
        metavar="K",
        help="target per-point seed depth in the band, as a multiple of the "
        "base seed count (default: 4)",
    )
    phase_refine.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        metavar="N",
        help="refinement round cap (default: 8)",
    )
    phase_refine.add_argument(
        "--run-root",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="journal the base sweep to <DIR>/base and round r to <DIR>/round-r "
        "(each resumable; default: in-memory)",
    )
    phase_refine.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="pool variance through this results store and ingest the refined "
        "curve into it (default: a private throwaway store)",
    )
    phase_show = phase_commands.add_parser(
        "show", help="render a PhaseCurve (or derive one from a sweep artifact)"
    )
    phase_show.add_argument(
        "path",
        type=pathlib.Path,
        help="a PhaseCurve document or a phase-shaped sweep artifact",
    )

    fabric_parser = commands.add_parser(
        "fabric", help="multi-host sweep fabric: join as a worker, or inspect a run"
    )
    fabric_commands = fabric_parser.add_subparsers(dest="fabric_command", required=True)
    worker_parser = fabric_commands.add_parser(
        "worker",
        help="join a fabric run directory as a leasing worker (multi-host: any "
        "machine sharing the directory, e.g. over NFS)",
    )
    worker_parser.add_argument(
        "--run-dir",
        type=pathlib.Path,
        required=True,
        metavar="DIR",
        help="the fabric run directory published by 'run --fabric'",
    )
    worker_parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="filename-safe worker identity; also names the result shard "
        "shards/<ID>.jsonl (default: w<pid>)",
    )
    worker_parser.add_argument(
        "--throttle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the manifest's per-cell throttle for this worker",
    )
    worker_parser.add_argument(
        "--plugins",
        action="append",
        default=None,
        metavar="MODULE",
        help="import MODULE before joining (in addition to the plugin modules "
        "recorded in the fabric manifest)",
    )
    worker_parser.add_argument(
        "--bitset-backend",
        default=None,
        metavar="NAME",
        help="bitset computation backend for this worker (a registered name or "
        "'auto'; exported as REPRO_BITSET_BACKEND)",
    )
    status_parser = fabric_commands.add_parser(
        "status", help="print a read-only snapshot of a fabric run directory"
    )
    status_parser.add_argument(
        "--run-dir",
        type=pathlib.Path,
        required=True,
        metavar="DIR",
        help="the fabric run directory to inspect",
    )
    status_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw snapshot as JSON instead of the human-readable view",
    )
    status_parser.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also record this snapshot into the results store at PATH, so the "
        "live run appears in 'serve' (/v1/snapshots) without extra plumbing",
    )

    compare_parser = commands.add_parser(
        "compare", help="diff an artifact against a baseline; exit 1 on drift"
    )
    compare_parser.add_argument("baseline", type=pathlib.Path, help="baseline artifact (JSON)")
    compare_parser.add_argument("current", type=pathlib.Path, help="current artifact (JSON)")
    compare_parser.add_argument(
        "--tol-success",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute success-rate drift per group (default: 0)",
    )
    compare_parser.add_argument(
        "--tol-rounds",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute mean-round drift per group (default: 0)",
    )

    profile_parser = commands.add_parser(
        "profile", help="cProfile a scenario run with per-phase timings"
    )
    profile_parser.add_argument(
        "--scenario", required=True, metavar="NAME", help="scenario to profile (see 'list')"
    )
    profile_parser.add_argument(
        "--quick", action="store_true", help="profile the reduced CI grid"
    )
    profile_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1; >1 mostly profiles pool waits)",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="number of profile rows to print (default: 20)",
    )
    profile_parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    profile_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also dump the raw pstats file here (for snakeviz etc.)",
    )
    profile_parser.add_argument(
        "--bitset-backend",
        default=None,
        metavar="NAME",
        help="bitset computation backend to profile under (a registered name "
        "or 'auto'; exported as REPRO_BITSET_BACKEND)",
    )

    def store_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--store",
            type=pathlib.Path,
            default=DEFAULT_STORE_PATH,
            metavar="PATH",
            help=f"results store database (default: {DEFAULT_STORE_PATH})",
        )

    store_parser = commands.add_parser(
        "store", help="manage the cross-run results store (docs/store-schema.md)"
    )
    store_commands = store_parser.add_subparsers(dest="store_command", required=True)
    init_parser = store_commands.add_parser(
        "init", help="create the results store (migrating an existing one forward)"
    )
    store_option(init_parser)
    init_parser.add_argument(
        "--bootstrap",
        action="store_true",
        help="also ingest the committed corpus: benchmarks/baselines/*.json plus "
        "benchmarks/results/BENCH_*.json (idempotent)",
    )
    init_parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path("."),
        metavar="DIR",
        help="repository root the --bootstrap corpus is resolved against "
        "(default: the current directory)",
    )

    ingest_parser = commands.add_parser(
        "ingest",
        help="ingest journals, sweep artifacts and BENCH_*.json files into the "
        "results store (idempotent)",
    )
    ingest_parser.add_argument(
        "sources",
        nargs="+",
        type=pathlib.Path,
        metavar="PATH",
        help="journal .jsonl / run directory / artifact .json / BENCH_*.json file, "
        "or a directory tree of them",
    )
    store_option(ingest_parser)
    ingest_parser.add_argument(
        "--json", action="store_true", help="emit the ingest reports as JSON"
    )

    query_parser = commands.add_parser(
        "query", help="query the results store: trends, variance, bench trajectories"
    )
    store_option(query_parser)
    query_parser.add_argument(
        "--scenario", default=None, metavar="NAME", help="scenario to query"
    )
    query_parser.add_argument(
        "--metric",
        default=None,
        metavar="NAME",
        help="metric to trend: success_rate (default), mean_rounds or cells at run "
        "level; with group-axis filters also mean_messages/runs; for --bench, a "
        "dotted metric path",
    )
    query_parser.add_argument(
        "--mode", choices=("quick", "full"), default=None, help="restrict to one mode"
    )
    for axis in GROUP_AXES:
        query_parser.add_argument(
            f"--{axis}",
            default=None,
            metavar="VALUE",
            help=f"group-axis filter: {axis} (switches the trend to group level)",
        )
    query_parser.add_argument(
        "--variance",
        action="store_true",
        help="per-cell variance by group, pooled across runs (highest "
        "rounds-variance first)",
    )
    query_parser.add_argument(
        "--bench",
        default=None,
        metavar="NAME",
        help="bench family to query; with --metric, its trajectory across ingests, "
        "without, the recorded metric names",
    )
    query_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_store",
        help="summarize everything ingested (scenarios and bench families)",
    )
    query_parser.add_argument(
        "--json", action="store_true", help="emit the query result as JSON"
    )

    serve_parser = commands.add_parser(
        "serve",
        help="serve the results store and live runs over HTTP (JSON + SSE; stdlib only)",
    )
    store_option(serve_parser)
    serve_parser.add_argument(
        "--runs-dir",
        type=pathlib.Path,
        default=DEFAULT_RUNS_DIR,
        metavar="DIR",
        help="directory of journaled run dirs to stream at /v1/live "
        f"(default: {DEFAULT_RUNS_DIR})",
    )
    serve_parser.add_argument(
        "--host", default=None, metavar="ADDR", help="bind address (default: loopback)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="N", help="bind port (default: 8742)"
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    return parser


def _apply_bitset_backend(name: Optional[str]) -> None:
    """Export ``--bitset-backend`` as ``REPRO_BITSET_BACKEND``.

    The flag goes through the environment rather than a parameter so
    forked/spawned sweep workers inherit the choice for free.  The name is
    resolved once up front: unknown names fail fast with the registry's
    did-you-mean error, and naming ``numpy`` without numpy installed raises
    before any cells run.
    """
    if name is None:
        return
    from repro.graphs.bitset_backends import ENV_VAR, get_backend

    os.environ[ENV_VAR] = name.strip().lower() or "auto"
    get_backend(0)


def _axes_detail(spec: GridSpec) -> str:
    """One-line grid-axis summary (topology families × behaviours × f).

    Derived from the spec through the registries (the families are counted
    as registered names), not hand-maintained per scenario.
    """
    families = Counter(topology.family for topology in spec.topologies)
    family_text = ",".join(
        f"{name}x{count}" if count > 1 else name for name, count in families.items()
    )
    behaviors = [behavior for behavior in spec.behaviors if behavior != NOT_APPLICABLE]
    behavior_text = ",".join(behaviors) if behaviors else "(no adversary)"
    f_text = ",".join(str(f) for f in spec.f_values)
    return f"{family_text} | f={f_text} | {behavior_text}"


def _cmd_list_plugins() -> int:
    """The ``list --plugins`` listing: every registered extension point."""
    for registry_name, registry in ALL_REGISTRIES.items():
        rows = []
        for entry in registry.entries():
            params = entry.metadata.get("params", ())
            kind = entry.metadata.get("kind", "") or getattr(entry.obj, "kind", "")
            spec_text = entry.name + (f":{','.join(params)}" if params else "")
            rows.append([spec_text, kind, entry.summary])
        print(format_table([f"{registry_name} ({len(rows)})", "kind", "summary"], rows))
        print()
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.plugins:
        return _cmd_list_plugins()
    rows = []
    for scenario in SCENARIOS.values():
        rows.append(
            [
                scenario.name,
                ",".join(scenario.spec.algorithms),
                scenario.spec.num_cells,
                scenario.quick.num_cells,
                _axes_detail(scenario.spec),
                scenario.description,
            ]
        )
    print(
        format_table(
            ["scenario", "algorithms", "cells", "quick", "grid axes", "description"], rows
        )
    )
    return 0


def _artifact_path(
    output: Optional[pathlib.Path], count: int, name: str, mode: str
) -> pathlib.Path:
    filename = f"{name}.{mode}.json"
    if output is None:
        return DEFAULT_OUTPUT_DIR / filename
    if count == 1 and output.suffix == ".json":
        return output
    return output / filename


def _selected_scenarios(args: argparse.Namespace) -> List[Scenario]:
    """Resolve ``--scenario`` names and ``--scenario-file`` paths, in order."""
    scenarios: List[Scenario] = []
    for entry in args.scenario or ():
        for name in entry.split(","):
            if name:
                scenarios.append(get_scenario(name))
    for path in args.scenario_file or ():
        scenarios.append(load_scenario_file(path))
    if not scenarios:
        raise ReproError("nothing to run: pass --scenario NAME and/or --scenario-file PATH")
    return scenarios


def _run_dir_for(args: argparse.Namespace, count: int, name: str, mode: str) -> pathlib.Path:
    if args.run_dir is not None:
        if count == 1:
            return args.run_dir
        return args.run_dir / f"{name}.{mode}"
    return DEFAULT_RUNS_DIR / f"{name}.{mode}"


def _drive_session(
    args: argparse.Namespace,
    session: ExperimentSession,
    path: pathlib.Path,
) -> int:
    """Consume one session's event stream: progress, artifact, summary."""
    progress = SessionProgress()
    try:
        for event in session.events():
            progress.observe(event)
            if args.progress and isinstance(event, (RunStarted, CellCompleted, RunFinished)):
                print(f"\r{progress.render_line()}", end="", flush=True)
    except KeyboardInterrupt:
        if args.progress:
            print()
        if session.journaling:
            print(
                f"interrupted after {progress.completed} cell(s); completed work is "
                f"journaled in {session.run_dir}"
            )
            print(f"resume with: python -m repro.runner run --resume {session.run_dir}")
            return EXIT_INTERRUPTED
        raise
    if args.progress:
        print()
    payload = session.write_artifact(path)
    if not args.no_table:
        print(progress.render_summary())
    finished = session.finished
    assert finished is not None  # events() always ends with RunFinished
    if finished.reason != "completed":
        policy = finished.reason.partition(":")[2]
        print(
            f"{finished.scenario}: sealed early by stop policy {policy!r} "
            f"({finished.detail}) — partial artifact covers "
            f"{finished.completed}/{finished.total} cells"
        )
    resumed = f", {progress.replayed} replayed from journal" if progress.replayed else ""
    wall = finished.wall_seconds
    rate = finished.completed / wall if wall else float("inf")
    journal_note = f" (journal: {session.journal_path})" if session.journaling else ""
    print(
        f"{finished.scenario}: {payload['totals']['cells']} cells in "
        f"{finished.wall_seconds:.2f}s ({rate:.1f} cells/s, workers={session.workers}"
        f"{resumed}) -> {path}{journal_note}"
    )
    return EXIT_OK


def _fabric_config(args: argparse.Namespace) -> FabricConfig:
    config = FabricConfig(workers=args.fabric, plugins=tuple(args.plugins or ()))
    if args.lease_ttl is not None:
        config = dataclasses.replace(config, lease_ttl=args.lease_ttl)
    if args.worker_throttle is not None:
        config = dataclasses.replace(config, worker_throttle=args.worker_throttle)
    return config


def _drive_fabric(
    args: argparse.Namespace,
    coordinator: FabricCoordinator,
    path: pathlib.Path,
) -> int:
    """Drive one fabric coordinator to its seal: progress, artifact, summary."""
    progress = SessionProgress()

    def observe(event) -> None:
        progress.observe(event)
        if args.progress and isinstance(event, (RunStarted, CellCompleted, RunFinished)):
            print(f"\r{progress.render_line()}", end="", flush=True)

    try:
        coordinator.run(observer=observe)
    except KeyboardInterrupt:
        if args.progress:
            print()
        print(
            f"interrupted after {progress.completed} merged cell(s); durable work is "
            f"journaled in {coordinator.run_dir}"
        )
        print(
            f"resume with: python -m repro.runner run --resume {coordinator.run_dir} "
            f"--fabric {coordinator.config.workers}"
        )
        return EXIT_INTERRUPTED
    if args.progress:
        print()
    payload = coordinator.write_artifact(path)
    if not args.no_table:
        print(progress.render_summary())
    finished = coordinator.finished
    assert finished is not None  # run() only returns after the seal
    if finished.reason != "completed":
        policy = finished.reason.partition(":")[2]
        print(
            f"{finished.scenario}: sealed early by stop policy {policy!r} "
            f"({finished.detail}) — partial artifact covers "
            f"{finished.completed}/{finished.total} cells"
        )
    report = coordinator.report
    fabric_notes = [f"merged={report.merged}", f"leases={report.leases_created}"]
    if report.fenced:
        fabric_notes.append(f"fenced={report.fenced}")
    if report.splits:
        fabric_notes.append(f"splits={report.splits}")
    if report.rejected_stale:
        fabric_notes.append(f"stale-rejected={report.rejected_stale}")
    if report.duplicates:
        fabric_notes.append(f"duplicates={report.duplicates}")
    wall = finished.wall_seconds
    rate = finished.completed / wall if wall else float("inf")
    print(
        f"{finished.scenario}: {payload['totals']['cells']} cells in "
        f"{wall:.2f}s ({rate:.1f} cells/s, fabric workers={coordinator.config.workers}, "
        f"{' '.join(fabric_notes)}) -> {path} "
        f"(journal: {coordinator.run_dir / 'journal.jsonl'})"
    )
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    for module in args.plugins or ():
        try:
            importlib.import_module(module)
        except ImportError as error:
            raise ReproError(f"cannot import plugin module {module!r}: {error}") from None
    # After plugin imports so a plugin-registered backend is a valid name.
    _apply_bitset_backend(args.bitset_backend)
    policies = tuple(args.stop_policy or ())
    if args.fabric is not None:
        if args.fabric < 0:
            raise ReproError("--fabric N needs N >= 0 (0 = coordinator only)")
        if args.workers != 1:
            raise ReproError(
                "--fabric supersedes pool sharding; drop --workers (fabric workers "
                "are separate leasing processes)"
            )
        if args.chunk_size is not None:
            raise ReproError(
                "--chunk-size does not apply to --fabric (lease granularity is "
                "derived from the worker count; see docs/fabric-protocol.md)"
            )
    elif args.lease_ttl is not None or args.worker_throttle is not None:
        raise ReproError("--lease-ttl/--worker-throttle only apply with --fabric N")
    if args.resume is not None:
        if args.scenario or args.scenario_file or args.journal or args.run_dir:
            raise ReproError(
                "--resume reads the grid from the journal header; drop "
                "--scenario/--scenario-file/--journal/--run-dir"
            )
        if args.fabric is not None:
            coordinator = FabricCoordinator.resume(
                args.resume, config=_fabric_config(args), stop_policies=policies
            )
            path = _artifact_path(args.output, 1, coordinator.spec.name, coordinator.mode)
            return _drive_fabric(args, coordinator, path)
        session = ExperimentSession.resume(
            args.resume,
            workers=args.workers,
            chunk_size=args.chunk_size,
            stop_policies=policies,
        )
        path = _artifact_path(args.output, 1, session.spec.name, session.mode)
        return _drive_session(args, session, path)
    mode = "quick" if args.quick else "full"
    scenarios = _selected_scenarios(args)
    if args.fabric is not None:
        if len(scenarios) > 1:
            raise ReproError(
                "--fabric drives one scenario per run directory; pass a single "
                "--scenario/--scenario-file"
            )
        scenario = scenarios[0]
        coordinator = FabricCoordinator(
            scenario.grid(quick=args.quick),
            run_dir=_run_dir_for(args, 1, scenario.name, mode),
            mode=mode,
            config=_fabric_config(args),
            stop_policies=policies,
        )
        path = _artifact_path(args.output, 1, scenario.name, mode)
        return _drive_fabric(args, coordinator, path)
    planned: List[Tuple[ExperimentSession, pathlib.Path]] = []
    for scenario in scenarios:
        run_dir = None
        if args.journal:
            run_dir = _run_dir_for(args, len(scenarios), scenario.name, mode)
        session = ExperimentSession(
            scenario.grid(quick=args.quick),
            mode=mode,
            workers=args.workers,
            chunk_size=args.chunk_size,
            run_dir=run_dir,
            stop_policies=policies,
        )
        planned.append((session, _artifact_path(args.output, len(scenarios), scenario.name, mode)))
    for session, path in planned:
        code = _drive_session(args, session, path)
        if code != EXIT_OK:
            return code
    return EXIT_OK


def _phase_scenario(args: argparse.Namespace) -> Scenario:
    if (args.scenario is None) == (args.scenario_file is None):
        raise ReproError(
            "pass exactly one of --scenario NAME or --scenario-file PATH"
        )
    if args.scenario is not None:
        return get_scenario(args.scenario)
    return load_scenario_file(args.scenario_file)


def _curve_path(output: Optional[pathlib.Path], name: str, mode: str) -> pathlib.Path:
    filename = f"{name}.{mode}.curve.json"
    if output is None:
        return DEFAULT_OUTPUT_DIR / filename
    if output.suffix == ".json":
        return output
    return output / filename


def _phase_observer(args: argparse.Namespace, progress: SessionProgress):
    def observe(event) -> None:
        progress.observe(event)
        if args.progress and isinstance(event, (RunStarted, CellCompleted, RunFinished)):
            print(f"\r{progress.render_line()}", end="", flush=True)
        if args.progress and isinstance(event, RunFinished):
            print()

    return observe


def _cmd_phase(args: argparse.Namespace) -> int:
    from repro.phase import (
        curve_from_artifact,
        load_phase_curve,
        refine_phase,
        render_curve,
        run_phase,
        write_phase_curve,
    )
    from repro.runner.artifacts import load_artifact, write_payload

    if args.phase_command == "show":
        try:
            payload = load_phase_curve(args.path)
        except PhaseError:
            payload = curve_from_artifact(load_artifact(args.path))
        print(render_curve(payload))
        return EXIT_OK

    for module in args.plugins or ():
        try:
            importlib.import_module(module)
        except ImportError as error:
            raise ReproError(f"cannot import plugin module {module!r}: {error}") from None
    scenario = _phase_scenario(args)
    mode = "quick" if args.quick else "full"
    curve_path = _curve_path(args.output, scenario.name, mode)
    progress = SessionProgress()
    observer = _phase_observer(args, progress)

    if args.phase_command == "run":
        run_dir = None
        if args.journal or args.run_dir is not None:
            run_dir = _run_dir_for(args, 1, scenario.name, mode)
        sweep_path = curve_path.parent / f"{scenario.name}.{mode}.json"
        try:
            run = run_phase(
                scenario,
                quick=args.quick,
                workers=args.workers,
                run_dir=run_dir,
                observer=observer,
            )
        except KeyboardInterrupt:
            if args.progress:
                print()
            if run_dir is not None:
                print(
                    f"interrupted after {progress.completed} cell(s); resume the sweep "
                    f"with: python -m repro.runner run --resume {run_dir}\n"
                    f"then derive the curve with: python -m repro.runner phase show "
                    f"{sweep_path}"
                )
                return EXIT_INTERRUPTED
            raise
        write_payload(sweep_path, run.sweep)
        write_phase_curve(curve_path, run.curve)
        if not args.no_curve:
            print(render_curve(run.curve))
        print(
            f"{scenario.name}: {run.curve['budget']['spent_cells']} cells -> "
            f"{sweep_path} + {curve_path}"
        )
        return EXIT_OK

    assert args.phase_command == "refine"
    store = None
    if args.store is not None:
        from repro.store.store import ResultsStore

        store = ResultsStore(args.store)
    kwargs = {}
    if args.variance_floor is not None:
        kwargs["variance_floor"] = args.variance_floor
    if args.seed_boost is not None:
        kwargs["seed_boost"] = args.seed_boost
    if args.max_rounds is not None:
        kwargs["max_rounds"] = args.max_rounds
    try:
        refinement = refine_phase(
            scenario,
            quick=args.quick,
            budget_cells=args.budget,
            resolution=args.resolution,
            workers=args.workers,
            run_root=args.run_root,
            store=store,
            observer=observer,
            **kwargs,
        )
        if store is not None:
            store.ingest_phase_payload(refinement.curve, source_path=curve_path)
    except KeyboardInterrupt:
        if args.progress:
            print()
        if args.run_root is not None:
            print(
                f"interrupted after {progress.completed} cell(s) of the current "
                f"sweep; its journal under {args.run_root} resumes with "
                "'python -m repro.runner run --resume <run dir>', then re-run "
                "'phase refine' with the same --store to pool the finished work"
            )
            return EXIT_INTERRUPTED
        raise
    finally:
        if store is not None:
            store.close()
    write_phase_curve(curve_path, refinement.curve)
    if not args.no_curve:
        print(render_curve(refinement.curve))
    budget = refinement.curve["budget"]
    rounds = refinement.curve["refinement"]["rounds"]
    concentration = budget["concentration_ratio"]
    concentration_note = (
        f", band concentration {concentration:.2f}x" if concentration is not None else ""
    )
    print(
        f"{scenario.name}: {budget['spent_cells']} cells across {rounds} refinement "
        f"round(s) (uniform-at-resolution: {budget['uniform_cells']}"
        f"{concentration_note}) -> {curve_path}"
    )
    return EXIT_OK


def _cmd_fabric(args: argparse.Namespace) -> int:
    if args.fabric_command == "worker":
        for module in args.plugins or ():
            try:
                importlib.import_module(module)
            except ImportError as error:
                raise ReproError(
                    f"cannot import plugin module {module!r}: {error}"
                ) from None
        _apply_bitset_backend(args.bitset_backend)
        worker_id = args.worker_id if args.worker_id is not None else f"w{os.getpid()}"
        worker = FabricWorker(args.run_dir, worker_id, throttle=args.throttle)
        try:
            return worker.run()
        except KeyboardInterrupt:
            return EXIT_INTERRUPTED
    if args.fabric_command == "status":
        snapshot = fabric_status(args.run_dir)
        if args.store is not None:
            from repro.store.store import ResultsStore

            with ResultsStore(args.store) as store:
                snapshot_id = store.record_snapshot(snapshot)
            # stderr so `--json` stdout stays pure JSON for pipelines
            print(
                f"snapshot {snapshot_id} recorded in {args.store}", file=sys.stderr
            )
        if args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(render_fabric_status(snapshot))
        return EXIT_OK
    raise AssertionError(f"unhandled fabric command {args.fabric_command!r}")


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one scenario run, reporting per-phase wall-clock first.

    Phases: grid expansion, topology precomputation (the worker-cache
    warm-up, forced here so it is attributed separately), and cell
    execution.  The cache is cleared first so the run profiles a cold
    start — what a fresh worker pays — rather than whatever this process
    happened to have warm.
    """
    _apply_bitset_backend(args.bitset_backend)
    scenario = get_scenario(args.scenario)
    spec = scenario.grid(quick=args.quick)
    engine = SweepEngine(workers=args.workers)
    clear_worker_caches()

    phases = []
    start = time.perf_counter()
    cells = spec.expand()
    phases.append(("expand", time.perf_counter() - start, f"{len(cells)} cells"))

    start = time.perf_counter()
    warm_worker_caches(spec, cells)
    phases.append(
        ("precompute", time.perf_counter() - start, "graphs + topology knowledge")
    )

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = engine.run(spec)
    profiler.disable()
    phases.append(("execute", time.perf_counter() - start, f"workers={args.workers}"))

    total = sum(seconds for _, seconds, _ in phases)
    rows = [
        [name, f"{seconds:.4f}", f"{(seconds / total * 100 if total else 0):.1f}%", note]
        for name, seconds, note in phases
    ]
    caches = worker_cache_stats()
    bitset = bitset_cache_stats()
    rows.append(
        [
            "bitset",
            "-",
            "-",
            f"backend={backend_policy()} indexes={bitset['indexes']} "
            f"reach-memo={bitset['reach_exclusions']} "
            f"source-memo={bitset['source_components']}",
        ]
    )
    rows.append(
        [
            "caches",
            "-",
            "-",
            f"graphs={caches['graphs']} knowledge={caches['knowledge']} "
            f"(this process; workers keep their own)",
        ]
    )
    print(format_table(["phase", "seconds", "share", "detail"], rows))
    rate = len(result.cells) / result.wall_seconds if result.wall_seconds else float("inf")
    print(f"\n{spec.name}: {len(result.cells)} cells, {rate:.1f} cells/s\n")

    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.output is not None:
        stats.dump_stats(str(args.output))
        print(f"raw profile -> {args.output}")
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue())
    return 0


def _format_ts(timestamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(timestamp))


def _short_commit(commit: str) -> str:
    return commit[:12] if commit else "(no commit)"


def _ingest_summary(reports) -> str:
    counts = Counter(report.action for report in reports)
    parts = [
        f"{counts[key]} {key}"
        for key in ("inserted", "replaced", "unchanged", "skipped")
        if counts[key]
    ]
    return ", ".join(parts) if parts else "nothing ingested"


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store.store import ResultsStore

    if args.store_command != "init":
        raise AssertionError(f"unhandled store command {args.store_command!r}")
    from repro.store.schema import SCHEMA_VERSION

    with ResultsStore(args.store) as store:
        print(f"results store {store.path} (schema version {SCHEMA_VERSION})")
        if args.bootstrap:
            reports = store.bootstrap(args.root)
            for report in reports:
                if report.action != "unchanged":
                    print(f"  {report.action} {report.kind}: {report.path}")
            print(f"bootstrap: {_ingest_summary(reports)}")
    return EXIT_OK


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.store.store import ResultsStore

    reports = []
    with ResultsStore(args.store) as store:
        for source in args.sources:
            reports.extend(store.ingest(source))
    if args.json:
        print(json.dumps([dataclasses.asdict(report) for report in reports], indent=2))
    else:
        for report in reports:
            detail = f" ({report.detail})" if report.detail else ""
            print(f"{report.action} {report.kind}: {report.path}{detail}")
        print(_ingest_summary(reports))
    return EXIT_OK


def _query_axes(args: argparse.Namespace) -> dict:
    axes = {}
    for axis in GROUP_AXES:
        value = getattr(args, axis)
        if value is None:
            continue
        if axis == "f":
            try:
                value = int(value)
            except ValueError:
                raise ReproError(f"--f must be an integer, got {value!r}") from None
        axes[axis] = value
    return axes


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.store.store import ResultsStore

    selected = [
        flag
        for flag, on in (
            ("--scenario", args.scenario is not None),
            ("--bench", args.bench is not None),
            ("--list", args.list_store),
        )
        if on
    ]
    if len(selected) != 1:
        raise ReproError(
            "pass exactly one of --scenario NAME, --bench NAME or --list "
            f"(got {', '.join(selected) if selected else 'none'})"
        )
    axes = _query_axes(args)
    with ResultsStore(args.store, readonly=True) as store:
        if args.list_store:
            payload = {"scenarios": store.scenarios(), "benches": store.bench_names()}
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
                return EXIT_OK
            rows = [
                [s["scenario"], s["modes"], s["runs"], s["cells"], s["commits"],
                 _format_ts(s["last_ingested"])]
                for s in payload["scenarios"]
            ]
            print(format_table(
                ["scenario", "modes", "runs", "cells", "commits", "last ingested"], rows
            ))
            if payload["benches"]:
                print()
                rows = [
                    [b["name"], b["records"], _format_ts(b["last_ingested"])]
                    for b in payload["benches"]
                ]
                print(format_table(["bench", "records", "last ingested"], rows))
            return EXIT_OK
        if args.bench is not None:
            if axes or args.variance:
                raise ReproError("--bench does not take group axes or --variance")
            if args.metric is None:
                metrics = store.bench_metrics(args.bench)
                if args.json:
                    print(json.dumps({"name": args.bench, "metrics": metrics}, indent=2))
                else:
                    for metric in metrics:
                        print(metric)
                return EXIT_OK
            points = store.bench_trend(args.bench, args.metric)
            if args.json:
                print(json.dumps(
                    [dataclasses.asdict(point) for point in points], indent=2
                ))
                return EXIT_OK
            rows = [
                [_short_commit(p.git_commit), f"{p.value:g}", _format_ts(p.ingested_at)]
                for p in points
            ]
            print(format_table(["commit", args.metric, "ingested"], rows))
            return EXIT_OK
        if args.variance:
            groups = store.group_variance(args.scenario, mode=args.mode, **axes)
            if args.json:
                print(json.dumps(
                    [dict(dataclasses.asdict(g), group=g.group) for g in groups],
                    indent=2, sort_keys=True,
                ))
                return EXIT_OK
            rows = [
                [g.group, g.cells, g.runs_pooled, f"{g.success_rate:.4f}",
                 f"{g.success_variance:.4f}", f"{g.mean_rounds:.2f}",
                 f"{g.rounds_variance:.3f}"]
                for g in groups
            ]
            print(format_table(
                ["group", "cells", "runs", "success", "p(1-p)", "rounds", "var(rounds)"],
                rows,
            ))
            return EXIT_OK
        metric = args.metric or "success_rate"
        points = store.trend(args.scenario, metric, mode=args.mode, **axes)
        if args.json:
            print(json.dumps([dataclasses.asdict(point) for point in points], indent=2))
            return EXIT_OK
        headers = ["commit", "mode", metric, "cells", "source", "ingested"]
        rows = []
        for point in points:
            dirty = "+dirty" if point.git_dirty else ""
            row = [
                _short_commit(point.git_commit) + dirty,
                point.mode,
                f"{point.value:g}",
                point.cells,
                point.source_kind + ("" if point.sealed else " (unsealed)"),
                _format_ts(point.ingested_at),
            ]
            if point.group is not None:
                row.insert(1, point.group)
            rows.append(row)
        if points and points[0].group is not None:
            headers.insert(1, "group")
        print(format_table(headers, rows))
        if not points:
            print(f"(no ingested runs match scenario {args.scenario!r})")
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.store.serve import ServeConfig, serve_forever

    config = ServeConfig(
        store_path=args.store,
        runs_dir=args.runs_dir,
        quiet=not args.verbose,
    )
    if args.host is not None:
        config = dataclasses.replace(config, host=args.host)
    if args.port is not None:
        config = dataclasses.replace(config, port=args.port)
    serve_forever(config)
    return EXIT_OK


def _cmd_compare(args: argparse.Namespace) -> int:
    report = compare_files(
        args.baseline,
        args.current,
        tol_success=args.tol_success,
        tol_rounds=args.tol_rounds,
    )
    print(report.describe())
    return EXIT_OK if report.ok else EXIT_DRIFT


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "phase":
            return _cmd_phase(args)
        if args.command == "fabric":
            return _cmd_fabric(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:
        # stdout was piped into something that stopped reading (query | head);
        # detach so the interpreter's shutdown flush cannot raise again
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK
    raise AssertionError(f"unhandled command {args.command!r}")


__all__ = [
    "EXIT_DRIFT",
    "EXIT_ERROR",
    "EXIT_FABRIC_ORPHANED",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "main",
]
