"""``python -m repro.runner`` — the sweep orchestration command line.

Five subcommands drive the whole experiment surface:

``list``
    Show every registered scenario with its grid sizes, paper artefact and
    grid-axis detail (topology families × behaviours × f values, derived
    from the plugin registries).  ``--plugins`` lists every registered
    extension instead: topology families, behaviours (with parameter
    schemas), placements, algorithms, delay models and stop policies.
``run``
    Expand a scenario's grid — a registered name (``--scenario``) or a
    declarative TOML file (``--scenario-file``) — and drive it through an
    :class:`~repro.runner.session.ExperimentSession` (optionally sharded
    across worker processes), printing the aggregate table and writing the
    canonical JSON artifact.  ``--journal`` makes the run durable (every
    completed cell appended to ``<run dir>/journal.jsonl``), ``--resume
    RUN_DIR`` continues an interrupted journaled run, ``--stop-policy
    NAME:ARGS`` seals a run early, and ``--progress`` renders a live
    progress line from the event stream.  ``--quick`` selects the CI-sized
    grid; ``--plugins MODULE`` imports a module first so it can register
    custom extensions (topologies, behaviours, stop policies, ...).
``compare``
    Diff a freshly generated artifact against a stored baseline and exit
    nonzero on drift — the regression gate CI builds on.
``profile``
    cProfile one scenario run with a per-phase wall-clock breakdown
    (expansion / topology precomputation / cell execution) — the entry
    point for hot-path investigations.
``fabric``
    The multi-host sweep fabric's worker-side entry points:
    ``fabric worker --run-dir DIR`` joins a coordinated run as a leasing
    worker (the same protocol ``run --fabric N`` uses for its local pool,
    so pointing several machines at one NFS run dir just works) and
    ``fabric status --run-dir DIR`` prints a read-only snapshot of the
    leases, shards and workers.  Wire format: ``docs/fabric-protocol.md``.

Exit codes (documented in :mod:`repro.runner`): 0 success — including runs
sealed early by a stop policy; 1 ``compare`` drift; 2 usage/configuration
errors; 3 a journaled run was interrupted and is resumable; 4 a fabric
worker aborted because the coordinator's heartbeat went stale.

Examples
--------
::

    python -m repro.runner list --plugins
    python -m repro.runner run --scenario figure1b --workers 4 --quick
    python -m repro.runner run --scenario table2 --journal --progress
    python -m repro.runner run --resume benchmarks/results/runs/table2.full
    python -m repro.runner run --scenario necessity --stop-policy max-cells:100
    python -m repro.runner run --scenario figure1b --fabric 3 --progress
    python -m repro.runner fabric worker --run-dir /nfs/sweeps/figure1b.full
    python -m repro.runner fabric status --run-dir /nfs/sweeps/figure1b.full
    python -m repro.runner compare benchmarks/baselines/figure1b.quick.json \\
        benchmarks/results/figure1b.quick.json
    python -m repro.runner profile --scenario definition1 --quick --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import importlib
import io
import json
import os
import pathlib
import pstats
import sys
import time
from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.graphs.bitset_backends import backend_policy
from repro.registry import ALL_REGISTRIES
from repro.runner.artifacts import compare_files
from repro.runner.fabric import (
    EXIT_ORPHANED,
    FabricConfig,
    FabricCoordinator,
    FabricWorker,
    fabric_status,
)
from repro.runner.harness import NOT_APPLICABLE, GridSpec, SweepEngine
from repro.runner.reporting import SessionProgress, format_table, render_fabric_status
from repro.runner.scenario_files import Scenario, load_scenario_file
from repro.runner.scenarios import (
    SCENARIOS,
    clear_worker_caches,
    get_scenario,
    warm_worker_caches,
)
from repro.runner.worker_cache import bitset_cache_stats, worker_cache_stats
from repro.runner.session import (
    CellCompleted,
    ExperimentSession,
    RunFinished,
    RunStarted,
)

#: Default artifact directory (relative to the invocation directory).
DEFAULT_OUTPUT_DIR = pathlib.Path("benchmarks") / "results"

#: Default parent of journaled run directories (``<name>.<mode>`` inside).
DEFAULT_RUNS_DIR = DEFAULT_OUTPUT_DIR / "runs"

# Process exit codes (also documented in repro/runner/__init__.py).
EXIT_OK = 0  # success, including runs sealed early by a stop policy
EXIT_DRIFT = 1  # `compare` found drift against the baseline
EXIT_ERROR = 2  # usage or configuration error (ReproError)
EXIT_INTERRUPTED = 3  # journaled run interrupted; resumable via run --resume
EXIT_FABRIC_ORPHANED = EXIT_ORPHANED  # 4: fabric worker lost its coordinator


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Sharded sweep orchestration over the paper's experiment grids.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered scenarios (or, with --plugins, every extension)"
    )
    list_parser.add_argument(
        "--plugins",
        action="store_true",
        help="list every registered extension (topologies, behaviours, placements, "
        "algorithms, delay models) instead of scenarios",
    )

    run_parser = commands.add_parser("run", help="run a scenario and write its JSON artifact")
    run_parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="registered scenario to run (repeatable; see 'list')",
    )
    run_parser.add_argument(
        "--scenario-file",
        action="append",
        default=None,
        type=pathlib.Path,
        metavar="PATH",
        help="declarative scenario TOML file to run (repeatable)",
    )
    run_parser.add_argument(
        "--plugins",
        action="append",
        default=None,
        metavar="MODULE",
        help="import MODULE before running so it can register custom extensions "
        "(repeatable; the module must be on PYTHONPATH)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded execution (default: 1, serial)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="cells per pool task (default: balanced automatically)",
    )
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="run the reduced CI grid instead of the full grid",
    )
    run_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="artifact path (single scenario) or directory (default: benchmarks/results/)",
    )
    run_parser.add_argument(
        "--no-table", action="store_true", help="suppress the aggregate table on stdout"
    )
    run_parser.add_argument(
        "--journal",
        action="store_true",
        help="journal every completed cell to <run dir>/journal.jsonl (crash-safe; "
        "interrupted runs resume with --resume and exit with code 3)",
    )
    run_parser.add_argument(
        "--run-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="run directory for --journal (default: benchmarks/results/runs/<name>.<mode>; "
        "with several scenarios, a <name>.<mode> subdirectory per scenario)",
    )
    run_parser.add_argument(
        "--resume",
        type=pathlib.Path,
        default=None,
        metavar="RUN_DIR",
        help="resume an interrupted journaled run from its run directory "
        "(the grid, mode and provenance come from the journal header)",
    )
    run_parser.add_argument(
        "--stop-policy",
        action="append",
        default=None,
        metavar="NAME:ARGS",
        help="seal the run early via a registered stop policy, e.g. max-cells:100, "
        "max-wall-time:3600, group-converged:3 (repeatable; see 'list --plugins')",
    )
    run_parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live one-line progress view from the session event stream",
    )
    run_parser.add_argument(
        "--bitset-backend",
        default=None,
        metavar="NAME",
        help="bitset computation backend: a registered name (see 'list --plugins') "
        "or 'auto' (default: auto — numpy on large graphs when installed); "
        "exported as REPRO_BITSET_BACKEND so sweep workers inherit it",
    )
    run_parser.add_argument(
        "--fabric",
        type=int,
        default=None,
        metavar="N",
        help="run through the multi-host sweep fabric with N leased pool workers "
        "(0 = coordinator only; external workers join with 'fabric worker "
        "--run-dir'); always journaled, resumable with 'run --resume DIR "
        "--fabric N' — see docs/fabric-protocol.md",
    )
    run_parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fabric lease expiry: a worker that misses heartbeats this long is "
        "fenced and its unfinished range re-leased (default: 30; must exceed "
        "the slowest single cell)",
    )
    run_parser.add_argument(
        "--worker-throttle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="artificial per-cell delay in fabric workers (straggler/crash-window "
        "simulation for fault-injection tests; default: 0)",
    )

    fabric_parser = commands.add_parser(
        "fabric", help="multi-host sweep fabric: join as a worker, or inspect a run"
    )
    fabric_commands = fabric_parser.add_subparsers(dest="fabric_command", required=True)
    worker_parser = fabric_commands.add_parser(
        "worker",
        help="join a fabric run directory as a leasing worker (multi-host: any "
        "machine sharing the directory, e.g. over NFS)",
    )
    worker_parser.add_argument(
        "--run-dir",
        type=pathlib.Path,
        required=True,
        metavar="DIR",
        help="the fabric run directory published by 'run --fabric'",
    )
    worker_parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="filename-safe worker identity; also names the result shard "
        "shards/<ID>.jsonl (default: w<pid>)",
    )
    worker_parser.add_argument(
        "--throttle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the manifest's per-cell throttle for this worker",
    )
    worker_parser.add_argument(
        "--plugins",
        action="append",
        default=None,
        metavar="MODULE",
        help="import MODULE before joining (in addition to the plugin modules "
        "recorded in the fabric manifest)",
    )
    worker_parser.add_argument(
        "--bitset-backend",
        default=None,
        metavar="NAME",
        help="bitset computation backend for this worker (a registered name or "
        "'auto'; exported as REPRO_BITSET_BACKEND)",
    )
    status_parser = fabric_commands.add_parser(
        "status", help="print a read-only snapshot of a fabric run directory"
    )
    status_parser.add_argument(
        "--run-dir",
        type=pathlib.Path,
        required=True,
        metavar="DIR",
        help="the fabric run directory to inspect",
    )
    status_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw snapshot as JSON instead of the human-readable view",
    )

    compare_parser = commands.add_parser(
        "compare", help="diff an artifact against a baseline; exit 1 on drift"
    )
    compare_parser.add_argument("baseline", type=pathlib.Path, help="baseline artifact (JSON)")
    compare_parser.add_argument("current", type=pathlib.Path, help="current artifact (JSON)")
    compare_parser.add_argument(
        "--tol-success",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute success-rate drift per group (default: 0)",
    )
    compare_parser.add_argument(
        "--tol-rounds",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute mean-round drift per group (default: 0)",
    )

    profile_parser = commands.add_parser(
        "profile", help="cProfile a scenario run with per-phase timings"
    )
    profile_parser.add_argument(
        "--scenario", required=True, metavar="NAME", help="scenario to profile (see 'list')"
    )
    profile_parser.add_argument(
        "--quick", action="store_true", help="profile the reduced CI grid"
    )
    profile_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1; >1 mostly profiles pool waits)",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="number of profile rows to print (default: 20)",
    )
    profile_parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    profile_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also dump the raw pstats file here (for snakeviz etc.)",
    )
    profile_parser.add_argument(
        "--bitset-backend",
        default=None,
        metavar="NAME",
        help="bitset computation backend to profile under (a registered name "
        "or 'auto'; exported as REPRO_BITSET_BACKEND)",
    )
    return parser


def _apply_bitset_backend(name: Optional[str]) -> None:
    """Export ``--bitset-backend`` as ``REPRO_BITSET_BACKEND``.

    The flag goes through the environment rather than a parameter so
    forked/spawned sweep workers inherit the choice for free.  The name is
    resolved once up front: unknown names fail fast with the registry's
    did-you-mean error, and naming ``numpy`` without numpy installed raises
    before any cells run.
    """
    if name is None:
        return
    from repro.graphs.bitset_backends import ENV_VAR, get_backend

    os.environ[ENV_VAR] = name.strip().lower() or "auto"
    get_backend(0)


def _axes_detail(spec: GridSpec) -> str:
    """One-line grid-axis summary (topology families × behaviours × f).

    Derived from the spec through the registries (the families are counted
    as registered names), not hand-maintained per scenario.
    """
    families = Counter(topology.family for topology in spec.topologies)
    family_text = ",".join(
        f"{name}x{count}" if count > 1 else name for name, count in families.items()
    )
    behaviors = [behavior for behavior in spec.behaviors if behavior != NOT_APPLICABLE]
    behavior_text = ",".join(behaviors) if behaviors else "(no adversary)"
    f_text = ",".join(str(f) for f in spec.f_values)
    return f"{family_text} | f={f_text} | {behavior_text}"


def _cmd_list_plugins() -> int:
    """The ``list --plugins`` listing: every registered extension point."""
    for registry_name, registry in ALL_REGISTRIES.items():
        rows = []
        for entry in registry.entries():
            params = entry.metadata.get("params", ())
            kind = entry.metadata.get("kind", "") or getattr(entry.obj, "kind", "")
            spec_text = entry.name + (f":{','.join(params)}" if params else "")
            rows.append([spec_text, kind, entry.summary])
        print(format_table([f"{registry_name} ({len(rows)})", "kind", "summary"], rows))
        print()
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.plugins:
        return _cmd_list_plugins()
    rows = []
    for scenario in SCENARIOS.values():
        rows.append(
            [
                scenario.name,
                ",".join(scenario.spec.algorithms),
                scenario.spec.num_cells,
                scenario.quick.num_cells,
                _axes_detail(scenario.spec),
                scenario.description,
            ]
        )
    print(
        format_table(
            ["scenario", "algorithms", "cells", "quick", "grid axes", "description"], rows
        )
    )
    return 0


def _artifact_path(
    output: Optional[pathlib.Path], count: int, name: str, mode: str
) -> pathlib.Path:
    filename = f"{name}.{mode}.json"
    if output is None:
        return DEFAULT_OUTPUT_DIR / filename
    if count == 1 and output.suffix == ".json":
        return output
    return output / filename


def _selected_scenarios(args: argparse.Namespace) -> List[Scenario]:
    """Resolve ``--scenario`` names and ``--scenario-file`` paths, in order."""
    scenarios: List[Scenario] = []
    for entry in args.scenario or ():
        for name in entry.split(","):
            if name:
                scenarios.append(get_scenario(name))
    for path in args.scenario_file or ():
        scenarios.append(load_scenario_file(path))
    if not scenarios:
        raise ReproError("nothing to run: pass --scenario NAME and/or --scenario-file PATH")
    return scenarios


def _run_dir_for(args: argparse.Namespace, count: int, name: str, mode: str) -> pathlib.Path:
    if args.run_dir is not None:
        if count == 1:
            return args.run_dir
        return args.run_dir / f"{name}.{mode}"
    return DEFAULT_RUNS_DIR / f"{name}.{mode}"


def _drive_session(
    args: argparse.Namespace,
    session: ExperimentSession,
    path: pathlib.Path,
) -> int:
    """Consume one session's event stream: progress, artifact, summary."""
    progress = SessionProgress()
    try:
        for event in session.events():
            progress.observe(event)
            if args.progress and isinstance(event, (RunStarted, CellCompleted, RunFinished)):
                print(f"\r{progress.render_line()}", end="", flush=True)
    except KeyboardInterrupt:
        if args.progress:
            print()
        if session.journaling:
            print(
                f"interrupted after {progress.completed} cell(s); completed work is "
                f"journaled in {session.run_dir}"
            )
            print(f"resume with: python -m repro.runner run --resume {session.run_dir}")
            return EXIT_INTERRUPTED
        raise
    if args.progress:
        print()
    payload = session.write_artifact(path)
    if not args.no_table:
        print(progress.render_summary())
    finished = session.finished
    assert finished is not None  # events() always ends with RunFinished
    if finished.reason != "completed":
        policy = finished.reason.partition(":")[2]
        print(
            f"{finished.scenario}: sealed early by stop policy {policy!r} "
            f"({finished.detail}) — partial artifact covers "
            f"{finished.completed}/{finished.total} cells"
        )
    resumed = f", {progress.replayed} replayed from journal" if progress.replayed else ""
    wall = finished.wall_seconds
    rate = finished.completed / wall if wall else float("inf")
    journal_note = f" (journal: {session.journal_path})" if session.journaling else ""
    print(
        f"{finished.scenario}: {payload['totals']['cells']} cells in "
        f"{finished.wall_seconds:.2f}s ({rate:.1f} cells/s, workers={session.workers}"
        f"{resumed}) -> {path}{journal_note}"
    )
    return EXIT_OK


def _fabric_config(args: argparse.Namespace) -> FabricConfig:
    config = FabricConfig(workers=args.fabric, plugins=tuple(args.plugins or ()))
    if args.lease_ttl is not None:
        config = dataclasses.replace(config, lease_ttl=args.lease_ttl)
    if args.worker_throttle is not None:
        config = dataclasses.replace(config, worker_throttle=args.worker_throttle)
    return config


def _drive_fabric(
    args: argparse.Namespace,
    coordinator: FabricCoordinator,
    path: pathlib.Path,
) -> int:
    """Drive one fabric coordinator to its seal: progress, artifact, summary."""
    progress = SessionProgress()

    def observe(event) -> None:
        progress.observe(event)
        if args.progress and isinstance(event, (RunStarted, CellCompleted, RunFinished)):
            print(f"\r{progress.render_line()}", end="", flush=True)

    try:
        coordinator.run(observer=observe)
    except KeyboardInterrupt:
        if args.progress:
            print()
        print(
            f"interrupted after {progress.completed} merged cell(s); durable work is "
            f"journaled in {coordinator.run_dir}"
        )
        print(
            f"resume with: python -m repro.runner run --resume {coordinator.run_dir} "
            f"--fabric {coordinator.config.workers}"
        )
        return EXIT_INTERRUPTED
    if args.progress:
        print()
    payload = coordinator.write_artifact(path)
    if not args.no_table:
        print(progress.render_summary())
    finished = coordinator.finished
    assert finished is not None  # run() only returns after the seal
    if finished.reason != "completed":
        policy = finished.reason.partition(":")[2]
        print(
            f"{finished.scenario}: sealed early by stop policy {policy!r} "
            f"({finished.detail}) — partial artifact covers "
            f"{finished.completed}/{finished.total} cells"
        )
    report = coordinator.report
    fabric_notes = [f"merged={report.merged}", f"leases={report.leases_created}"]
    if report.fenced:
        fabric_notes.append(f"fenced={report.fenced}")
    if report.splits:
        fabric_notes.append(f"splits={report.splits}")
    if report.rejected_stale:
        fabric_notes.append(f"stale-rejected={report.rejected_stale}")
    if report.duplicates:
        fabric_notes.append(f"duplicates={report.duplicates}")
    wall = finished.wall_seconds
    rate = finished.completed / wall if wall else float("inf")
    print(
        f"{finished.scenario}: {payload['totals']['cells']} cells in "
        f"{wall:.2f}s ({rate:.1f} cells/s, fabric workers={coordinator.config.workers}, "
        f"{' '.join(fabric_notes)}) -> {path} "
        f"(journal: {coordinator.run_dir / 'journal.jsonl'})"
    )
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    for module in args.plugins or ():
        try:
            importlib.import_module(module)
        except ImportError as error:
            raise ReproError(f"cannot import plugin module {module!r}: {error}") from None
    # After plugin imports so a plugin-registered backend is a valid name.
    _apply_bitset_backend(args.bitset_backend)
    policies = tuple(args.stop_policy or ())
    if args.fabric is not None:
        if args.fabric < 0:
            raise ReproError("--fabric N needs N >= 0 (0 = coordinator only)")
        if args.workers != 1:
            raise ReproError(
                "--fabric supersedes pool sharding; drop --workers (fabric workers "
                "are separate leasing processes)"
            )
        if args.chunk_size is not None:
            raise ReproError(
                "--chunk-size does not apply to --fabric (lease granularity is "
                "derived from the worker count; see docs/fabric-protocol.md)"
            )
    elif args.lease_ttl is not None or args.worker_throttle is not None:
        raise ReproError("--lease-ttl/--worker-throttle only apply with --fabric N")
    if args.resume is not None:
        if args.scenario or args.scenario_file or args.journal or args.run_dir:
            raise ReproError(
                "--resume reads the grid from the journal header; drop "
                "--scenario/--scenario-file/--journal/--run-dir"
            )
        if args.fabric is not None:
            coordinator = FabricCoordinator.resume(
                args.resume, config=_fabric_config(args), stop_policies=policies
            )
            path = _artifact_path(args.output, 1, coordinator.spec.name, coordinator.mode)
            return _drive_fabric(args, coordinator, path)
        session = ExperimentSession.resume(
            args.resume,
            workers=args.workers,
            chunk_size=args.chunk_size,
            stop_policies=policies,
        )
        path = _artifact_path(args.output, 1, session.spec.name, session.mode)
        return _drive_session(args, session, path)
    mode = "quick" if args.quick else "full"
    scenarios = _selected_scenarios(args)
    if args.fabric is not None:
        if len(scenarios) > 1:
            raise ReproError(
                "--fabric drives one scenario per run directory; pass a single "
                "--scenario/--scenario-file"
            )
        scenario = scenarios[0]
        coordinator = FabricCoordinator(
            scenario.grid(quick=args.quick),
            run_dir=_run_dir_for(args, 1, scenario.name, mode),
            mode=mode,
            config=_fabric_config(args),
            stop_policies=policies,
        )
        path = _artifact_path(args.output, 1, scenario.name, mode)
        return _drive_fabric(args, coordinator, path)
    planned: List[Tuple[ExperimentSession, pathlib.Path]] = []
    for scenario in scenarios:
        run_dir = None
        if args.journal:
            run_dir = _run_dir_for(args, len(scenarios), scenario.name, mode)
        session = ExperimentSession(
            scenario.grid(quick=args.quick),
            mode=mode,
            workers=args.workers,
            chunk_size=args.chunk_size,
            run_dir=run_dir,
            stop_policies=policies,
        )
        planned.append((session, _artifact_path(args.output, len(scenarios), scenario.name, mode)))
    for session, path in planned:
        code = _drive_session(args, session, path)
        if code != EXIT_OK:
            return code
    return EXIT_OK


def _cmd_fabric(args: argparse.Namespace) -> int:
    if args.fabric_command == "worker":
        for module in args.plugins or ():
            try:
                importlib.import_module(module)
            except ImportError as error:
                raise ReproError(
                    f"cannot import plugin module {module!r}: {error}"
                ) from None
        _apply_bitset_backend(args.bitset_backend)
        worker_id = args.worker_id if args.worker_id is not None else f"w{os.getpid()}"
        worker = FabricWorker(args.run_dir, worker_id, throttle=args.throttle)
        try:
            return worker.run()
        except KeyboardInterrupt:
            return EXIT_INTERRUPTED
    if args.fabric_command == "status":
        snapshot = fabric_status(args.run_dir)
        if args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(render_fabric_status(snapshot))
        return EXIT_OK
    raise AssertionError(f"unhandled fabric command {args.fabric_command!r}")


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one scenario run, reporting per-phase wall-clock first.

    Phases: grid expansion, topology precomputation (the worker-cache
    warm-up, forced here so it is attributed separately), and cell
    execution.  The cache is cleared first so the run profiles a cold
    start — what a fresh worker pays — rather than whatever this process
    happened to have warm.
    """
    _apply_bitset_backend(args.bitset_backend)
    scenario = get_scenario(args.scenario)
    spec = scenario.grid(quick=args.quick)
    engine = SweepEngine(workers=args.workers)
    clear_worker_caches()

    phases = []
    start = time.perf_counter()
    cells = spec.expand()
    phases.append(("expand", time.perf_counter() - start, f"{len(cells)} cells"))

    start = time.perf_counter()
    warm_worker_caches(spec, cells)
    phases.append(
        ("precompute", time.perf_counter() - start, "graphs + topology knowledge")
    )

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = engine.run(spec)
    profiler.disable()
    phases.append(("execute", time.perf_counter() - start, f"workers={args.workers}"))

    total = sum(seconds for _, seconds, _ in phases)
    rows = [
        [name, f"{seconds:.4f}", f"{(seconds / total * 100 if total else 0):.1f}%", note]
        for name, seconds, note in phases
    ]
    caches = worker_cache_stats()
    bitset = bitset_cache_stats()
    rows.append(
        [
            "bitset",
            "-",
            "-",
            f"backend={backend_policy()} indexes={bitset['indexes']} "
            f"reach-memo={bitset['reach_exclusions']} "
            f"source-memo={bitset['source_components']}",
        ]
    )
    rows.append(
        [
            "caches",
            "-",
            "-",
            f"graphs={caches['graphs']} knowledge={caches['knowledge']} "
            f"(this process; workers keep their own)",
        ]
    )
    print(format_table(["phase", "seconds", "share", "detail"], rows))
    rate = len(result.cells) / result.wall_seconds if result.wall_seconds else float("inf")
    print(f"\n{spec.name}: {len(result.cells)} cells, {rate:.1f} cells/s\n")

    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.output is not None:
        stats.dump_stats(str(args.output))
        print(f"raw profile -> {args.output}")
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    report = compare_files(
        args.baseline,
        args.current,
        tol_success=args.tol_success,
        tol_rounds=args.tol_rounds,
    )
    print(report.describe())
    return EXIT_OK if report.ok else EXIT_DRIFT


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "fabric":
            return _cmd_fabric(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    raise AssertionError(f"unhandled command {args.command!r}")


__all__ = [
    "EXIT_DRIFT",
    "EXIT_ERROR",
    "EXIT_FABRIC_ORPHANED",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "main",
]
