"""``python -m repro.runner`` — the sweep orchestration command line.

Four subcommands drive the whole experiment surface:

``list``
    Show every registered scenario with its grid sizes, paper artefact and
    grid-axis detail (topology families × behaviours × f values, derived
    from the plugin registries).  ``--plugins`` lists every registered
    extension instead: topology families, behaviours (with parameter
    schemas), placements, algorithms and delay models.
``run``
    Expand a scenario's grid — a registered name (``--scenario``) or a
    declarative TOML file (``--scenario-file``) — execute it (optionally
    sharded across worker processes), print the aggregate table and write
    the canonical JSON artifact.  ``--quick`` selects the CI-sized grid;
    ``--plugins MODULE`` imports a module first so it can register custom
    extensions (topologies, behaviours, ...) for the run.
``compare``
    Diff a freshly generated artifact against a stored baseline and exit
    nonzero on drift — the regression gate CI builds on.
``profile``
    cProfile one scenario run with a per-phase wall-clock breakdown
    (expansion / topology precomputation / cell execution) — the entry
    point for hot-path investigations.

Examples
--------
::

    python -m repro.runner list --plugins
    python -m repro.runner run --scenario figure1b --workers 4 --quick
    python -m repro.runner run --scenario-file my_sweep.toml
    python -m repro.runner compare benchmarks/baselines/figure1b.quick.json \\
        benchmarks/results/figure1b.quick.json
    python -m repro.runner profile --scenario definition1 --quick --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import io
import pathlib
import pstats
import sys
import time
from collections import Counter
from typing import List, Optional, Sequence

from repro.exceptions import ReproError
from repro.registry import ALL_REGISTRIES
from repro.runner.artifacts import compare_files, write_artifact
from repro.runner.harness import NOT_APPLICABLE, GridSpec, SweepEngine
from repro.runner.reporting import format_table, render_sweep_groups
from repro.runner.scenario_files import Scenario, load_scenario_file
from repro.runner.scenarios import (
    SCENARIOS,
    clear_worker_caches,
    get_scenario,
    warm_worker_caches,
)

#: Default artifact directory (relative to the invocation directory).
DEFAULT_OUTPUT_DIR = pathlib.Path("benchmarks") / "results"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Sharded sweep orchestration over the paper's experiment grids.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered scenarios (or, with --plugins, every extension)"
    )
    list_parser.add_argument(
        "--plugins",
        action="store_true",
        help="list every registered extension (topologies, behaviours, placements, "
        "algorithms, delay models) instead of scenarios",
    )

    run_parser = commands.add_parser("run", help="run a scenario and write its JSON artifact")
    run_parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="registered scenario to run (repeatable; see 'list')",
    )
    run_parser.add_argument(
        "--scenario-file",
        action="append",
        default=None,
        type=pathlib.Path,
        metavar="PATH",
        help="declarative scenario TOML file to run (repeatable)",
    )
    run_parser.add_argument(
        "--plugins",
        action="append",
        default=None,
        metavar="MODULE",
        help="import MODULE before running so it can register custom extensions "
        "(repeatable; the module must be on PYTHONPATH)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded execution (default: 1, serial)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="cells per pool task (default: balanced automatically)",
    )
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="run the reduced CI grid instead of the full grid",
    )
    run_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="artifact path (single scenario) or directory (default: benchmarks/results/)",
    )
    run_parser.add_argument(
        "--no-table", action="store_true", help="suppress the aggregate table on stdout"
    )

    compare_parser = commands.add_parser(
        "compare", help="diff an artifact against a baseline; exit 1 on drift"
    )
    compare_parser.add_argument("baseline", type=pathlib.Path, help="baseline artifact (JSON)")
    compare_parser.add_argument("current", type=pathlib.Path, help="current artifact (JSON)")
    compare_parser.add_argument(
        "--tol-success",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute success-rate drift per group (default: 0)",
    )
    compare_parser.add_argument(
        "--tol-rounds",
        type=float,
        default=0.0,
        metavar="X",
        help="tolerated absolute mean-round drift per group (default: 0)",
    )

    profile_parser = commands.add_parser(
        "profile", help="cProfile a scenario run with per-phase timings"
    )
    profile_parser.add_argument(
        "--scenario", required=True, metavar="NAME", help="scenario to profile (see 'list')"
    )
    profile_parser.add_argument(
        "--quick", action="store_true", help="profile the reduced CI grid"
    )
    profile_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1; >1 mostly profiles pool waits)",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="number of profile rows to print (default: 20)",
    )
    profile_parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    profile_parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also dump the raw pstats file here (for snakeviz etc.)",
    )
    return parser


def _axes_detail(spec: GridSpec) -> str:
    """One-line grid-axis summary (topology families × behaviours × f).

    Derived from the spec through the registries (the families are counted
    as registered names), not hand-maintained per scenario.
    """
    families = Counter(topology.family for topology in spec.topologies)
    family_text = ",".join(
        f"{name}x{count}" if count > 1 else name for name, count in families.items()
    )
    behaviors = [behavior for behavior in spec.behaviors if behavior != NOT_APPLICABLE]
    behavior_text = ",".join(behaviors) if behaviors else "(no adversary)"
    f_text = ",".join(str(f) for f in spec.f_values)
    return f"{family_text} | f={f_text} | {behavior_text}"


def _cmd_list_plugins() -> int:
    """The ``list --plugins`` listing: every registered extension point."""
    for registry_name, registry in ALL_REGISTRIES.items():
        rows = []
        for entry in registry.entries():
            params = entry.metadata.get("params", ())
            kind = entry.metadata.get("kind", "") or getattr(entry.obj, "kind", "")
            spec_text = entry.name + (f":{','.join(params)}" if params else "")
            rows.append([spec_text, kind, entry.summary])
        print(format_table([f"{registry_name} ({len(rows)})", "kind", "summary"], rows))
        print()
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.plugins:
        return _cmd_list_plugins()
    rows = []
    for scenario in SCENARIOS.values():
        rows.append(
            [
                scenario.name,
                ",".join(scenario.spec.algorithms),
                scenario.spec.num_cells,
                scenario.quick.num_cells,
                _axes_detail(scenario.spec),
                scenario.description,
            ]
        )
    print(
        format_table(
            ["scenario", "algorithms", "cells", "quick", "grid axes", "description"], rows
        )
    )
    return 0


def _artifact_path(
    output: Optional[pathlib.Path], count: int, name: str, mode: str
) -> pathlib.Path:
    filename = f"{name}.{mode}.json"
    if output is None:
        return DEFAULT_OUTPUT_DIR / filename
    if count == 1 and output.suffix == ".json":
        return output
    return output / filename


def _selected_scenarios(args: argparse.Namespace) -> List[Scenario]:
    """Resolve ``--scenario`` names and ``--scenario-file`` paths, in order."""
    scenarios: List[Scenario] = []
    for entry in args.scenario or ():
        for name in entry.split(","):
            if name:
                scenarios.append(get_scenario(name))
    for path in args.scenario_file or ():
        scenarios.append(load_scenario_file(path))
    if not scenarios:
        raise ReproError("nothing to run: pass --scenario NAME and/or --scenario-file PATH")
    return scenarios


def _cmd_run(args: argparse.Namespace) -> int:
    for module in args.plugins or ():
        try:
            importlib.import_module(module)
        except ImportError as error:
            raise ReproError(f"cannot import plugin module {module!r}: {error}") from None
    engine = SweepEngine(workers=args.workers, chunk_size=args.chunk_size)
    mode = "quick" if args.quick else "full"
    scenarios = _selected_scenarios(args)
    for scenario in scenarios:
        spec = scenario.grid(quick=args.quick)
        result = engine.run(spec)
        path = _artifact_path(args.output, len(scenarios), scenario.name, mode)
        write_artifact(path, result, mode=mode)
        if not args.no_table:
            print(render_sweep_groups(f"{scenario.name} ({mode} grid)", result.groups))
        rate = len(result.cells) / result.wall_seconds if result.wall_seconds else float("inf")
        print(
            f"{scenario.name}: {len(result.cells)} cells in {result.wall_seconds:.2f}s "
            f"({rate:.1f} cells/s, workers={result.workers}) -> {path}"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one scenario run, reporting per-phase wall-clock first.

    Phases: grid expansion, topology precomputation (the worker-cache
    warm-up, forced here so it is attributed separately), and cell
    execution.  The cache is cleared first so the run profiles a cold
    start — what a fresh worker pays — rather than whatever this process
    happened to have warm.
    """
    scenario = get_scenario(args.scenario)
    spec = scenario.grid(quick=args.quick)
    engine = SweepEngine(workers=args.workers)
    clear_worker_caches()

    phases = []
    start = time.perf_counter()
    cells = spec.expand()
    phases.append(("expand", time.perf_counter() - start, f"{len(cells)} cells"))

    start = time.perf_counter()
    warm_worker_caches(spec, cells)
    phases.append(
        ("precompute", time.perf_counter() - start, "graphs + topology knowledge")
    )

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = engine.run(spec)
    profiler.disable()
    phases.append(("execute", time.perf_counter() - start, f"workers={args.workers}"))

    total = sum(seconds for _, seconds, _ in phases)
    rows = [
        [name, f"{seconds:.4f}", f"{(seconds / total * 100 if total else 0):.1f}%", note]
        for name, seconds, note in phases
    ]
    print(format_table(["phase", "seconds", "share", "detail"], rows))
    rate = len(result.cells) / result.wall_seconds if result.wall_seconds else float("inf")
    print(f"\n{spec.name}: {len(result.cells)} cells, {rate:.1f} cells/s\n")

    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.output is not None:
        stats.dump_stats(str(args.output))
        print(f"raw profile -> {args.output}")
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    report = compare_files(
        args.baseline,
        args.current,
        tol_success=args.tol_success,
        tol_rounds=args.tol_rounds,
    )
    print(report.describe())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "profile":
            return _cmd_profile(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


__all__ = ["main"]
