"""Lease files: the fabric's shared-directory work-assignment primitive.

A *lease* grants one worker the right to execute a contiguous range of grid
cell indexes ``[start, end)``.  Leases live as small JSON files inside
``<run_dir>/leases/`` and every state transition is a single atomic
filesystem operation, so the protocol works unchanged on a local disk, an
NFS export shared by many machines, or anything else with POSIX rename
semantics.  The normative wire format is ``docs/fabric-protocol.md``; this
module is the reference implementation.

States and transitions:

* **available** — ``<start>-<end>.lease`` (zero-padded 8-digit decimal
  bounds, end exclusive).  Written by the coordinator via
  write-temp-then-:func:`os.replace`.
* **claimed** — a worker claims by :func:`os.rename`-ing the available file
  to ``<start>-<end>.owned.<worker-id>``.  Rename of one source path is
  atomic and exclusive: exactly one contender succeeds, every loser gets
  ``FileNotFoundError`` and moves on to the next file.
* **heartbeat** — the owner touches the owned file's mtime
  (:func:`heartbeat`) between cells; the coordinator treats
  ``now - mtime > lease_ttl`` as worker loss.
* **released** — the owner deletes the owned file once every index in the
  range is durably appended to its shard (the shard, not lease absence, is
  the source of truth for completed work).
* **fenced** — the coordinator deletes an expired owned file, appends a
  fence record to ``leases/fence.log`` and re-publishes the unfinished
  remainder as fresh available files with ``epoch + 1``.  Shard records
  carry the epoch of the lease they ran under, and the coordinator's merge
  rejects records whose epoch is stale for their cell index — the classic
  fencing-token rule, which makes a stalled-but-alive worker's late writes
  harmless.

``fence.log`` is append-only JSONL; replaying it rebuilds the
coordinator's authoritative per-index epoch map after a coordinator
restart, so fencing survives coordinator loss too.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError

PathLike = Union[str, pathlib.Path]

#: Directory (inside a run dir) holding lease files and the fence log.
LEASES_DIRNAME = "leases"
#: Suffix of an *available* (unclaimed) lease file.
LEASE_SUFFIX = ".lease"
#: Infix marking a *claimed* lease file; the owner id follows it.
OWNED_MARKER = ".owned."
#: Append-only log of every epoch bump (fence / split), inside ``leases/``.
FENCE_LOG_FILENAME = "fence.log"
#: Schema version stamped into every lease file.
LEASE_VERSION = 1
#: ``kind`` discriminator stamped into every lease file.
LEASE_KIND = "repro-fabric-lease"

#: Width of the zero-padded range bounds in lease file names (supports
#: grids up to 10**8 cells while keeping lexicographic == numeric order).
_RANGE_DIGITS = 8

_OWNED_RE = re.compile(
    r"^(?P<start>\d{8})-(?P<end>\d{8})\.owned\.(?P<owner>[A-Za-z0-9._-]+)$"
)
_AVAILABLE_RE = re.compile(r"^(?P<start>\d{8})-(?P<end>\d{8})\.lease$")
_WORKER_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class LeaseError(ReproError):
    """A lease file violates the fabric wire format."""


@dataclass(frozen=True)
class Lease:
    """One contiguous work range ``[start, end)`` at a fencing ``epoch``."""

    start: int
    end: int
    epoch: int

    @property
    def count(self) -> int:
        return self.end - self.start

    @property
    def label(self) -> str:
        return f"{self.start:0{_RANGE_DIGITS}d}-{self.end:0{_RANGE_DIGITS}d}"

    def indexes(self) -> range:
        return range(self.start, self.end)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": LEASE_KIND,
            "lease_version": LEASE_VERSION,
            "start": self.start,
            "end": self.end,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, payload: object, path: Optional[pathlib.Path] = None) -> "Lease":
        where = f" ({path})" if path else ""
        if not isinstance(payload, dict):
            raise LeaseError(f"lease payload must be an object{where}")
        if payload.get("kind") != LEASE_KIND:
            raise LeaseError(f"not a fabric lease (kind={payload.get('kind')!r}){where}")
        if payload.get("lease_version") != LEASE_VERSION:
            raise LeaseError(
                f"unsupported lease_version {payload.get('lease_version')!r}{where}"
            )
        try:
            start, end, epoch = (
                int(payload["start"]),
                int(payload["end"]),
                int(payload["epoch"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise LeaseError(f"malformed lease payload{where}: {error}") from None
        if not (0 <= start < end) or epoch < 0:
            raise LeaseError(f"invalid lease range/epoch [{start},{end})@{epoch}{where}")
        return cls(start=start, end=end, epoch=epoch)


def validate_worker_id(worker_id: str) -> str:
    """Worker ids become file-name components; restrict them accordingly."""
    if not _WORKER_ID_RE.match(worker_id or ""):
        raise ReproError(
            f"worker id {worker_id!r} is not filename-safe "
            "(allowed: letters, digits, '.', '_', '-')"
        )
    return worker_id


def leases_dir(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / LEASES_DIRNAME


def fence_log_path(run_dir: PathLike) -> pathlib.Path:
    return leases_dir(run_dir) / FENCE_LOG_FILENAME


def atomic_write_json(path: pathlib.Path, payload: Dict[str, object]) -> None:
    """Write-temp-then-replace: readers never observe a torn file."""
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    os.replace(scratch, path)


def read_lease(path: PathLike) -> Lease:
    """Parse a lease file (available or owned); raises on wire-format drift.

    May raise :class:`FileNotFoundError` — for an owner re-reading its lease
    before each cell, that is the fencing signal, not an error.
    """
    path = pathlib.Path(path)
    return Lease.from_dict(json.loads(path.read_text(encoding="utf-8")), path)


def write_available(run_dir: PathLike, lease: Lease) -> pathlib.Path:
    """Publish ``lease`` as an available file (coordinator only)."""
    directory = leases_dir(run_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{lease.label}{LEASE_SUFFIX}"
    atomic_write_json(path, lease.as_dict())
    return path


def list_available(run_dir: PathLike) -> List[pathlib.Path]:
    """Available lease files, sorted by range (lexicographic == numeric)."""
    directory = leases_dir(run_dir)
    if not directory.is_dir():
        return []
    return sorted(
        path for path in directory.iterdir() if _AVAILABLE_RE.match(path.name)
    )


def list_owned(run_dir: PathLike) -> List[Tuple[pathlib.Path, str]]:
    """``(path, owner id)`` for every claimed lease file, sorted by range."""
    directory = leases_dir(run_dir)
    if not directory.is_dir():
        return []
    owned = []
    for path in sorted(directory.iterdir()):
        match = _OWNED_RE.match(path.name)
        if match:
            owned.append((path, match.group("owner")))
    return owned


def owned_path(run_dir: PathLike, lease: Lease, worker_id: str) -> pathlib.Path:
    return leases_dir(run_dir) / f"{lease.label}{OWNED_MARKER}{worker_id}"


def claim(run_dir: PathLike, worker_id: str) -> Optional[Tuple[pathlib.Path, Lease]]:
    """Attempt to claim the first available lease via atomic rename.

    Scans available files in range order and renames the first one to its
    owned name.  Losing a rename race (another worker claimed it first)
    silently moves on; returns ``None`` when nothing is claimable.
    """
    validate_worker_id(worker_id)
    for path in list_available(run_dir):
        target = path.with_name(path.name[: -len(LEASE_SUFFIX)] + OWNED_MARKER + worker_id)
        try:
            os.rename(path, target)
        except FileNotFoundError:
            continue  # lost the race; try the next range
        try:
            return target, read_lease(target)
        except FileNotFoundError:  # pragma: no cover - fenced between rename and read
            continue
    return None


def heartbeat(path: PathLike) -> None:
    """Refresh the owned file's mtime — the liveness signal the TTL watches.

    A vanished file means the coordinator fenced this lease; the caller
    must stop working the range (it may immediately claim a new one).
    """
    os.utime(path)


def release(path: PathLike) -> None:
    """Delete an owned lease whose range is fully recorded in the shard."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass  # fenced concurrently: the re-leased cells will dedup at merge


def lease_age(path: PathLike, now: Optional[float] = None) -> Optional[float]:
    """Seconds since the owned file's last heartbeat (``None`` if gone)."""
    try:
        mtime = os.stat(path).st_mtime
    except FileNotFoundError:
        return None
    return (time.time() if now is None else now) - mtime


def append_fence(run_dir: PathLike, lease: Lease) -> None:
    """Durably record an epoch bump for ``lease``'s range (coordinator only).

    Flushed and fsynced per record: the fence log is what lets a restarted
    coordinator rebuild the authoritative per-index epoch map, so a bump
    must never be observable in new lease files without being replayable.
    """
    path = fence_log_path(run_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"record": "fence", "start": lease.start, "end": lease.end, "epoch": lease.epoch}
    with open(path, "ab") as handle:
        handle.write(
            (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")
        )
        handle.flush()
        os.fsync(handle.fileno())


def replay_fence_log(run_dir: PathLike) -> Dict[int, int]:
    """Rebuild ``index -> current epoch`` from ``fence.log`` (0 if unfenced).

    Tolerates a torn final line (coordinator killed mid-append) by the same
    tail-truncation rule journals use; a malformed record before the tail
    raises :class:`LeaseError`.
    """
    epochs: Dict[int, int] = {}
    path = fence_log_path(run_dir)
    if not path.exists():
        return epochs
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    for number, line in enumerate(lines, start=1):
        if not line:
            continue
        is_tail = number == len(lines)  # no trailing newline -> torn append
        try:
            record = json.loads(line.decode("utf-8"))
            start, end, epoch = int(record["start"]), int(record["end"]), int(record["epoch"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            if is_tail:
                break
            raise LeaseError(f"fence log {path} line {number}: corrupt record") from None
        for index in range(start, end):
            epochs[index] = max(epochs.get(index, 0), epoch)
    return epochs


def contiguous_runs(indexes: Iterable[int]) -> List[Tuple[int, int]]:
    """Collapse an index set into sorted, maximal ``[start, end)`` runs."""
    runs: List[List[int]] = []
    for index in sorted(set(indexes)):
        if runs and index == runs[-1][1]:
            runs[-1][1] = index + 1
        else:
            runs.append([index, index + 1])
    return [(start, end) for start, end in runs]


def chunk_runs(
    runs: Sequence[Tuple[int, int]], chunk_size: int
) -> List[Tuple[int, int]]:
    """Split each run into ranges of at most ``chunk_size`` cells."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks: List[Tuple[int, int]] = []
    for start, end in runs:
        cursor = start
        while cursor < end:
            chunks.append((cursor, min(cursor + chunk_size, end)))
            cursor = min(cursor + chunk_size, end)
    return chunks


__all__ = [
    "FENCE_LOG_FILENAME",
    "LEASES_DIRNAME",
    "LEASE_KIND",
    "LEASE_SUFFIX",
    "LEASE_VERSION",
    "OWNED_MARKER",
    "Lease",
    "LeaseError",
    "append_fence",
    "atomic_write_json",
    "chunk_runs",
    "claim",
    "contiguous_runs",
    "fence_log_path",
    "heartbeat",
    "lease_age",
    "leases_dir",
    "list_available",
    "list_owned",
    "owned_path",
    "read_lease",
    "release",
    "replay_fence_log",
    "validate_worker_id",
]
