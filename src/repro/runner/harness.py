"""Sweep harness: run an experiment grid and aggregate the outcomes.

The benchmarks sweep over seeds, Byzantine behaviours and fault placements.
This module centralizes that bookkeeping so every benchmark produces the same
kind of aggregate rows (success rate, worst range, mean messages, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.adversary.adversary import FaultPlan
from repro.adversary.behaviors import STANDARD_BEHAVIOR_FACTORIES
from repro.adversary.placement import place_random
from repro.algorithms.base import ConsensusConfig
from repro.graphs.digraph import DiGraph
from repro.runner.metrics import ConsensusOutcome, aggregate_success_rate

NodeId = Hashable


def random_inputs(
    graph: DiGraph, low: float, high: float, seed: Optional[int] = None
) -> Dict[NodeId, float]:
    """Uniform random inputs in ``[low, high]`` for every node (seeded)."""
    rng = random.Random(seed)
    return {node: rng.uniform(low, high) for node in sorted(graph.nodes, key=repr)}


def spread_inputs(graph: DiGraph, low: float, high: float) -> Dict[NodeId, float]:
    """Deterministic evenly spread inputs covering the whole range."""
    nodes = sorted(graph.nodes, key=repr)
    if len(nodes) == 1:
        return {nodes[0]: low}
    step = (high - low) / (len(nodes) - 1)
    return {node: low + index * step for index, node in enumerate(nodes)}


@dataclass
class SweepResult:
    """Aggregate of a family of outcomes sharing one experimental cell."""

    label: str
    outcomes: List[ConsensusOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Number of executions in the cell."""
        return len(self.outcomes)

    @property
    def success_rate(self) -> float:
        """Fraction of runs satisfying all of Definition 1."""
        return aggregate_success_rate(self.outcomes)

    @property
    def worst_range(self) -> float:
        """Largest honest output range observed."""
        return max((outcome.output_range for outcome in self.outcomes), default=0.0)

    @property
    def mean_messages(self) -> float:
        """Mean delivered messages per run."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.messages_delivered for outcome in self.outcomes) / len(self.outcomes)

    @property
    def mean_rounds(self) -> float:
        """Mean completed rounds per run."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.rounds for outcome in self.outcomes) / len(self.outcomes)

    def as_row(self) -> List:
        """Row used by the plain-text reporting helpers."""
        worst = self.worst_range
        worst_text = "inf" if worst == float("inf") else f"{worst:.4g}"
        return [
            self.label,
            self.runs,
            f"{self.success_rate:.2f}",
            worst_text,
            f"{self.mean_rounds:.1f}",
            f"{self.mean_messages:.0f}",
        ]


def sweep_behaviors(
    run_one: Callable[[FaultPlan, int, str], ConsensusOutcome],
    graph: DiGraph,
    f: int,
    behaviors: Optional[Mapping[str, Callable]] = None,
    seeds: Sequence[int] = (1, 2, 3),
    placement_seed: int = 7,
) -> List[SweepResult]:
    """Run ``run_one`` for every behaviour × seed combination.

    ``run_one(fault_plan, seed, behavior_name)`` must return an outcome; the
    fault placement is random-but-seeded so every behaviour faces the same
    faulty set per seed.
    """
    behaviors = dict(behaviors or STANDARD_BEHAVIOR_FACTORIES)
    results: List[SweepResult] = []
    for behavior_name, factory in behaviors.items():
        cell = SweepResult(label=behavior_name)
        for seed in seeds:
            faulty = place_random(graph, f, seed=placement_seed + seed)
            plan = FaultPlan(faulty, lambda node, factory=factory: factory(), seed=seed)
            cell.outcomes.append(run_one(plan, seed, behavior_name))
        results.append(cell)
    return results
