"""Sweep orchestration: expand a declarative grid, shard it, aggregate outcomes.

The paper's tables and figures are all produced by sweeping consensus
executions (or condition checks) over grids of topologies, fault bounds,
Byzantine behaviours, fault placements and seeds.  This module provides the
machinery that turns a declarative :class:`GridSpec` into concrete
:class:`SweepCell`\\ s, runs every cell — serially or sharded across a
``multiprocessing`` pool — and folds the per-cell results into deterministic
aggregates.

Determinism is the load-bearing property: every cell derives its RNG seed
from ``(scenario name, cell index)`` via :func:`derive_cell_seed`, so results
are independent of execution order, shard assignment and worker count.  A
serial run and a 4-worker run of the same grid produce byte-identical
artifacts (see :mod:`repro.runner.artifacts`).

The cell-execution function itself lives in :mod:`repro.runner.scenarios`
(which owns the topology / behaviour / algorithm registries); the engine here
is generic over any picklable ``runner(spec, cell) -> CellResult`` callable.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import math
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.adversary.adversary import FaultPlan
from repro.adversary.behaviors import STANDARD_BEHAVIOR_FACTORIES
from repro.adversary.placement import place_random
from repro.exceptions import ScenarioFileError
from repro.graphs.digraph import DiGraph
from repro.runner.metrics import ConsensusOutcome, aggregate_success_rate

NodeId = Hashable

#: Placeholder axis value for cells where an axis does not apply (e.g. the
#: behaviour/placement axes of condition-check cells — no adversary involved).
NOT_APPLICABLE = "-"

#: Sentinel value for a topology's ``seed`` parameter meaning "use the cell's
#: derived seed".  A grid whose random-family topologies carry
#: ``seed = "cell"`` samples a *fresh* graph per seed cell — the per-cell
#: SHA-256 seed fully determines the sample, so serial, sharded and fabric
#: runs stay byte-identical — while the topology *label* keeps the sentinel,
#: so every sample of one recipe aggregates into a single group.
CELL_SEED = "cell"

#: Result of running one cell; implemented by ``repro.runner.scenarios.run_cell``.
CellRunner = Callable[["GridSpec", "SweepCell"], "CellResult"]

#: Per-cell observer hook: called once per completed cell, in strict
#: cell-index order, identically on the serial and the sharded path.  May
#: raise :class:`StopSweep` to end the sweep early.
CellObserver = Callable[["CellResult"], None]


class StopSweep(Exception):
    """Raised by a :data:`CellObserver` to end a sweep early (not an error).

    The engine folds the triggering cell, stops dispatching work, releases
    the worker pool and returns the partial
    :class:`SweepRunResult` with :attr:`SweepRunResult.stop_reason` set.
    """

    def __init__(self, reason: str = "stopped") -> None:
        super().__init__(reason)
        self.reason = reason


# ----------------------------------------------------------------------
# deterministic per-cell seeding
# ----------------------------------------------------------------------
def derive_cell_seed(scenario: str, index: int) -> int:
    """Stable 63-bit seed derived from ``(scenario, cell index)``.

    Uses SHA-256 rather than :func:`hash` so the value is identical across
    processes, platforms and ``PYTHONHASHSEED`` settings — the property that
    makes sharded sweeps reproduce serial sweeps exactly.
    """
    digest = hashlib.sha256(f"{scenario}:{index}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ----------------------------------------------------------------------
# input generators (unchanged public helpers)
# ----------------------------------------------------------------------
def random_inputs(
    graph: DiGraph, low: float, high: float, seed: Optional[int] = None
) -> Dict[NodeId, float]:
    """Uniform random inputs in ``[low, high]`` for every node (seeded)."""
    rng = random.Random(seed)
    return {node: rng.uniform(low, high) for node in sorted(graph.nodes, key=repr)}


def spread_inputs(graph: DiGraph, low: float, high: float) -> Dict[NodeId, float]:
    """Deterministic evenly spread inputs covering the whole range."""
    nodes = sorted(graph.nodes, key=repr)
    if len(nodes) == 1:
        return {nodes[0]: low}
    step = (high - low) / (len(nodes) - 1)
    return {node: low + index * step for index, node in enumerate(nodes)}


# ----------------------------------------------------------------------
# grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """A named graph family plus its construction parameters.

    Cells carry the *spec* rather than the built :class:`DiGraph` so workers
    rebuild graphs locally instead of unpickling them, and so artifacts can
    record the exact construction recipe.
    """

    family: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, family: str, **params: object) -> "TopologySpec":
        return cls(family=family, params=tuple(sorted(params.items())))

    @property
    def label(self) -> str:
        if not self.params:
            return self.family
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.family}({inner})"

    @property
    def is_cell_seeded(self) -> bool:
        """Whether the spec's ``seed`` parameter is the :data:`CELL_SEED`
        sentinel (resolved per cell from the derived seed)."""
        return any(key == "seed" and value == CELL_SEED for key, value in self.params)

    def resolve_cell_seed(self, derived_seed: int) -> "TopologySpec":
        """The concrete spec for one cell: the :data:`CELL_SEED` sentinel
        replaced by ``derived_seed``.  Identity for non-sentinel specs."""
        if not self.is_cell_seeded:
            return self
        params = {key: value for key, value in self.params}
        params["seed"] = derived_seed
        return TopologySpec.make(self.family, **params)

    def validate_params(self) -> None:
        """Check the params bind to the family's factory signature.

        Called from :meth:`GridSpec.validate_plugins` — i.e. before any
        worker pool forks — so an unknown or missing topology parameter
        raises one :class:`~repro.exceptions.GraphError` naming the family
        instead of a bare ``TypeError`` deep in a worker.
        """
        import inspect

        from repro.exceptions import GraphError
        from repro.registry import TOPOLOGIES

        factory = TOPOLOGIES.get(self.family)
        params = {key: value for key, value in self.params}
        if params.get("seed") == CELL_SEED:
            params["seed"] = 0
        try:
            inspect.signature(factory).bind(**params)
        except TypeError as error:
            raise GraphError(f"topology {self.family!r}: {error}") from None

    def build(self) -> DiGraph:
        """Construct the graph this spec describes, through the
        :data:`~repro.registry.TOPOLOGIES` registry."""
        from repro.exceptions import GraphError
        from repro.registry import TOPOLOGIES

        if self.is_cell_seeded:
            raise GraphError(
                f"topology {self.family!r} carries the per-cell seed sentinel "
                f"{CELL_SEED!r}; resolve it with resolve_cell_seed(derived_seed) "
                "before building"
            )
        factory = TOPOLOGIES.get(self.family)
        return factory(**{key: value for key, value in self.params})

    def as_dict(self) -> Dict[str, object]:
        return {"family": self.family, "params": {key: value for key, value in self.params}}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TopologySpec":
        """Inverse of :meth:`as_dict`, with schema validation."""
        if not isinstance(payload, Mapping):
            raise ScenarioFileError(f"topology entry must be a table, got {payload!r}")
        unknown = set(payload) - {"family", "params"}
        if unknown:
            raise ScenarioFileError(f"unknown topology keys {sorted(unknown)}")
        family = payload.get("family")
        if not isinstance(family, str) or not family:
            raise ScenarioFileError(f"topology 'family' must be a non-empty string, got {family!r}")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ScenarioFileError(f"topology 'params' must be a table, got {params!r}")
        for key, value in params.items():
            if not isinstance(key, str):
                raise ScenarioFileError(f"topology param names must be strings, got {key!r}")
            if not isinstance(value, (int, float, bool, str)):
                raise ScenarioFileError(f"topology param {key!r} must be a scalar, got {value!r}")
        return cls.make(family, **dict(params))


@dataclass(frozen=True)
class GridSpec:
    """Declarative sweep grid: the cross product of every axis below.

    Expansion order is fixed (algorithm × topology × f × behaviour ×
    placement × faults × seed, innermost last) so cell indexes — and
    therefore the per-cell derived seeds — are stable for a given spec.
    The ``faults`` axis defaults to the single value ``"none"``, which
    leaves the indexing of every pre-existing grid unchanged.
    """

    name: str
    algorithms: Tuple[str, ...]
    topologies: Tuple[TopologySpec, ...]
    f_values: Tuple[int, ...] = (1,)
    behaviors: Tuple[str, ...] = ("honest",)
    placements: Tuple[str, ...] = ("random",)
    seeds: Tuple[int, ...] = (1,)
    epsilon: float = 0.25
    input_low: float = 0.0
    input_high: float = 1.0
    inputs: str = "spread"
    path_policy: str = "simple"
    rounds: int = 15
    #: Network-fault axis (``FAULTS`` registry specs).  The default single
    #: value ``"none"`` keeps the expansion — cell indexes, derived seeds and
    #: serialized form — of every pre-existing grid unchanged.
    faults: Tuple[str, ...] = ("none",)

    def validate_plugins(self) -> None:
        """Resolve every plugin name the grid references, eagerly.

        Called from :meth:`expand` — i.e. in the parent process, before any
        worker pool forks — so a typo'd behaviour/placement/topology/
        algorithm surfaces as one
        :class:`~repro.exceptions.UnknownPluginError` listing the valid
        registered names instead of a bare ``KeyError`` deep in a worker.
        """
        from repro.registry import (
            ALGORITHMS,
            BEHAVIORS,
            FAULTS,
            PLACEMENTS,
            TOPOLOGIES,
            validate_plugin_args,
        )

        for algorithm in self.algorithms:
            ALGORITHMS.get(algorithm)
        for topology in self.topologies:
            TOPOLOGIES.get(topology.family)
            topology.validate_params()
        for behavior in self.behaviors:
            if behavior != NOT_APPLICABLE:
                validate_plugin_args(BEHAVIORS, behavior)
        for placement in self.placements:
            if placement != NOT_APPLICABLE:
                PLACEMENTS.get(placement)
        for fault_spec in self.faults:
            if fault_spec != NOT_APPLICABLE:
                validate_plugin_args(FAULTS, fault_spec)

    def expand(self) -> List["SweepCell"]:
        """Materialize every cell of the grid, with derived seeds attached.

        Plugin names are validated first (:meth:`validate_plugins`), so an
        unknown extension name fails here — before the pool forks — rather
        than inside a worker.
        """
        self.validate_plugins()
        cells: List[SweepCell] = []
        index = 0
        for algorithm in self.algorithms:
            for topology in self.topologies:
                for f in self.f_values:
                    for behavior in self.behaviors:
                        for placement in self.placements:
                            for fault_spec in self.faults:
                                for seed in self.seeds:
                                    cells.append(
                                        SweepCell(
                                            index=index,
                                            algorithm=algorithm,
                                            topology=topology,
                                            f=f,
                                            behavior=behavior,
                                            placement=placement,
                                            seed=seed,
                                            derived_seed=derive_cell_seed(self.name, index),
                                            faults=fault_spec,
                                        )
                                    )
                                    index += 1
        return cells

    @property
    def num_cells(self) -> int:
        return (
            len(self.algorithms)
            * len(self.topologies)
            * len(self.f_values)
            * len(self.behaviors)
            * len(self.placements)
            * len(self.faults)
            * len(self.seeds)
        )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "topologies": [topology.as_dict() for topology in self.topologies],
            "f_values": list(self.f_values),
            "behaviors": list(self.behaviors),
            "placements": list(self.placements),
            "seeds": list(self.seeds),
            "epsilon": self.epsilon,
            "input_low": self.input_low,
            "input_high": self.input_high,
            "inputs": self.inputs,
            "path_policy": self.path_policy,
            "rounds": self.rounds,
        }
        # Serialized only when the axis is in use: grids without faults keep
        # their pre-existing serialized form (and journal spec hashes).
        if self.faults != ("none",):
            payload["faults"] = list(self.faults)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "GridSpec":
        """Inverse of :meth:`as_dict`, with schema validation.

        Lists become the tuples the frozen dataclass expects, so
        ``GridSpec.from_dict(spec.as_dict()) == spec`` exactly — including
        the cell indexing (and therefore derived seeds) of :meth:`expand`.
        Unknown keys, wrong types and empty required axes raise
        :class:`~repro.exceptions.ScenarioFileError`; plugin *names* are
        validated later, at :meth:`expand` time.
        """
        if not isinstance(payload, Mapping):
            raise ScenarioFileError(f"grid spec must be a table, got {payload!r}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ScenarioFileError(f"unknown grid-spec keys {sorted(unknown)}")

        def strings(key: str, required: bool = False) -> Optional[Tuple[str, ...]]:
            if key not in payload:
                if required:
                    raise ScenarioFileError(f"grid spec is missing required key {key!r}")
                return None
            values = payload[key]
            if (
                not isinstance(values, Sequence)
                or isinstance(values, (str, bytes))
                or not values
                or not all(isinstance(value, str) for value in values)
            ):
                raise ScenarioFileError(
                    f"grid-spec {key!r} must be a non-empty list of strings, got {values!r}"
                )
            return tuple(values)

        def numbers(key: str, kind: type) -> Optional[Tuple]:
            if key not in payload:
                return None
            values = payload[key]
            if (
                not isinstance(values, Sequence)
                or isinstance(values, (str, bytes))
                or not values
                or not all(
                    isinstance(value, kind) and not isinstance(value, bool) for value in values
                )
            ):
                raise ScenarioFileError(
                    f"grid-spec {key!r} must be a non-empty list of {kind.__name__}s, "
                    f"got {values!r}"
                )
            return tuple(values)

        def scalar(key: str, kind: type):
            if key not in payload:
                return None
            value = payload[key]
            if kind is float and isinstance(value, int) and not isinstance(value, bool):
                value = float(value)
            if not isinstance(value, kind) or isinstance(value, bool):
                raise ScenarioFileError(
                    f"grid-spec {key!r} must be a {kind.__name__}, got {value!r}"
                )
            return value

        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ScenarioFileError(f"grid-spec 'name' must be a non-empty string, got {name!r}")
        raw_topologies = payload.get("topologies")
        if not isinstance(raw_topologies, Sequence) or not raw_topologies:
            raise ScenarioFileError(
                f"grid-spec 'topologies' must be a non-empty list, got {raw_topologies!r}"
            )
        fields: Dict[str, object] = {
            "name": name,
            "algorithms": strings("algorithms", required=True),
            "topologies": tuple(TopologySpec.from_dict(entry) for entry in raw_topologies),
        }
        for key, value in (
            ("f_values", numbers("f_values", int)),
            ("behaviors", strings("behaviors")),
            ("placements", strings("placements")),
            ("faults", strings("faults")),
            ("seeds", numbers("seeds", int)),
            ("epsilon", scalar("epsilon", float)),
            ("input_low", scalar("input_low", float)),
            ("input_high", scalar("input_high", float)),
            ("inputs", scalar("inputs", str)),
            ("path_policy", scalar("path_policy", str)),
            ("rounds", scalar("rounds", int)),
        ):
            if value is not None:
                fields[key] = value
        return cls(**fields)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SweepCell:
    """One concrete point of a grid, with its order-independent seed."""

    index: int
    algorithm: str
    topology: TopologySpec
    f: int
    behavior: str
    placement: str
    seed: int
    derived_seed: int
    faults: str = "none"

    @property
    def label(self) -> str:
        fault_part = "" if self.faults == "none" else f"|{self.faults}"
        return (
            f"{self.algorithm}|{self.topology.label}|f={self.f}"
            f"|{self.behavior}|{self.placement}{fault_part}|s={self.seed}"
        )

    @property
    def resolved_topology(self) -> TopologySpec:
        """The buildable topology spec for this cell: the :data:`CELL_SEED`
        sentinel (if any) resolved to the cell's derived seed.  Workers build
        and cache graphs under this spec; results keep reporting the
        sentinel-form :attr:`topology` label so seed cells group together."""
        return self.topology.resolve_cell_seed(self.derived_seed)


# ----------------------------------------------------------------------
# per-cell result + aggregation
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """Normalized, JSON-serializable outcome of one cell.

    ``output_range`` is ``None`` when some honest node never decided (the
    in-memory :class:`~repro.runner.metrics.ConsensusOutcome` uses ``inf``,
    which JSON cannot represent).  Condition-check cells report zero rounds
    and messages and put their facts into ``metrics``.
    """

    index: int
    algorithm: str
    topology: str
    n: int
    f: int
    behavior: str
    placement: str
    seed: int
    derived_seed: int
    success: bool
    output_range: Optional[float] = None
    rounds: int = 0
    messages: int = 0
    simulated_time: float = 0.0
    metrics: Dict[str, object] = field(default_factory=dict)
    faults: str = "none"

    @classmethod
    def from_outcome(
        cls, cell: SweepCell, graph: DiGraph, outcome: ConsensusOutcome
    ) -> "CellResult":
        observed = outcome.output_range
        metrics: Dict[str, object] = {
            "epsilon_agreement": outcome.epsilon_agreement,
            "validity": outcome.validity,
            "termination": outcome.termination,
        }
        if outcome.fault_summary:
            metrics["faults"] = dict(outcome.fault_summary)
        return cls(
            index=cell.index,
            algorithm=cell.algorithm,
            topology=cell.topology.label,
            n=graph.num_nodes,
            f=cell.f,
            behavior=cell.behavior,
            placement=cell.placement,
            seed=cell.seed,
            derived_seed=cell.derived_seed,
            success=outcome.correct,
            output_range=None if observed == float("inf") else observed,
            rounds=outcome.rounds,
            messages=outcome.messages_delivered,
            simulated_time=outcome.simulated_time,
            metrics=metrics,
            faults=cell.faults,
        )

    @property
    def group_key(self) -> Tuple[str, str, int, str, str, str]:
        """Aggregation key: every axis except the seed."""
        return (
            self.algorithm,
            self.topology,
            self.f,
            self.behavior,
            self.placement,
            self.faults,
        )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "index": self.index,
            "algorithm": self.algorithm,
            "topology": self.topology,
            "n": self.n,
            "f": self.f,
            "behavior": self.behavior,
            "placement": self.placement,
            "seed": self.seed,
            "derived_seed": self.derived_seed,
            "success": self.success,
            "output_range": self.output_range,
            "rounds": self.rounds,
            "messages": self.messages,
            "simulated_time": self.simulated_time,
            "metrics": dict(self.metrics),
        }
        # Emitted only off the default, keeping fault-free cell records (and
        # therefore every committed artifact and journal) byte-identical.
        if self.faults != "none":
            payload["faults"] = self.faults
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CellResult":
        return cls(
            index=int(payload["index"]),
            algorithm=str(payload["algorithm"]),
            topology=str(payload["topology"]),
            n=int(payload["n"]),
            f=int(payload["f"]),
            behavior=str(payload["behavior"]),
            placement=str(payload["placement"]),
            seed=int(payload["seed"]),
            derived_seed=int(payload["derived_seed"]),
            success=bool(payload["success"]),
            output_range=payload.get("output_range"),  # type: ignore[arg-type]
            rounds=int(payload.get("rounds", 0)),
            messages=int(payload.get("messages", 0)),
            simulated_time=float(payload.get("simulated_time", 0.0)),
            metrics=dict(payload.get("metrics", {})),  # type: ignore[arg-type]
            faults=str(payload.get("faults", "none")),
        )


@dataclass
class GroupAggregate:
    """Incremental aggregate of every cell sharing one group key."""

    algorithm: str
    topology: str
    f: int
    behavior: str
    placement: str
    runs: int = 0
    successes: int = 0
    total_rounds: int = 0
    total_messages: int = 0
    worst_range: float = 0.0
    undecided: int = 0
    faults: str = "none"

    def fold(self, result: CellResult) -> None:
        self.runs += 1
        self.successes += 1 if result.success else 0
        self.total_rounds += result.rounds
        self.total_messages += result.messages
        if result.output_range is None:
            self.undecided += 1
        else:
            self.worst_range = max(self.worst_range, result.output_range)

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    @property
    def mean_rounds(self) -> float:
        return self.total_rounds / self.runs if self.runs else 0.0

    @property
    def mean_messages(self) -> float:
        return self.total_messages / self.runs if self.runs else 0.0

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "algorithm": self.algorithm,
            "topology": self.topology,
            "f": self.f,
            "behavior": self.behavior,
            "placement": self.placement,
            "runs": self.runs,
            "successes": self.successes,
            "success_rate": self.success_rate,
            "mean_rounds": self.mean_rounds,
            "mean_messages": self.mean_messages,
            "worst_range": None if self.undecided else self.worst_range,
        }
        # Same omit-at-default rule as CellResult.as_dict.
        if self.faults != "none":
            payload["faults"] = self.faults
        return payload


def _fold_into(
    groups: Dict[Tuple[str, str, int, str, str, str], GroupAggregate], result: CellResult
) -> None:
    """Fold one cell into the group map (creating its group on first sight)."""
    key = result.group_key
    if key not in groups:
        groups[key] = GroupAggregate(
            algorithm=result.algorithm,
            topology=result.topology,
            f=result.f,
            behavior=result.behavior,
            placement=result.placement,
            faults=result.faults,
        )
    groups[key].fold(result)


def aggregate_cells(cells: Sequence[CellResult]) -> List[GroupAggregate]:
    """Fold cell results into per-group aggregates, ordered by first occurrence."""
    groups: Dict[Tuple[str, str, int, str, str, str], GroupAggregate] = {}
    for result in cells:
        _fold_into(groups, result)
    return list(groups.values())


@dataclass
class SweepRunResult:
    """Everything a sweep produced: cells in index order plus aggregates.

    ``wall_seconds`` and ``workers`` are observational — they are *not*
    serialized into artifacts, so serial and sharded runs stay byte-identical.
    """

    spec: GridSpec
    cells: List[CellResult]
    groups: List[GroupAggregate]
    workers: int = 1
    wall_seconds: float = 0.0
    #: ``None`` for a completed sweep; the :class:`StopSweep` reason when an
    #: observer (e.g. a session stop policy) ended the run early.  Like the
    #: timing fields, never serialized into artifacts.
    stop_reason: Optional[str] = None

    @property
    def success_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(1 for cell in self.cells if cell.success) / len(self.cells)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def _default_runner() -> CellRunner:
    from repro.runner.scenarios import run_cell

    return run_cell


class SweepEngine:
    """Expand a :class:`GridSpec` and execute it, optionally sharded.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs in-process;
        larger values shard cells across a ``multiprocessing`` pool in
        chunked batches.  Results are identical either way.
    chunk_size:
        Cells per pool task.  Defaults to ``ceil(cells / (workers * 4))`` so
        each worker receives a handful of batches (amortizing IPC overhead
        while keeping the shards balanced).
    """

    def __init__(self, workers: int = 1, chunk_size: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size

    def expand(self, spec: GridSpec) -> List[SweepCell]:
        """Expansion is delegated to the spec; exposed here for symmetry."""
        return spec.expand()

    def stream(
        self,
        spec: GridSpec,
        runner: Optional[CellRunner] = None,
        cells: Optional[Sequence[SweepCell]] = None,
    ) -> Iterator[CellResult]:
        """Yield every :class:`CellResult` as it completes, in cell-index order.

        This generator is the engine's observer surface: the serial path and
        the sharded ``workers > 1`` path emit the *identical* result stream
        (same cells, same order), so consumers — the streaming
        :class:`~repro.runner.session.ExperimentSession`, journals, progress
        views — never depend on the worker count.  On the sharded path,
        results arriving out of order are held back until every earlier
        index has been yielded.

        ``cells`` restricts execution to a subset of the grid (resume runs
        pass the not-yet-completed cells); it defaults to the full
        expansion.  The worker pool lives inside a ``with`` block, so
        closing the generator early — a stop policy, a crashed consumer, a
        ``KeyboardInterrupt`` in the driving loop — tears the pool down
        deterministically instead of leaking worker processes.
        """
        default_runner = _default_runner()
        using_default = runner is None or runner is default_runner
        runner = runner or default_runner
        if cells is None:
            cells = spec.expand()
        else:
            cells = sorted(cells, key=lambda cell: cell.index)
        if self.workers == 1 or len(cells) <= 1:
            for cell in cells:
                yield runner(spec, cell)
            return
        if using_default:
            # Build every needed topology object once in the parent so
            # fork-based workers inherit them copy-on-write instead of
            # each rebuilding the expensive precomputation.
            from repro.runner.worker_cache import warm_worker_caches

            warm_worker_caches(spec, cells)
        chunk = self.chunk_size or max(1, math.ceil(len(cells) / (self.workers * 4)))
        # Dispatch same-topology cells contiguously so each chunk — and
        # therefore each worker — builds a topology's graph / bitmask
        # index / TopologyKnowledge at most once (the worker-global cache
        # in repro.runner.worker_cache keeps them warm across its chunks).
        # Completed results are released in cell-index order via the
        # hold-back buffer below, so the stream — and any artifact folded
        # from it — stays byte-identical to the serial run.
        dispatch_order = sorted(
            cells, key=lambda cell: (cell.topology.label, cell.f, cell.algorithm, cell.index)
        )
        expected = [cell.index for cell in cells]
        held_back: Dict[int, CellResult] = {}
        position = 0
        with multiprocessing.Pool(processes=self.workers) as pool:
            for result in pool.imap(
                functools.partial(runner, spec), dispatch_order, chunksize=chunk
            ):
                held_back[result.index] = result
                while position < len(expected) and expected[position] in held_back:
                    yield held_back.pop(expected[position])
                    position += 1

    def run(
        self,
        spec: GridSpec,
        runner: Optional[CellRunner] = None,
        observer: Optional[CellObserver] = None,
        cells: Optional[Sequence[SweepCell]] = None,
    ) -> SweepRunResult:
        """Execute every cell of ``spec`` and aggregate incrementally.

        ``runner`` must be a picklable module-level callable when
        ``workers > 1``; it defaults to the scenario registry's
        :func:`~repro.runner.scenarios.run_cell`.  ``observer`` — the hook
        behind the streaming session API — is invoked once per completed
        cell in cell-index order (identically for serial and sharded runs)
        and may raise :class:`StopSweep` to end the sweep early with a
        partial result; any other exception it raises propagates after the
        worker pool has been released.
        """
        start = time.perf_counter()
        results: List[CellResult] = []
        groups: Dict[Tuple[str, str, int, str, str, str], GroupAggregate] = {}
        stop_reason: Optional[str] = None
        stream = self.stream(spec, runner=runner, cells=cells)
        try:
            for result in stream:
                results.append(result)
                _fold_into(groups, result)
                if observer is not None:
                    observer(result)
        except StopSweep as stop:
            stop_reason = stop.reason
        finally:
            # Closing the generator runs its pool context manager, so a
            # mid-run exception (poisoned runner, observer failure) never
            # leaks worker processes.
            stream.close()
        wall = time.perf_counter() - start
        return SweepRunResult(
            spec=spec,
            cells=results,
            groups=list(groups.values()),
            workers=self.workers,
            wall_seconds=wall,
            stop_reason=stop_reason,
        )


def run_grid(
    spec: GridSpec,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    runner: Optional[CellRunner] = None,
) -> SweepRunResult:
    """Deprecated (api v1): one-call blocking wrapper around :class:`SweepEngine`.

    The v2 run surface is
    :class:`~repro.runner.session.ExperimentSession` —
    ``ExperimentSession(spec, workers=N).run()`` is the drop-in
    replacement, and sessions additionally stream events, journal progress
    and resume interrupted runs.  Importing ``run_grid`` from
    :mod:`repro.api` emits a :class:`DeprecationWarning`; this definition is
    the shim's home and stays until api v3.
    """
    return SweepEngine(workers=workers, chunk_size=chunk_size).run(spec, runner=runner)


# ----------------------------------------------------------------------
# legacy behaviour sweep (kept for ad-hoc drivers and the examples)
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """Aggregate of a family of outcomes sharing one experimental cell."""

    label: str
    outcomes: List[ConsensusOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Number of executions in the cell."""
        return len(self.outcomes)

    @property
    def success_rate(self) -> float:
        """Fraction of runs satisfying all of Definition 1."""
        return aggregate_success_rate(self.outcomes)

    @property
    def worst_range(self) -> float:
        """Largest honest output range observed."""
        return max((outcome.output_range for outcome in self.outcomes), default=0.0)

    @property
    def mean_messages(self) -> float:
        """Mean delivered messages per run."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.messages_delivered for outcome in self.outcomes) / len(self.outcomes)

    @property
    def mean_rounds(self) -> float:
        """Mean completed rounds per run."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.rounds for outcome in self.outcomes) / len(self.outcomes)

    def as_row(self) -> List:
        """Row used by the plain-text reporting helpers."""
        worst = self.worst_range
        worst_text = "inf" if worst == float("inf") else f"{worst:.4g}"
        return [
            self.label,
            self.runs,
            f"{self.success_rate:.2f}",
            worst_text,
            f"{self.mean_rounds:.1f}",
            f"{self.mean_messages:.0f}",
        ]


def sweep_behaviors(
    run_one: Callable[[FaultPlan, int, str], ConsensusOutcome],
    graph: DiGraph,
    f: int,
    behaviors: Optional[Mapping[str, Callable]] = None,
    seeds: Sequence[int] = (1, 2, 3),
    placement_seed: int = 7,
) -> List[SweepResult]:
    """Run ``run_one`` for every behaviour × seed combination (serially).

    ``run_one(fault_plan, seed, behavior_name)`` must return an outcome.  The
    fault placement is seeded per cell from ``(placement_seed, seed)`` via
    :func:`derive_cell_seed` — *not* from any global RNG state — so every
    behaviour faces the same faulty set per seed and reordering or
    subsetting the behaviour axis never changes any cell's result.
    """
    behaviors = dict(behaviors or STANDARD_BEHAVIOR_FACTORIES)
    results: List[SweepResult] = []
    for behavior_name, factory in behaviors.items():
        cell = SweepResult(label=behavior_name)
        for seed in seeds:
            faulty = place_random(
                graph, f, seed=derive_cell_seed(f"placement:{placement_seed}", seed)
            )
            plan = FaultPlan(faulty, lambda node, factory=factory: factory(), seed=seed)
            cell.outcomes.append(run_one(plan, seed, behavior_name))
        results.append(cell)
    return results


__all__ = [
    "CELL_SEED",
    "NOT_APPLICABLE",
    "CellObserver",
    "CellResult",
    "CellRunner",
    "StopSweep",
    "GridSpec",
    "GroupAggregate",
    "SweepCell",
    "SweepEngine",
    "SweepResult",
    "SweepRunResult",
    "TopologySpec",
    "aggregate_cells",
    "derive_cell_seed",
    "random_inputs",
    "run_grid",
    "spread_inputs",
    "sweep_behaviors",
]
