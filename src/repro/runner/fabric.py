"""Multi-host sweep fabric: coordinator/worker leasing over the journal.

The journal made every cell idempotent and addressable by
``(spec_hash, cell index)`` — exactly the contract a distributed work queue
needs.  The fabric builds that queue out of nothing but files in a shared
run directory, so the same protocol runs a single-host process pool
(``run --fabric N``) and a multi-machine sweep over NFS (``run --fabric 0``
on the coordinator host, ``fabric worker --run-dir /nfs/dir`` anywhere
else) without code changes.  ``docs/fabric-protocol.md`` is the normative
wire-format spec; this module is the reference implementation.

Roles:

* The **coordinator** (:class:`FabricCoordinator`) owns the canonical
  journal.  It publishes leases over the pending cell indexes
  (:mod:`repro.runner.leases`), incrementally merges worker shards into
  ``journal.jsonl`` in strict index order (a hold-back buffer, exactly like
  the sharded engine), feeds the merged stream to stop policies, fences
  expired leases, splits the largest outstanding lease when workers idle
  (straggler work-stealing — BW-heavy cells are ~30x slower than condition
  cells), and finally seals the journal.  Because per-cell seeds derive
  from ``(scenario, index)`` and the merge is index-ordered, ``fold()`` of
  a fabric journal is byte-identical to the serial run's.
* A **worker** (:class:`FabricWorker`) claims a lease by atomic rename,
  executes its cells serially, appends each result to its own shard
  ``shards/<worker-id>.jsonl`` (flushed per record), heartbeats the lease
  file's mtime, and releases the lease once the range is durably recorded.
  Workers are sandboxed by the fencing rule: a worker that lost its lease
  can keep writing, but the coordinator rejects shard records whose epoch
  is stale for their index, so late writes are harmless.

Lifecycle files (all under the run dir — see ``docs/fabric-protocol.md``):
``fabric.json`` (manifest + coordinator heartbeat via mtime),
``leases/`` (lease files + ``fence.log``), ``shards/`` (per-worker
results), ``workers/`` (observability-only status files), ``stop.json``
(the stop sentinel the coordinator writes on completion, policy stop, or
interruption — workers exit when they see it).

Crash matrix: a SIGKILLed worker loses at most its unflushed tail — the
coordinator fences the lease after ``lease_ttl`` without a heartbeat
(immediately, for pool workers it spawned itself) and re-leases the
unfinished remainder at ``epoch + 1``.  A dead coordinator is detected by
workers via the manifest mtime going stale for ``orphan_grace`` seconds;
they exit with code :data:`EXIT_ORPHANED` (4) and the run resumes later
with ``run --resume DIR --fabric N`` (fence log replayed, shards
re-merged, leftovers re-fenced, pending re-leased).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import ExperimentError, JournalError, ReproError
from repro.runner.artifacts import artifact_payload, write_payload
from repro.runner.harness import (
    CellResult,
    GridSpec,
    SweepCell,
    SweepRunResult,
    _fold_into,
    aggregate_cells,
)
from repro.runner.journal import (
    Journal,
    JournalWriter,
    load_journal,
    tail_records,
)
from repro.runner.leases import (
    Lease,
    append_fence,
    atomic_write_json,
    chunk_runs,
    claim,
    contiguous_runs,
    heartbeat,
    lease_age,
    list_available,
    list_owned,
    read_lease,
    release,
    replay_fence_log,
    validate_worker_id,
    write_available,
)
from repro.runner.session import (
    DEFAULT_CHECKPOINT_INTERVAL,
    CellCompleted,
    CheckpointWritten,
    GroupUpdated,
    RunFinished,
    RunStarted,
    SessionEvent,
    StopPolicy,
    expected_group_count,
    make_stop_policy,
)
from repro.runner.worker_cache import cache_snapshot, warm_worker_caches

PathLike = Union[str, pathlib.Path]
Observer = Callable[[SessionEvent], None]

FABRIC_VERSION = 1
FABRIC_KIND = "repro-fabric"
SHARD_VERSION = 1
SHARD_KIND = "repro-fabric-shard"
STOP_KIND = "repro-fabric-stop"
WORKER_KIND = "repro-fabric-worker"

#: File names / directory names inside a fabric run dir.
MANIFEST_FILENAME = "fabric.json"
STOP_FILENAME = "stop.json"
SHARDS_DIRNAME = "shards"
WORKERS_DIRNAME = "workers"

#: Minimum seconds between work-stealing scans (idle-worker detection is
#: advisory; fencing, the liveness mechanism, still runs every poll round).
STEAL_SCAN_INTERVAL = 1.0

#: Exit code of a fabric worker that aborted because the coordinator's
#: manifest heartbeat went stale for ``orphan_grace`` seconds (documented
#: alongside 0/1/2/3 in :mod:`repro.runner`; the CLI re-exports it as
#: ``EXIT_FABRIC_ORPHANED``).
EXIT_ORPHANED = 4


class FabricError(ReproError):
    """A fabric run directory violates the protocol in docs/fabric-protocol.md."""


@dataclass(frozen=True)
class FabricConfig:
    """Tuning knobs of a fabric run (recorded in ``fabric.json``).

    ``workers`` is the number of pool workers the coordinator spawns
    itself; 0 means coordinator-only (external workers join via
    ``fabric worker --run-dir``).  ``lease_ttl`` must exceed the slowest
    single cell — workers heartbeat between cells, not during them.
    """

    workers: int = 3
    lease_ttl: float = 30.0
    #: Heartbeat cadence of workers; defaults to ``lease_ttl / 10``.
    heartbeat_interval: Optional[float] = None
    poll_interval: float = 0.2
    #: Initial lease granularity: pending cells are cut into about
    #: ``workers * chunks_per_worker`` ranges (work-stealing refines later).
    chunks_per_worker: int = 4
    #: Seconds of stale coordinator heartbeat after which workers abort
    #: with :data:`EXIT_ORPHANED`; defaults to ``10 * lease_ttl``.
    orphan_grace: Optional[float] = None
    #: Artificial per-cell delay in workers (straggler simulation for
    #: crash-injection tests; 0 in real runs).
    worker_throttle: float = 0.0
    #: Plugin modules workers must import before expanding the grid.
    plugins: Tuple[str, ...] = ()

    @property
    def effective_heartbeat(self) -> float:
        return self.heartbeat_interval if self.heartbeat_interval is not None else self.lease_ttl / 10.0

    @property
    def effective_orphan_grace(self) -> float:
        return self.orphan_grace if self.orphan_grace is not None else 10.0 * self.lease_ttl


# ----------------------------------------------------------------------
# run-dir file helpers (manifest, stop sentinel)
# ----------------------------------------------------------------------
def manifest_path(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / MANIFEST_FILENAME


def stop_path(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / STOP_FILENAME


def shards_dir(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / SHARDS_DIRNAME


def workers_dir(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / WORKERS_DIRNAME


def shard_path(run_dir: PathLike, worker_id: str) -> pathlib.Path:
    return shards_dir(run_dir) / f"{worker_id}.jsonl"


def write_manifest(run_dir: PathLike, spec_hash: str, mode: str, config: FabricConfig) -> pathlib.Path:
    payload = {
        "kind": FABRIC_KIND,
        "fabric_version": FABRIC_VERSION,
        "spec_hash": spec_hash,
        "mode": mode,
        "lease_ttl": config.lease_ttl,
        "heartbeat_interval": config.effective_heartbeat,
        "poll_interval": config.poll_interval,
        "orphan_grace": config.effective_orphan_grace,
        "worker_throttle": config.worker_throttle,
        "plugins": list(config.plugins),
    }
    path = manifest_path(run_dir)
    atomic_write_json(path, payload)
    return path


def read_manifest(run_dir: PathLike) -> Dict[str, object]:
    path = manifest_path(run_dir)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FabricError(f"{path} does not exist — not a fabric run directory") from None
    if not isinstance(payload, dict) or payload.get("kind") != FABRIC_KIND:
        raise FabricError(f"{path}: not a fabric manifest")
    if payload.get("fabric_version") != FABRIC_VERSION:
        raise FabricError(
            f"{path}: unsupported fabric_version {payload.get('fabric_version')!r}"
        )
    return payload


def write_stop(run_dir: PathLike, reason: str) -> None:
    atomic_write_json(
        stop_path(run_dir), {"kind": STOP_KIND, "stop_version": 1, "reason": reason}
    )


def read_stop(run_dir: PathLike) -> Optional[Dict[str, object]]:
    try:
        payload = json.loads(stop_path(run_dir).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    if not isinstance(payload, dict) or payload.get("kind") != STOP_KIND:
        raise FabricError(f"{stop_path(run_dir)}: not a fabric stop sentinel")
    return payload


# ----------------------------------------------------------------------
# transient-I/O hardening
# ----------------------------------------------------------------------
#: How many times a failed shard append / heartbeat is attempted before the
#: error surfaces, and the capped exponential backoff between attempts.
TRANSIENT_IO_ATTEMPTS = 5
TRANSIENT_IO_BACKOFF = 0.05
TRANSIENT_IO_BACKOFF_CAP = 1.0


def retry_transient_io(
    operation: Callable[[], object],
    describe: str,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run ``operation``, retrying transient ``OSError`` with capped backoff.

    A flaky filesystem (NFS hiccup, ``EAGAIN``/``EIO`` burst) must not kill
    a worker mid-lease — exit code :data:`EXIT_ORPHANED` is reserved for
    genuine coordinator loss.  ``FileNotFoundError`` is deliberately *not*
    retried: a vanished lease file is the coordinator's fencing signal and
    must surface immediately.
    """
    delay = TRANSIENT_IO_BACKOFF
    for attempt in range(1, TRANSIENT_IO_ATTEMPTS + 1):
        try:
            return operation()
        except FileNotFoundError:
            raise
        except OSError:
            if attempt >= TRANSIENT_IO_ATTEMPTS:
                raise
            sleep(delay)
            delay = min(delay * 2.0, TRANSIENT_IO_BACKOFF_CAP)
    raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# shard writing (the worker's append-only result log)
# ----------------------------------------------------------------------
class ShardWriter:
    """Append-only per-worker result shard (``shards/<worker-id>.jsonl``).

    A shard is *not* a journal: no seal, no duplicate-index constraint —
    re-claimed ranges may legitimately append an index twice under
    different epochs, and the coordinator's epoch-fenced merge is the
    arbiter.  Records are flushed as appended (a SIGKILLed worker loses at
    most its unflushed tail, which simply re-runs); :meth:`sync` is called
    before the lease is released so a released range is always durable.
    """

    def __init__(self, run_dir: PathLike, worker_id: str, spec_hash: str) -> None:
        directory = shards_dir(run_dir)
        directory.mkdir(parents=True, exist_ok=True)
        self.path = directory / f"{worker_id}.jsonl"
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._pending = bytearray()
        if fresh:
            self._write(
                {
                    "record": "header",
                    "kind": SHARD_KIND,
                    "shard_version": SHARD_VERSION,
                    "worker": worker_id,
                    "spec_hash": spec_hash,
                }
            )
            self.sync()

    def _write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        self._pending.extend(line.encode("utf-8"))
        self._drain()

    def _drain(self) -> None:
        # Exactly-once append under transient failures: bytes leave
        # ``_pending`` only once the OS accepted them, so a retried write
        # resumes mid-line instead of duplicating a record (a torn or
        # doubled line would poison the coordinator's merge).
        while self._pending:
            written = retry_transient_io(
                lambda: os.write(self._fd, bytes(self._pending)),
                f"shard {self.path}: append",
            )
            del self._pending[: int(written)]

    def append_cell(self, result: CellResult, epoch: int) -> None:
        self._write({"record": "cell", "epoch": epoch, "cell": result.as_dict()})

    def sync(self) -> None:
        retry_transient_io(lambda: os.fsync(self._fd), f"shard {self.path}: fsync")

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the worker
# ----------------------------------------------------------------------
class FabricWorker:
    """One fabric worker: claim → execute → shard-append → release, repeat.

    Drives cells strictly in index order within each lease, re-reading its
    owned lease file before every cell (the file's *content* is
    authoritative: a coordinator split may have shrunk ``end``; a vanished
    file means the lease was fenced and the remainder must be abandoned).
    Runs in-process (tests call :meth:`run` directly, or on a thread) or as
    the ``fabric worker`` CLI subprocess.  :meth:`run` returns a process
    exit code: 0 (stop sentinel seen or startup raced a finished run),
    :data:`EXIT_ORPHANED` when the coordinator heartbeat went stale.
    """

    def __init__(
        self,
        run_dir: PathLike,
        worker_id: str,
        throttle: Optional[float] = None,
        join_timeout: float = 10.0,
    ) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.worker_id = validate_worker_id(worker_id)
        self._throttle_override = throttle
        self._join_timeout = join_timeout
        self.cells_done = 0
        self.leases_worked = 0
        self.fenced_observed = 0

    # -- status files (observability only; never load-bearing) ----------
    def _write_status(self, state: str, lease: Optional[Lease] = None) -> None:
        directory = workers_dir(self.run_dir)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            directory / f"{self.worker_id}.json",
            {
                "kind": WORKER_KIND,
                "worker": self.worker_id,
                "pid": os.getpid(),
                "state": state,
                "lease": lease.label if lease is not None else None,
                "epoch": lease.epoch if lease is not None else None,
                "cells_done": self.cells_done,
                "caches": cache_snapshot(),
            },
        )

    # -- startup ---------------------------------------------------------
    def _join(self) -> Tuple[Dict[str, object], GridSpec, str]:
        """Wait for the coordinator's manifest + journal, then load both."""
        deadline = time.time() + self._join_timeout
        while True:
            try:
                manifest = read_manifest(self.run_dir)
                journal = load_journal(self.run_dir)
                break
            except (FabricError, JournalError):
                if time.time() >= deadline:
                    raise
                time.sleep(0.1)
        for module in manifest.get("plugins") or ():
            import importlib

            try:
                importlib.import_module(str(module))
            except ImportError as error:
                raise FabricError(
                    f"cannot import plugin module {module!r} named by the fabric "
                    f"manifest: {error}"
                ) from None
        if manifest.get("spec_hash") != journal.spec_hash:
            raise FabricError(
                f"{manifest_path(self.run_dir)}: manifest spec_hash does not match "
                "the journal header — mixed run directories?"
            )
        return manifest, journal.grid_spec(), journal.spec_hash

    def _orphaned(self, grace: float) -> bool:
        age = lease_age(manifest_path(self.run_dir))
        return age is None or age > grace

    def _stopped(self) -> bool:
        return read_stop(self.run_dir) is not None

    # -- the loop --------------------------------------------------------
    def run(self) -> int:
        from repro.runner.scenarios import run_cell

        manifest, spec, spec_hash = self._join()
        throttle = (
            self._throttle_override
            if self._throttle_override is not None
            else float(manifest.get("worker_throttle") or 0.0)
        )
        heartbeat_interval = float(manifest["heartbeat_interval"])
        poll_interval = float(manifest["poll_interval"])
        orphan_grace = float(manifest["orphan_grace"])
        cells_by_index: Dict[int, SweepCell] = {cell.index: cell for cell in spec.expand()}

        self._write_status("idle")
        try:
            while True:
                if self._stopped():
                    return 0
                if self._orphaned(orphan_grace):
                    self._write_status("orphaned")
                    return EXIT_ORPHANED
                claimed = claim(self.run_dir, self.worker_id)
                if claimed is None:
                    time.sleep(poll_interval)
                    continue
                self._work_lease(
                    claimed[0],
                    claimed[1],
                    spec,
                    spec_hash,
                    cells_by_index,
                    run_cell,
                    throttle,
                    heartbeat_interval,
                )
                self._write_status("idle")
        finally:
            self._write_status("exited")

    def _work_lease(
        self,
        path: pathlib.Path,
        lease: Lease,
        spec: GridSpec,
        spec_hash: str,
        cells_by_index: Dict[int, SweepCell],
        run_cell,
        throttle: float,
        heartbeat_interval: float,
    ) -> None:
        self.leases_worked += 1
        self._write_status("working", lease)
        warm_worker_caches(
            spec, [cells_by_index[i] for i in lease.indexes() if i in cells_by_index]
        )
        last_beat = time.monotonic()
        with ShardWriter(self.run_dir, self.worker_id, spec_hash) as shard:
            index = lease.start
            while True:
                # Re-read before every cell: the content is authoritative —
                # ``end`` shrinks under a split, and a vanished file means
                # the coordinator fenced us (abandon the remainder; any
                # already-appended cells stay durable and dedup at merge).
                try:
                    current = read_lease(path)
                except FileNotFoundError:
                    self.fenced_observed += 1
                    return
                if index >= current.end:
                    break  # range complete
                if self._stopped():
                    break  # run is ending; completed prefix is in the shard
                if time.monotonic() - last_beat >= heartbeat_interval:
                    try:
                        retry_transient_io(
                            lambda: heartbeat(path), f"lease {path.name}: heartbeat"
                        )
                    except FileNotFoundError:
                        continue  # fenced; the loop-top re-read abandons the range
                    last_beat = time.monotonic()
                if throttle > 0:
                    self._throttled_sleep(throttle, path, heartbeat_interval)
                    last_beat = time.monotonic()
                cell = cells_by_index.get(index)
                if cell is None:
                    raise FabricError(
                        f"lease {current.label} covers index {index}, which is not "
                        "in the grid — spec/journal mismatch"
                    )
                shard.append_cell(run_cell(spec, cell), current.epoch)
                self.cells_done += 1
                index += 1
            shard.sync()
        release(path)

    def _throttled_sleep(
        self, seconds: float, lease_file: pathlib.Path, heartbeat_interval: float
    ) -> None:
        """Sleep ``seconds`` in short slices, heartbeating and honouring stop.

        The throttle exists so crash-injection tests can widen the
        mid-lease window deterministically; it must not starve heartbeats
        (that would *cause* the fencing it is meant to expose).
        """
        deadline = time.monotonic() + seconds
        last_beat = time.monotonic()
        while time.monotonic() < deadline:
            if self._stopped():
                return
            if time.monotonic() - last_beat >= heartbeat_interval:
                try:
                    retry_transient_io(
                        lambda: heartbeat(lease_file),
                        f"lease {lease_file.name}: heartbeat",
                    )
                except FileNotFoundError:
                    return  # fenced mid-sleep; the per-cell re-read aborts next
                last_beat = time.monotonic()
            time.sleep(min(0.05, seconds))


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
@dataclass
class FabricReport:
    """Merge/lease accounting the coordinator exposes after (and during) a run."""

    merged: int = 0
    duplicates: int = 0
    rejected_stale: int = 0
    fenced: int = 0
    splits: int = 0
    leases_created: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class FabricCoordinator:
    """The fabric's journal owner: lease publisher, shard merger, sealer.

    Deterministically steppable: :meth:`start` publishes the run
    (journal + manifest + leases, optionally spawning pool workers), each
    :meth:`step` does one poll round — heartbeat the manifest, merge shard
    tails, advance the in-order hold-back into the canonical journal, feed
    stop policies, fence expired leases, split for idle workers — and
    returns ``True`` once the run is finished.  :meth:`run` is the blocking
    loop over ``step``; tests drive ``step`` directly with in-process
    workers and a fake clock.
    """

    def __init__(
        self,
        spec: Optional[GridSpec] = None,
        *,
        run_dir: PathLike,
        mode: str = "full",
        config: Optional[FabricConfig] = None,
        stop_policies: Sequence[Union[StopPolicy, str]] = (),
        observer: Optional[Observer] = None,
        _journal: Optional[Journal] = None,
    ) -> None:
        if spec is None and _journal is None:
            raise ExperimentError("FabricCoordinator needs a spec (or use .resume)")
        self.run_dir = pathlib.Path(run_dir)
        self.config = config or FabricConfig()
        self.mode = _journal.mode if _journal is not None else mode
        self.spec = _journal.grid_spec() if _journal is not None else spec
        self.checkpoint_interval = DEFAULT_CHECKPOINT_INTERVAL
        self.stop_policies: List[StopPolicy] = [
            policy if isinstance(policy, StopPolicy) else make_stop_policy(policy)
            for policy in stop_policies
        ]
        self.report = FabricReport()
        self._observer = observer
        self._resumed_journal = _journal
        self._writer: Optional[JournalWriter] = None
        self._provenance: Optional[Dict[str, object]] = None
        self._procs: Dict[str, subprocess.Popen] = {}
        self._offsets: Dict[pathlib.Path, int] = {}
        self._epochs: Dict[int, int] = {}
        self._accepted: Set[int] = set()
        self._journaled: Set[int] = set()
        self._buffer: Dict[int, CellResult] = {}
        self._results: List[CellResult] = []
        self._groups: Dict[Tuple, object] = {}
        self._next = 0
        self._fresh = 0
        self._stop: Optional[Tuple[str, str]] = None
        self._started = False
        self._done = False
        self._finished: Optional[RunFinished] = None
        self._start_clock = 0.0
        self._last_steal_scan = float("-inf")
        self.total = 0
        self.spec_hash = ""

    # -- construction from an interrupted fabric run ---------------------
    @classmethod
    def resume(
        cls,
        run_dir: PathLike,
        *,
        config: Optional[FabricConfig] = None,
        stop_policies: Sequence[Union[StopPolicy, str]] = (),
        observer: Optional[Observer] = None,
    ) -> "FabricCoordinator":
        journal = load_journal(run_dir)
        if journal.sealed:
            raise ExperimentError(
                f"journal {journal.path} is sealed ({journal.seal_reason!r}); the "
                "run is complete — nothing to resume"
            )
        return cls(
            run_dir=run_dir,
            config=config,
            stop_policies=stop_policies,
            observer=observer,
            _journal=journal,
        )

    # -- event plumbing ---------------------------------------------------
    def _emit(self, event: SessionEvent) -> None:
        if self._stop is None:
            for policy in self.stop_policies:
                detail = policy.observe(event)
                if detail is not None:
                    self._stop = (policy.name, detail)
                    break
        if self._observer is not None:
            self._observer(event)

    def _absorb(self, result: CellResult, replayed: bool) -> None:
        self._results.append(result)
        _fold_into(self._groups, result)
        self._emit(
            CellCompleted(
                result=result,
                completed=len(self._results),
                total=self.total,
                replayed=replayed,
            )
        )
        group = self._groups[result.group_key]
        self._emit(GroupUpdated(key=result.group_key, group=replace(group)))

    # -- startup ----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise ExperimentError("coordinator already started")
        self._started = True
        self._start_clock = time.perf_counter()
        self.run_dir.mkdir(parents=True, exist_ok=True)

        replayed: List[CellResult] = []
        if self._resumed_journal is not None:
            self._writer = JournalWriter.resume(self._resumed_journal)
            self._provenance = self._resumed_journal.provenance()
            self.spec_hash = self._resumed_journal.spec_hash
            replayed = sorted(self._resumed_journal.cells, key=lambda cell: cell.index)
            try:
                os.unlink(stop_path(self.run_dir))  # stale sentinel from the
            except FileNotFoundError:  # interrupted run must not stop workers
                pass
        else:
            self._writer = JournalWriter.create(self.run_dir, self.spec, mode=self.mode)
            header = load_journal(self.run_dir)
            self._provenance = header.provenance()
            self.spec_hash = header.spec_hash

        all_cells = self.spec.expand()
        self.total = len(all_cells)
        self._epochs = replay_fence_log(self.run_dir)

        # Resume order matters: merge durable shard work *before* fencing
        # leftover leases, so nothing already paid for is re-leased.
        self._accepted = {cell.index for cell in replayed}
        self._journaled = set(self._accepted)
        self._merge_shards()
        self._fence_leftover_leases()

        write_manifest(self.run_dir, self.spec_hash, self.mode, self.config)

        self._emit(
            RunStarted(
                scenario=self.spec.name,
                mode=self.mode,
                total_cells=self.total,
                completed_cells=len(replayed),
                expected_groups=expected_group_count(self.spec, total=self.total),
                workers=self.config.workers,
                run_dir=str(self.run_dir),
            )
        )
        for cell in replayed:
            self._absorb(cell, replayed=True)
        self._advance()

        if self._stop is None and len(self._accepted) < self.total:
            self._publish_initial_leases()
            if self.config.workers > 0:
                self._spawn_workers()

    def _fence_leftover_leases(self) -> None:
        """Invalidate every lease file left behind by a previous coordinator.

        A zombie worker from the old incarnation may still hold (or later
        claim) one of these, so each range is fenced — epoch bumped,
        durably logged — before fresh leases are published.
        """
        leftovers = [path for path in list_available(self.run_dir)]
        leftovers.extend(path for path, _ in list_owned(self.run_dir))
        for path in leftovers:
            try:
                lease = read_lease(path)
            except FileNotFoundError:
                continue
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            bumped = Lease(lease.start, lease.end, lease.epoch + 1)
            append_fence(self.run_dir, bumped)
            for index in bumped.indexes():
                self._epochs[index] = max(self._epochs.get(index, 0), bumped.epoch)
            self.report.fenced += 1

    def _publish_initial_leases(self) -> None:
        pending = [i for i in range(self.total) if i not in self._accepted]
        if not pending:
            return
        parts = max(1, self.config.workers or 1) * self.config.chunks_per_worker
        chunk_size = max(1, -(-len(pending) // parts))
        for start, end in chunk_runs(contiguous_runs(pending), chunk_size):
            self._publish_lease(start, end)

    def _publish_lease(self, start: int, end: int) -> None:
        """Publish one available lease, normalising the range onto one epoch.

        A lease file carries a single epoch; if the range's indexes sit at
        mixed epochs (possible after partial fences), the whole range is
        lifted to the max — durably fence-logged first, so the merge's
        epoch map can always be rebuilt.
        """
        epoch = max(self._epochs.get(i, 0) for i in range(start, end))
        lease = Lease(start, end, epoch)
        if any(self._epochs.get(i, 0) != epoch for i in range(start, end)):
            append_fence(self.run_dir, lease)
            for index in lease.indexes():
                self._epochs[index] = epoch
        write_available(self.run_dir, lease)
        self.report.leases_created += 1

    def _spawn_workers(self) -> None:
        import repro

        env = dict(os.environ)
        package_parent = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_parent + os.pathsep + existing if existing else package_parent
        )
        for number in range(1, self.config.workers + 1):
            worker_id = f"w{number}"
            self._procs[worker_id] = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.runner",
                    "fabric",
                    "worker",
                    "--run-dir",
                    str(self.run_dir),
                    "--worker-id",
                    worker_id,
                ],
                env=env,
            )

    @property
    def worker_pids(self) -> Dict[str, int]:
        """Pids of the pool workers this coordinator spawned (crash tests)."""
        return {worker_id: proc.pid for worker_id, proc in self._procs.items()}

    # -- the poll round ----------------------------------------------------
    def step(self, now: Optional[float] = None) -> bool:
        """One poll round; returns ``True`` once the run is finished."""
        if not self._started:
            raise ExperimentError("call start() before step()")
        if self._done:
            return True
        now = time.time() if now is None else now
        try:
            os.utime(manifest_path(self.run_dir))  # the coordinator heartbeat
        except FileNotFoundError:
            pass
        self._merge_shards()
        self._advance()
        if self._stop is not None:
            self._finish(f"policy:{self._stop[0]}", detail=self._stop[1])
            return True
        if len(self._accepted) >= self.total:
            self._finish("completed")
            return True
        self._manage_leases(now)
        return False

    def run(self, observer: Optional[Observer] = None) -> SweepRunResult:
        """Blocking form: start, poll until finished, reap workers, fold."""
        if observer is not None:
            self._observer = observer
        self.start()
        try:
            while not self.step():
                time.sleep(self.config.poll_interval)
        except BaseException:
            # SIGINT or anything fatal: tell workers to stop, keep the
            # journal unsealed (resumable via `run --resume DIR --fabric N`).
            write_stop(self.run_dir, "interrupted")
            raise
        finally:
            self.close()
        return self.result

    # -- merging ----------------------------------------------------------
    def _merge_shards(self) -> None:
        directory = shards_dir(self.run_dir)
        if not directory.is_dir():
            return
        for path in sorted(directory.glob("*.jsonl")):
            records, offset = tail_records(path, self._offsets.get(path, 0))
            self._offsets[path] = offset
            for record in records:
                self._merge_record(path, record)

    def _merge_record(self, path: pathlib.Path, record: Dict[str, object]) -> None:
        kind = record.get("record")
        if kind == "header":
            if record.get("kind") != SHARD_KIND or record.get("shard_version") != SHARD_VERSION:
                raise FabricError(f"shard {path}: not a fabric shard header")
            if record.get("spec_hash") != self.spec_hash:
                raise FabricError(
                    f"shard {path}: spec_hash does not match this run's journal — "
                    "a worker joined the wrong run directory"
                )
            return
        if kind != "cell":
            raise FabricError(f"shard {path}: unknown record kind {kind!r}")
        try:
            epoch = int(record["epoch"])
            result = CellResult.from_dict(record["cell"])
        except (KeyError, TypeError, ValueError) as error:
            raise FabricError(f"shard {path}: malformed cell record: {error}") from None
        index = result.index
        if index < 0 or index >= self.total:
            raise FabricError(f"shard {path}: cell index {index} outside the grid")
        if index in self._accepted:
            self.report.duplicates += 1
            return
        if epoch != self._epochs.get(index, 0):
            # The fencing rule: late writes from a lost lease carry a stale
            # epoch and are dropped here, whatever their payload says.
            self.report.rejected_stale += 1
            return
        self._accepted.add(index)
        self._buffer[index] = result
        self.report.merged += 1

    def _advance(self) -> None:
        """Drain the hold-back buffer into the canonical journal, in order.

        The canonical journal receives cells in strict index order — the
        exact order a serial run appends them — so stop policies see the
        identical event sequence and a sealed fabric journal folds
        byte-identically.
        """
        while self._next < self.total and self._stop is None:
            if self._next in self._journaled:
                self._next += 1
                continue
            result = self._buffer.pop(self._next, None)
            if result is None:
                break
            self._writer.append_cell(result)
            self._journaled.add(self._next)
            self._next += 1
            self._fresh += 1
            self._absorb(result, replayed=False)
            if self._fresh % self.checkpoint_interval == 0:
                self._writer.checkpoint()
                self._emit(
                    CheckpointWritten(
                        path=str(self._writer.path),
                        cells_recorded=self._writer.cells_recorded,
                    )
                )

    # -- lease management --------------------------------------------------
    def _manage_leases(self, now: float) -> None:
        for path, owner in list_owned(self.run_dir):
            try:
                lease = read_lease(path)
            except FileNotFoundError:
                continue
            proc = self._procs.get(owner)
            owner_dead = proc is not None and proc.poll() is not None
            age = lease_age(path, now)
            expired = age is not None and age > self.config.lease_ttl
            if owner_dead or expired:
                self._fence(path, lease)
        # Work stealing is a rebalancing heuristic, not a liveness mechanism:
        # scan for idle workers at most once a second rather than every poll
        # round (each scan stats and parses every worker status file, which
        # is real I/O on NFS and real GIL time for in-process workers).
        if time.monotonic() - self._last_steal_scan >= STEAL_SCAN_INTERVAL:
            self._last_steal_scan = time.monotonic()
            if not list_available(self.run_dir) and self._idle_workers() > 0:
                self._split_largest()

    def _fence(self, path: pathlib.Path, lease: Lease) -> None:
        remainder = [i for i in lease.indexes() if i not in self._accepted]
        try:
            os.unlink(path)
        except FileNotFoundError:
            return  # owner released concurrently; its shard has the cells
        self.report.fenced += 1
        if not remainder:
            return
        new_epoch = lease.epoch + 1
        for start, end in contiguous_runs(remainder):
            bumped = Lease(start, end, new_epoch)
            append_fence(self.run_dir, bumped)
            for index in bumped.indexes():
                self._epochs[index] = new_epoch
            write_available(self.run_dir, bumped)
            self.report.leases_created += 1

    def _idle_workers(self) -> int:
        """How many live workers currently hold no lease.

        Pool workers are counted from their subprocess handles; external
        (multi-host) workers from fresh ``workers/<id>.json`` status files
        reporting ``idle``.  Either signal alone is enough to justify a
        split — the cost of a wrong guess is one extra (small) lease.
        """
        owned_by = {owner for _, owner in list_owned(self.run_dir)}
        idle = sum(
            1
            for worker_id, proc in self._procs.items()
            if proc.poll() is None and worker_id not in owned_by
        )
        directory = workers_dir(self.run_dir)
        if directory.is_dir():
            for status_file in directory.glob("*.json"):
                try:
                    payload = json.loads(status_file.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    continue
                worker_id = str(payload.get("worker"))
                if worker_id in self._procs:
                    continue  # already counted via the subprocess handle
                age = lease_age(status_file)
                if (
                    payload.get("state") == "idle"
                    and age is not None
                    and age <= self.config.lease_ttl
                    and worker_id not in owned_by
                ):
                    idle += 1
        return idle

    def _split_largest(self) -> None:
        """Work-steal: split the unfinished tail of the largest owned lease.

        The owner's file is rewritten in place to the head ``[start, M)``
        (same epoch — its in-flight work stays valid) and the tail
        ``[M, end)`` is re-published at ``epoch + 1`` so any cell the owner
        races into the stolen range is rejected as stale.
        """
        best: Optional[Tuple[pathlib.Path, Lease, List[int]]] = None
        for path, _ in list_owned(self.run_dir):
            try:
                lease = read_lease(path)
            except FileNotFoundError:
                continue
            remainder = [i for i in lease.indexes() if i not in self._accepted]
            if len(remainder) < 2:
                continue
            if best is None or len(remainder) > len(best[2]):
                best = (path, lease, remainder)
        if best is None:
            return
        path, lease, remainder = best
        midpoint = remainder[len(remainder) // 2]
        if not (lease.start < midpoint < lease.end):
            return
        atomic_write_json(path, Lease(lease.start, midpoint, lease.epoch).as_dict())
        stolen = Lease(midpoint, lease.end, lease.epoch + 1)
        append_fence(self.run_dir, stolen)
        for index in stolen.indexes():
            self._epochs[index] = stolen.epoch
        write_available(self.run_dir, stolen)
        self.report.splits += 1
        self.report.leases_created += 1

    # -- finishing ---------------------------------------------------------
    def _finish(self, reason: str, detail: Optional[str] = None) -> None:
        write_stop(self.run_dir, reason)
        self._writer.seal(reason, self._results)
        self._emit(
            CheckpointWritten(
                path=str(self._writer.path),
                cells_recorded=self._writer.cells_recorded,
                sealed=True,
            )
        )
        successes = sum(1 for cell in self._results if cell.success)
        self._finished = RunFinished(
            scenario=self.spec.name,
            reason=reason,
            completed=len(self._results),
            total=self.total,
            successes=successes,
            wall_seconds=time.perf_counter() - self._start_clock,
            detail=detail,
        )
        self._emit(self._finished)
        self._done = True
        self._reap_workers()

    def _reap_workers(self, timeout: float = 15.0) -> None:
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                    proc.kill()
                    proc.wait()

    def close(self) -> None:
        """Release the journal handle and reap any pool workers."""
        if self._writer is not None:
            self._writer.close()
        self._reap_workers(timeout=5.0 if not self._done else 15.0)

    # -- results -----------------------------------------------------------
    @property
    def finished(self) -> Optional[RunFinished]:
        return self._finished

    @property
    def result(self) -> SweepRunResult:
        if self._finished is None:
            raise ExperimentError("fabric run has not finished; drive run() or step()")
        cells = sorted(self._results, key=lambda cell: cell.index)
        return SweepRunResult(
            spec=self.spec,
            cells=cells,
            groups=aggregate_cells(cells),
            workers=self.config.workers,
            wall_seconds=self._finished.wall_seconds,
            stop_reason=None if self._finished.reason == "completed" else self._finished.reason,
        )

    def provenance(self) -> Optional[Dict[str, object]]:
        return dict(self._provenance) if self._provenance is not None else None

    def artifact_payload(self) -> Dict[str, object]:
        return artifact_payload(self.result, mode=self.mode, provenance=self.provenance())

    def write_artifact(self, path: PathLike) -> Dict[str, object]:
        payload = self.artifact_payload()
        write_payload(path, payload)
        return payload


# ----------------------------------------------------------------------
# status snapshots (the `fabric status` surface)
# ----------------------------------------------------------------------
def fabric_status(run_dir: PathLike) -> Dict[str, object]:
    """A point-in-time snapshot of a fabric run directory (JSON-ready).

    Read-only and side-effect free: safe to run against a live fabric from
    any host sharing the directory.  Rendered for humans by
    :func:`repro.runner.reporting.render_fabric_status`.
    """
    run_dir = pathlib.Path(run_dir)
    manifest = read_manifest(run_dir)
    stop = read_stop(run_dir)
    snapshot: Dict[str, object] = {
        "run_dir": str(run_dir),
        "manifest": manifest,
        "coordinator_age": lease_age(manifest_path(run_dir)),
        "stop": stop,
        "journal": None,
        "leases": [],
        "shards": {},
        "workers": {},
        "fenced_indexes": 0,
    }
    try:
        journal = load_journal(run_dir)
    except JournalError:
        journal = None
    if journal is not None:
        snapshot["journal"] = {
            "cells": len(journal.cells),
            "total": len(journal.grid_spec().expand()),
            "sealed": journal.sealed,
            "seal_reason": journal.seal_reason,
            "spec_hash": journal.spec_hash,
            "scenario": journal.scenario,
            "mode": journal.mode,
        }
    leases: List[Dict[str, object]] = []
    for path in list_available(run_dir):
        try:
            lease = read_lease(path)
        except (FileNotFoundError, ReproError):
            continue
        leases.append(
            {"range": lease.label, "epoch": lease.epoch, "state": "available", "owner": None}
        )
    for path, owner in list_owned(run_dir):
        try:
            lease = read_lease(path)
        except (FileNotFoundError, ReproError):
            continue
        leases.append(
            {
                "range": lease.label,
                "epoch": lease.epoch,
                "state": "owned",
                "owner": owner,
                "age": lease_age(path),
            }
        )
    snapshot["leases"] = leases
    directory = shards_dir(run_dir)
    if directory.is_dir():
        shards: Dict[str, object] = {}
        for path in sorted(directory.glob("*.jsonl")):
            records, _ = tail_records(path, 0)
            shards[path.stem] = {
                "cells": sum(1 for record in records if record.get("record") == "cell"),
                "bytes": path.stat().st_size,
            }
        snapshot["shards"] = shards
    directory = workers_dir(run_dir)
    if directory.is_dir():
        workers: Dict[str, object] = {}
        for path in sorted(directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            payload["age"] = lease_age(path)
            workers[path.stem] = payload
        snapshot["workers"] = workers
    fence_epochs = replay_fence_log(run_dir)
    snapshot["fenced_indexes"] = len(fence_epochs)
    snapshot["max_epoch"] = max(fence_epochs.values()) if fence_epochs else 0
    return snapshot


__all__ = [
    "EXIT_ORPHANED",
    "FABRIC_KIND",
    "FABRIC_VERSION",
    "FabricConfig",
    "FabricCoordinator",
    "FabricError",
    "FabricReport",
    "FabricWorker",
    "MANIFEST_FILENAME",
    "SHARDS_DIRNAME",
    "SHARD_KIND",
    "SHARD_VERSION",
    "STOP_FILENAME",
    "STOP_KIND",
    "WORKERS_DIRNAME",
    "WORKER_KIND",
    "ShardWriter",
    "fabric_status",
    "manifest_path",
    "read_manifest",
    "read_stop",
    "shard_path",
    "shards_dir",
    "stop_path",
    "workers_dir",
    "write_manifest",
    "write_stop",
]
