"""Experiment drivers: one call = one consensus execution = one outcome.

The drivers wire together graph, inputs, protocol, adversary and network
model, run the simulation to quiescence and convert the result into a
:class:`~repro.runner.metrics.ConsensusOutcome`.  Every benchmark and example
goes through these functions, so cost accounting (messages, rounds, time) is
uniform across algorithms.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from repro.adversary.adversary import FaultPlan, no_faults
from repro.algorithms.base import ConsensusConfig
from repro.algorithms.baselines.abraham import create_clique_processes
from repro.algorithms.baselines.crash_async import create_crash_processes
from repro.algorithms.baselines.iterative import run_iterative_consensus
from repro.algorithms.baselines.local_average import run_local_average
from repro.algorithms.baselines.synchronous import SyncByzantineValue, SynchronousTrace
from repro.algorithms.bw import create_bw_processes
from repro.algorithms.topology import TopologyKnowledge
from repro.exceptions import ExperimentError
from repro.graphs.digraph import DiGraph
from repro.network.delays import DelayModel, UniformDelay
from repro.network.faults import FaultSchedule
from repro.network.simulator import Simulator
from repro.runner.metrics import ConsensusOutcome, per_round_ranges

NodeId = Hashable

#: Safety valve: the faithful algorithm floods exponentially many paths, so a
#: runaway configuration is cut off rather than hanging an experiment.
DEFAULT_MAX_EVENTS = 5_000_000


def _validate_inputs(graph: DiGraph, inputs: Mapping[NodeId, float]) -> None:
    missing = set(graph.nodes) - set(inputs)
    if missing:
        raise ExperimentError(f"missing inputs for nodes {sorted(map(repr, missing))}")


def _outcome_from_processes(
    algorithm: str,
    graph: DiGraph,
    config: ConsensusConfig,
    fault_plan: FaultPlan,
    inputs: Mapping[NodeId, float],
    processes: Mapping[NodeId, object],
    simulator: Simulator,
    behavior_name: str,
    seed: Optional[int],
) -> ConsensusOutcome:
    honest_nodes = fault_plan.nonfaulty(graph.nodes)
    honest = {node: processes[node] for node in honest_nodes}
    outputs = {node: proc.output for node, proc in honest.items() if proc.decided}
    histories = {
        node: getattr(proc, "value_history", [inputs[node]]) for node, proc in honest.items()
    }
    rounds = max((getattr(proc, "rounds_completed", 0) for proc in honest.values()), default=0)
    fault_summary = None
    schedule = simulator.faults
    if schedule is not None and schedule.active:
        stats = simulator.stats
        fault_summary = {
            "policy": schedule.policy,
            "trace_digest": schedule.trace_digest(),
            "control_events": len(schedule.trace()),
            "dropped": stats.dropped_messages,
            "duplicated": stats.duplicated_messages,
            "deferred": stats.deferred_messages,
            "suppressed": stats.suppressed_messages,
            "retransmissions": stats.retransmissions,
        }
    return ConsensusOutcome(
        algorithm=algorithm,
        graph_name=graph.name or "<unnamed>",
        f=config.f,
        epsilon=config.epsilon,
        faulty_nodes=fault_plan.faulty_nodes,
        honest_inputs={node: float(inputs[node]) for node in honest_nodes},
        outputs=outputs,
        all_decided=len(outputs) == len(honest),
        rounds=rounds,
        messages_sent=simulator.stats.sent_messages,
        messages_delivered=simulator.stats.delivered_messages,
        simulated_time=simulator.stats.final_time,
        per_round_ranges=per_round_ranges(histories),
        behavior=behavior_name or fault_plan.describe(),
        seed=seed,
        fault_summary=fault_summary,
    )


def _all_decided_predicate(honest_processes):
    """Stop predicate: every honest process decided (plain loop — it runs
    once per delivered event)."""

    def all_honest_decided() -> bool:
        for process in honest_processes:
            if not process.decided:
                return False
        return True

    return all_honest_decided


def run_bw_experiment(
    graph: DiGraph,
    inputs: Mapping[NodeId, float],
    config: ConsensusConfig,
    fault_plan: Optional[FaultPlan] = None,
    delay_model: Optional[DelayModel] = None,
    seed: Optional[int] = None,
    topology: Optional[TopologyKnowledge] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    behavior_name: str = "",
    faults: Optional[FaultSchedule] = None,
) -> ConsensusOutcome:
    """Run the Byzantine-Witness algorithm once and report its outcome."""
    _validate_inputs(graph, inputs)
    plan = fault_plan or no_faults()
    plan.validate(graph.nodes, config.f)
    shared = topology or TopologyKnowledge(graph, config.f, config.path_policy)
    processes = create_bw_processes(graph, inputs, config, topology=shared)
    wrapped = plan.apply(processes)
    simulator = Simulator(graph, delay_model or UniformDelay(0.5, 2.0), seed=seed, faults=faults)
    simulator.add_processes(wrapped.values())
    honest = [processes[node] for node in plan.nonfaulty(graph.nodes)]
    simulator.run(max_events=max_events, stop_when=_all_decided_predicate(honest))
    return _outcome_from_processes(
        "byzantine-witness", graph, config, plan, inputs, processes, simulator, behavior_name, seed
    )


def run_clique_experiment(
    graph: DiGraph,
    inputs: Mapping[NodeId, float],
    config: ConsensusConfig,
    fault_plan: Optional[FaultPlan] = None,
    delay_model: Optional[DelayModel] = None,
    seed: Optional[int] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    behavior_name: str = "",
    faults: Optional[FaultSchedule] = None,
) -> ConsensusOutcome:
    """Run the complete-graph (Abraham-style) baseline once."""
    _validate_inputs(graph, inputs)
    plan = fault_plan or no_faults()
    plan.validate(graph.nodes, config.f)
    processes = create_clique_processes(graph, dict(inputs), config)
    wrapped = plan.apply(processes)
    simulator = Simulator(graph, delay_model or UniformDelay(0.5, 2.0), seed=seed, faults=faults)
    simulator.add_processes(wrapped.values())
    honest = [processes[node] for node in plan.nonfaulty(graph.nodes)]
    simulator.run(max_events=max_events, stop_when=_all_decided_predicate(honest))
    return _outcome_from_processes(
        "clique-baseline", graph, config, plan, inputs, processes, simulator, behavior_name, seed
    )


def run_crash_experiment(
    graph: DiGraph,
    inputs: Mapping[NodeId, float],
    config: ConsensusConfig,
    fault_plan: Optional[FaultPlan] = None,
    delay_model: Optional[DelayModel] = None,
    seed: Optional[int] = None,
    topology: Optional[TopologyKnowledge] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    behavior_name: str = "",
    faults: Optional[FaultSchedule] = None,
) -> ConsensusOutcome:
    """Run the crash-tolerant (2-reach) baseline once."""
    _validate_inputs(graph, inputs)
    plan = fault_plan or no_faults()
    plan.validate(graph.nodes, config.f)
    processes = create_crash_processes(graph, inputs, config, topology=topology)
    wrapped = plan.apply(processes)
    simulator = Simulator(graph, delay_model or UniformDelay(0.5, 2.0), seed=seed, faults=faults)
    simulator.add_processes(wrapped.values())
    honest = [processes[node] for node in plan.nonfaulty(graph.nodes)]
    simulator.run(max_events=max_events, stop_when=_all_decided_predicate(honest))
    return _outcome_from_processes(
        "crash-tolerant", graph, config, plan, inputs, processes, simulator, behavior_name, seed
    )


def _outcome_from_trace(
    algorithm: str,
    graph: DiGraph,
    config: ConsensusConfig,
    inputs: Mapping[NodeId, float],
    trace: SynchronousTrace,
    behavior_name: str,
    messages_per_round: int,
) -> ConsensusOutcome:
    honest_nodes = frozenset(graph.nodes) - trace.faulty_nodes
    ranges = [trace.nonfaulty_range(r) for r in range(len(trace.states))]
    return ConsensusOutcome(
        algorithm=algorithm,
        graph_name=graph.name or "<unnamed>",
        f=config.f,
        epsilon=config.epsilon,
        faulty_nodes=trace.faulty_nodes,
        honest_inputs={node: float(inputs[node]) for node in honest_nodes},
        outputs=trace.final_outputs(),
        all_decided=True,
        rounds=trace.rounds,
        messages_sent=messages_per_round * trace.rounds,
        messages_delivered=messages_per_round * trace.rounds,
        per_round_ranges=ranges,
        behavior=behavior_name,
    )


def run_iterative_experiment(
    graph: DiGraph,
    inputs: Mapping[NodeId, float],
    config: ConsensusConfig,
    rounds: int,
    faulty_nodes=(),
    byzantine_value: Optional[SyncByzantineValue] = None,
    behavior_name: str = "",
) -> ConsensusOutcome:
    """Run the synchronous iterative trimmed-mean baseline."""
    _validate_inputs(graph, inputs)
    trace = run_iterative_consensus(
        graph, inputs, config.f, rounds, faulty_nodes=faulty_nodes, byzantine_value=byzantine_value
    )
    return _outcome_from_trace(
        "iterative-trimmed-mean", graph, config, inputs, trace, behavior_name, graph.num_edges
    )


def run_local_average_experiment(
    graph: DiGraph,
    inputs: Mapping[NodeId, float],
    config: ConsensusConfig,
    rounds: int,
    faulty_nodes=(),
    byzantine_value: Optional[SyncByzantineValue] = None,
    behavior_name: str = "",
) -> ConsensusOutcome:
    """Run the unprotected local-averaging control."""
    _validate_inputs(graph, inputs)
    trace = run_local_average(
        graph, inputs, rounds, faulty_nodes=faulty_nodes, byzantine_value=byzantine_value
    )
    return _outcome_from_trace(
        "local-average", graph, config, inputs, trace, behavior_name, graph.num_edges
    )
