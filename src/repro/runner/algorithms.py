"""Sweep algorithms as registered plugins: one :class:`AlgorithmSpec` each.

Every name a grid's ``algorithms`` axis can reference resolves through the
:data:`~repro.registry.ALGORITHMS` registry to an :class:`AlgorithmSpec` —
the uniform protocol behind both kinds of cells:

* **consensus** cells (``bw``, ``clique``, ``crash``, ``iterative``,
  ``local-average``) run one full execution through the drivers in
  :mod:`repro.runner.experiment`;
* **check** cells (``check-reach``, ``check-table1``, ``check-table2``,
  ``check-necessity``) evaluate the paper's feasibility conditions and
  constructions, recording their verdicts as the cell's success flag.

An :class:`AlgorithmSpec` bundles the cell runner with an optional ``warm``
hook (what the pre-fork warm-up should build for this algorithm's cells) so
the engine never needs algorithm-specific branches.  Third-party algorithms
register the same way and are immediately sweepable::

    from repro.registry import ALGORITHMS
    from repro.runner.algorithms import AlgorithmSpec

    ALGORITHMS.register("my-protocol", AlgorithmSpec(
        name="my-protocol", kind="consensus", run=my_cell_runner))

Workers resolve algorithms by *name* (cells travel as primitives); the
registered callables themselves are never pickled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Optional

from repro.adversary.adversary import FaultPlan
from repro.algorithms.base import ConsensusConfig
from repro.analysis.feasibility import (
    compare_undirected,
    directed_feasibility_row,
    equivalences_hold,
)
from repro.analysis.necessity import build_schedule, demonstrate_disagreement, find_violation
from repro.conditions.reach_conditions import check_one_reach, check_three_reach, check_two_reach
from repro.exceptions import ExperimentError
from repro.graphs.digraph import DiGraph
from repro.network.delays import make_delay
from repro.network.faults import NO_FAULTS, FaultSchedule, make_faults
from repro.registry import ALGORITHMS, BEHAVIORS, PLACEMENTS, parse_plugin_spec
from repro.runner.experiment import (
    run_bw_experiment,
    run_clique_experiment,
    run_crash_experiment,
    run_iterative_experiment,
    run_local_average_experiment,
)
from repro.runner.harness import (
    NOT_APPLICABLE,
    CellResult,
    GridSpec,
    SweepCell,
    random_inputs,
    spread_inputs,
)
from repro.runner.worker_cache import cached_topology_knowledge

NodeId = Hashable

#: Delay-model spec used by the asynchronous cell runners, resolved through
#: the :data:`~repro.registry.DELAYS` registry.  The registered ``uniform``
#: defaults (low=0.5, high=2.0) match the historical driver default, so
#: committed artifacts are unaffected.
DEFAULT_DELAY_SPEC = "uniform"


# ----------------------------------------------------------------------
# the plugin protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmSpec:
    """One sweep algorithm: its cell runner plus engine-facing metadata.

    ``run(spec, cell, graph)`` executes one cell on the (worker-cached)
    graph and returns a :class:`~repro.runner.harness.CellResult`.  ``warm``
    (optional) pre-builds whatever expensive per-topology machinery the
    algorithm needs, in the parent before the pool forks; it is invoked once
    per distinct ``(algorithm, topology, f)``.
    """

    name: str
    kind: str  # "consensus" | "check"
    run: Callable[[GridSpec, SweepCell, DiGraph], CellResult] = field(compare=False)
    warm: Optional[Callable[[GridSpec, SweepCell], None]] = field(default=None, compare=False)
    summary: str = ""


# ----------------------------------------------------------------------
# axis resolution (behaviour specs, placements, inputs)
# ----------------------------------------------------------------------
def resolve_behavior_factory(behavior: str) -> Callable[[], object]:
    """A zero-arg behaviour factory from a ``name[:args]`` spec string."""
    name, args = parse_plugin_spec(behavior)
    factory = BEHAVIORS.get(name)
    if not args:
        return factory
    return lambda: factory(*args)


def resolve_sync_behavior(behavior: str) -> Optional[Callable]:
    """The synchronous-model value function of a behaviour spec.

    Returns ``None`` for behaviours whose synchronous equivalent is honesty
    (e.g. ``"honest"``); raises for behaviours with no synchronous analogue.
    """
    name, args = parse_plugin_spec(behavior)
    entry = BEHAVIORS.entry(name)
    sync = entry.metadata.get("sync")
    if sync is None:
        raise ExperimentError(f"behaviour {behavior!r} has no synchronous-model equivalent")
    return sync(*args)


def resolve_placement(name: str, graph: DiGraph, f: int, seed: int) -> FrozenSet[NodeId]:
    """Resolve a placement-strategy name into a concrete faulty set."""
    if name in ("none", NOT_APPLICABLE) or f == 0:
        return frozenset()
    return PLACEMENTS.get(name)(graph, f, seed)


def _cell_inputs(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> Dict[NodeId, float]:
    if spec.inputs == "random":
        return random_inputs(graph, spec.input_low, spec.input_high, seed=cell.derived_seed)
    if spec.inputs == "spread":
        return spread_inputs(graph, spec.input_low, spec.input_high)
    raise ExperimentError(f"unknown input generator {spec.inputs!r}")


def _cell_config(spec: GridSpec, cell: SweepCell) -> ConsensusConfig:
    return ConsensusConfig(
        f=cell.f,
        epsilon=spec.epsilon,
        input_low=spec.input_low,
        input_high=spec.input_high,
        path_policy=spec.path_policy,
    )


def _cell_fault_schedule(cell: SweepCell, graph: DiGraph) -> Optional[FaultSchedule]:
    """Compile the cell's fault spec (``None`` for the fault-free default)."""
    if cell.faults in (NO_FAULTS, NOT_APPLICABLE):
        return None
    return make_faults(cell.faults).build(graph, cell.derived_seed)


def _require_no_faults(cell: SweepCell) -> None:
    """Fault schedules only make sense for asynchronous message-passing cells."""
    if cell.faults not in (NO_FAULTS, NOT_APPLICABLE):
        raise ExperimentError(
            f"algorithm {cell.algorithm!r} runs outside the asynchronous simulator; "
            f"its cells cannot carry fault schedule {cell.faults!r}"
        )


# ----------------------------------------------------------------------
# consensus algorithms
# ----------------------------------------------------------------------
def _run_sync_cell(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    _require_no_faults(cell)
    config = _cell_config(spec, cell)
    inputs = _cell_inputs(spec, cell, graph)
    faulty = resolve_placement(cell.placement, graph, cell.f, seed=cell.derived_seed)
    byzantine_value = resolve_sync_behavior(cell.behavior)
    driver = (
        run_iterative_experiment if cell.algorithm == "iterative" else run_local_average_experiment
    )
    outcome = driver(
        graph,
        inputs,
        config,
        rounds=spec.rounds,
        faulty_nodes=faulty,
        byzantine_value=byzantine_value,
        behavior_name=cell.behavior,
    )
    return CellResult.from_outcome(cell, graph, outcome)


def _run_async_cell(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    config = _cell_config(spec, cell)
    inputs = _cell_inputs(spec, cell, graph)
    faulty = resolve_placement(cell.placement, graph, cell.f, seed=cell.derived_seed)
    factory = resolve_behavior_factory(cell.behavior)
    plan = FaultPlan(faulty, lambda node: factory(), seed=cell.derived_seed)
    schedule = _cell_fault_schedule(cell, graph)
    # Congestion-style policies inject their effect through the delay model;
    # the schedule advertises the spec to use instead of the sweep default.
    delay_spec = DEFAULT_DELAY_SPEC
    if schedule is not None and schedule.delay_spec:
        delay_spec = schedule.delay_spec
    delay_model = make_delay(delay_spec)
    if cell.algorithm == "bw":
        outcome = run_bw_experiment(
            graph,
            inputs,
            config,
            plan,
            delay_model=delay_model,
            seed=cell.derived_seed,
            topology=cached_topology_knowledge(cell.resolved_topology, cell.f, spec.path_policy),
            behavior_name=cell.behavior,
            faults=schedule,
        )
    elif cell.algorithm == "clique":
        outcome = run_clique_experiment(
            graph,
            inputs,
            config,
            plan,
            delay_model=delay_model,
            seed=cell.derived_seed,
            behavior_name=cell.behavior,
            faults=schedule,
        )
    else:
        # The crash baseline only uses simple-path machinery regardless of
        # the grid's flooding policy (crash faults never lie).
        outcome = run_crash_experiment(
            graph,
            inputs,
            config,
            plan,
            delay_model=delay_model,
            seed=cell.derived_seed,
            topology=cached_topology_knowledge(cell.resolved_topology, cell.f, "simple"),
            behavior_name=cell.behavior,
            faults=schedule,
        )
    return CellResult.from_outcome(cell, graph, outcome)


def _warm_bw(spec: GridSpec, cell: SweepCell) -> None:
    knowledge = cached_topology_knowledge(cell.resolved_topology, cell.f, spec.path_policy)
    # The eager fullness machinery (required paths + reverse index) is a
    # BW-only structure, built here so fork children inherit it.
    for node in knowledge.nodes:
        knowledge.required_index(node)


def _warm_crash(spec: GridSpec, cell: SweepCell) -> None:
    # The crash baseline reads just fault_candidates and the lazily-warmed
    # reach cache; building the knowledge is all the warm-up there is.
    cached_topology_knowledge(cell.resolved_topology, cell.f, "simple")


# ----------------------------------------------------------------------
# condition-check algorithms
# ----------------------------------------------------------------------
def _check_cell_result(
    cell: SweepCell, graph: DiGraph, success: bool, metrics: Dict[str, object]
) -> CellResult:
    return CellResult(
        index=cell.index,
        algorithm=cell.algorithm,
        topology=cell.topology.label,
        n=graph.num_nodes,
        f=cell.f,
        behavior=cell.behavior,
        placement=cell.placement,
        seed=cell.seed,
        derived_seed=cell.derived_seed,
        success=success,
        metrics=metrics,
    )


def _run_check_reach(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    _require_no_faults(cell)
    reach_1 = check_one_reach(graph, cell.f).holds
    reach_2 = check_two_reach(graph, cell.f).holds
    reach_3 = check_three_reach(graph, cell.f).holds
    return _check_cell_result(
        cell,
        graph,
        success=reach_3,
        metrics={"reach_1": reach_1, "reach_2": reach_2, "reach_3": reach_3},
    )


def _run_check_table1(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    _require_no_faults(cell)
    row = compare_undirected(graph, cell.f)
    return _check_cell_result(
        cell,
        graph,
        success=row.consistent,
        metrics={
            "kappa": row.kappa,
            "classical_crash_sync": row.classical_crash_sync,
            "classical_crash_async": row.classical_crash_async,
            "classical_byz": row.classical_byz,
            "reach_1": row.reach_1,
            "reach_2": row.reach_2,
            "reach_3": row.reach_3,
        },
    )


def _run_check_table2(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    _require_no_faults(cell)
    row = directed_feasibility_row(graph, cell.f)
    return _check_cell_result(
        cell,
        graph,
        success=equivalences_hold(row),
        metrics={
            "crash_sync": bool(row.verdict("crash/sync")),
            "crash_async": bool(row.verdict("crash/async")),
            "byz_sync": bool(row.verdict("byz/sync")),
            "byz_async": bool(row.verdict("byz/async")),
            "ccs": bool(row.verdict("CCS")),
            "cca": bool(row.verdict("CCA")),
            "bcs": bool(row.verdict("BCS")),
        },
    )


def _run_check_necessity(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    _require_no_faults(cell)
    if check_three_reach(graph, cell.f).holds:
        raise ExperimentError(
            f"{graph.name} satisfies 3-reach for f={cell.f}; "
            "the necessity construction needs a violating graph"
        )
    violation = find_violation(graph, cell.f)
    schedule = build_schedule(graph, violation, epsilon=1.0)
    result = demonstrate_disagreement(graph, violation, epsilon=1.0, rounds=spec.rounds)
    return _check_cell_result(
        cell,
        graph,
        success=schedule.structural_facts_hold and result.convergence_violated,
        metrics={
            "witness_pair": f"{violation.u!r}/{violation.v!r}",
            "structural_facts_hold": schedule.structural_facts_hold,
            "disagreement": result.disagreement,
            "convergence_violated": result.convergence_violated,
        },
    )


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def _register_algorithms() -> None:
    for spec in (
        AlgorithmSpec(
            name="bw",
            kind="consensus",
            run=_run_async_cell,
            warm=_warm_bw,
            summary="the paper's Byzantine-Witness algorithm (asynchronous)",
        ),
        AlgorithmSpec(
            name="clique",
            kind="consensus",
            run=_run_async_cell,
            summary="Abraham-style complete-graph baseline (asynchronous)",
        ),
        AlgorithmSpec(
            name="crash",
            kind="consensus",
            run=_run_async_cell,
            warm=_warm_crash,
            summary="crash-tolerant 2-reach baseline (asynchronous)",
        ),
        AlgorithmSpec(
            name="iterative",
            kind="consensus",
            run=_run_sync_cell,
            summary="synchronous iterative trimmed-mean baseline",
        ),
        AlgorithmSpec(
            name="local-average",
            kind="consensus",
            run=_run_sync_cell,
            summary="unprotected synchronous local-averaging control",
        ),
        AlgorithmSpec(
            name="check-reach",
            kind="check",
            run=_run_check_reach,
            summary="1/2/3-reach condition verdicts (success = 3-reach)",
        ),
        AlgorithmSpec(
            name="check-table1",
            kind="check",
            run=_run_check_table1,
            summary="classical counting vs reach conditions on undirected graphs",
        ),
        AlgorithmSpec(
            name="check-table2",
            kind="check",
            run=_run_check_table2,
            summary="per-cell condition verdicts + Theorem 17 cross-check",
        ),
        AlgorithmSpec(
            name="check-necessity",
            kind="check",
            run=_run_check_necessity,
            summary="Theorem 18 indistinguishability construction on 3-reach violators",
        ),
    ):
        ALGORITHMS.register(spec.name, spec, summary=spec.summary)


_register_algorithms()


__all__ = [
    "AlgorithmSpec",
    "resolve_behavior_factory",
    "resolve_placement",
    "resolve_sync_behavior",
]
