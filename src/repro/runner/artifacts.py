"""Machine-readable sweep artifacts: write, load, validate, compare.

Every sweep run serializes to one canonical JSON document so that

* CI can diff a freshly generated artifact against a committed baseline and
  *fail the build* when a scenario's success rate or round counts drift;
* serial and sharded runs of the same grid are **byte-identical** — the
  payload deliberately excludes wall-clock time, worker counts and
  timestamps (those are observational, printed to stdout instead).

The document layout (``schema_version`` 1)::

    {
      "schema_version": 1,
      "kind": "repro-sweep",
      "scenario": "<grid name>",
      "mode": "quick" | "full",
      "spec": { ...GridSpec.as_dict()... },
      "environment": {"python": ..., "implementation": ..., "platform": ...},
      "git": {"commit": ..., "dirty": ...} | null,
      "totals": {"cells": N, "successes": M, "success_rate": x},
      "groups": [ ...GroupAggregate.as_dict()... ],
      "cells": [ ...CellResult.as_dict()... ]
    }

``environment`` and ``git`` are provenance only — :func:`compare` never
looks at them, so baselines recorded on one machine gate runs on another.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.exceptions import ArtifactError
from repro.runner.harness import CellResult, SweepRunResult

SCHEMA_VERSION = 1
ARTIFACT_KIND = "repro-sweep"

_REQUIRED_KEYS = ("schema_version", "kind", "scenario", "mode", "spec", "totals", "groups", "cells")

#: Fields every serialized group aggregate must carry (compare() reads them).
_GROUP_KEYS = (
    "algorithm",
    "topology",
    "f",
    "behavior",
    "placement",
    "runs",
    "success_rate",
    "mean_rounds",
)

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------------
# provenance metadata
# ----------------------------------------------------------------------
def environment_metadata() -> Dict[str, str]:
    """Interpreter / platform provenance recorded alongside results.

    ``bitset_backend`` records the process-wide backend selection policy
    (see :func:`repro.graphs.bitset_backends.backend_policy`) so every
    artifact and journal header is attributable to a backend.  Like the
    rest of the environment block it is provenance only: :func:`compare`
    never reads it, so baselines recorded under one backend gate runs under
    another.
    """
    from repro.graphs.bitset_backends import backend_policy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "bitset_backend": backend_policy(),
    }


def git_metadata(repo_dir: Optional[PathLike] = None) -> Optional[Dict[str, object]]:
    """Current commit hash and dirty flag, or ``None`` outside a checkout."""
    cwd = str(repo_dir) if repo_dir is not None else None
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    return {"commit": commit, "dirty": bool(status.strip())}


# ----------------------------------------------------------------------
# payload construction / serialization
# ----------------------------------------------------------------------
def artifact_payload(
    result: SweepRunResult,
    mode: str = "full",
    repo_dir: Optional[PathLike] = None,
    provenance: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Deterministic JSON-ready payload for a sweep run.

    Identical grids produce identical payloads regardless of worker count:
    cells are emitted in index order and no timing fields are included.

    ``provenance`` — a mapping with ``environment`` and ``git`` keys —
    overrides the freshly probed metadata.  Journal-backed sessions pass
    the values recorded in the journal header, so an artifact derived from
    a journal (including one resumed on a later commit) is byte-identical
    to the artifact the uninterrupted original run would have written.
    """
    if mode not in ("quick", "full"):
        raise ArtifactError(f"mode must be 'quick' or 'full', got {mode!r}")
    if provenance is not None:
        environment = provenance.get("environment")
        git = provenance.get("git")
    else:
        environment = environment_metadata()
        git = git_metadata(repo_dir)
    successes = sum(1 for cell in result.cells if cell.success)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": ARTIFACT_KIND,
        "scenario": result.spec.name,
        "mode": mode,
        "spec": result.spec.as_dict(),
        "environment": environment,
        "git": git,
        "totals": {
            "cells": len(result.cells),
            "successes": successes,
            "success_rate": successes / len(result.cells) if result.cells else 0.0,
        },
        "groups": [group.as_dict() for group in result.groups],
        "cells": [cell.as_dict() for cell in result.cells],
    }


def dumps_canonical(payload: Mapping[str, object]) -> str:
    """The canonical textual form used for artifacts and identity checks."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_artifact(
    path: PathLike,
    result: SweepRunResult,
    mode: str = "full",
    repo_dir: Optional[PathLike] = None,
    provenance: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Serialize ``result`` to ``path`` (creating parent directories).

    The write is atomic (temp file + rename), so an interrupt mid-write
    leaves either the previous artifact or the new one — never a torn file.
    """
    payload = artifact_payload(result, mode=mode, repo_dir=repo_dir, provenance=provenance)
    write_payload(path, payload)
    return payload


def write_payload(path: PathLike, payload: Mapping[str, object]) -> None:
    """Atomically write an already-built payload in canonical form."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text(dumps_canonical(payload), encoding="utf-8")
    os.replace(scratch, target)


def validate_artifact(payload: Mapping[str, object]) -> None:
    """Raise :class:`ArtifactError` unless ``payload`` is a valid artifact."""
    if not isinstance(payload, Mapping):
        raise ArtifactError("artifact payload must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise ArtifactError(f"artifact is missing required keys: {missing}")
    if payload["kind"] != ARTIFACT_KIND:
        raise ArtifactError(f"not a sweep artifact (kind={payload['kind']!r})")
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported artifact schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    if payload["mode"] not in ("quick", "full"):
        raise ArtifactError(f"invalid artifact mode {payload['mode']!r}")
    cells = payload["cells"]
    totals = payload["totals"]
    if not isinstance(cells, list) or not isinstance(totals, Mapping):
        raise ArtifactError("artifact 'cells' must be a list and 'totals' an object")
    if totals.get("cells") != len(cells):
        raise ArtifactError(
            f"totals.cells={totals.get('cells')!r} disagrees with {len(cells)} recorded cells"
        )
    groups = payload["groups"]
    if not isinstance(groups, list):
        raise ArtifactError("artifact 'groups' must be a list")
    for index, group in enumerate(groups):
        if not isinstance(group, Mapping):
            raise ArtifactError(f"artifact group #{index} must be an object")
        missing_fields = [field_name for field_name in _GROUP_KEYS if field_name not in group]
        if missing_fields:
            raise ArtifactError(f"artifact group #{index} is missing fields: {missing_fields}")


def load_artifact(path: PathLike) -> Dict[str, object]:
    """Load and validate a sweep artifact from disk."""
    target = pathlib.Path(path)
    if not target.exists():
        raise ArtifactError(f"artifact {target} does not exist")
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ArtifactError(f"artifact {target} is not valid JSON: {error}") from error
    validate_artifact(payload)
    return payload


def artifact_cells(payload: Mapping[str, object]) -> List[CellResult]:
    """Rehydrate the :class:`CellResult` records stored in an artifact."""
    return [CellResult.from_dict(cell) for cell in payload["cells"]]


# ----------------------------------------------------------------------
# baseline comparison (the CI gate)
# ----------------------------------------------------------------------
@dataclass
class Drift:
    """One detected difference between a baseline and a current run."""

    kind: str
    where: str
    baseline: object
    current: object

    def describe(self) -> str:
        return f"[{self.kind}] {self.where}: baseline={self.baseline!r} current={self.current!r}"


@dataclass
class ComparisonReport:
    """Outcome of :func:`compare`: drift list plus the match count."""

    scenario: str
    groups_checked: int = 0
    drifts: List[Drift] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drifts

    def describe(self) -> str:
        if self.ok:
            return (
                f"scenario {self.scenario!r}: OK — "
                f"{self.groups_checked} group(s) match the baseline"
            )
        lines = [
            f"scenario {self.scenario!r}: DRIFT — "
            f"{len(self.drifts)} difference(s) across {self.groups_checked} group(s)"
        ]
        lines.extend("  " + drift.describe() for drift in self.drifts)
        return "\n".join(lines)


def _group_key(group: Mapping[str, object]) -> str:
    key = (
        f"{group['algorithm']}|{group['topology']}|f={group['f']}"
        f"|{group['behavior']}|{group['placement']}"
    )
    # The faults axis is omitted from fault-free records, so artifacts
    # written before it existed keep the same keys as ones written after.
    faults = group.get("faults", "none")
    if faults != "none":
        key += f"|faults={faults}"
    return key


def compare(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    tol_success: float = 0.0,
    tol_rounds: float = 0.0,
) -> ComparisonReport:
    """Diff two artifacts and report every gated drift.

    The gate covers the deterministic quantities: per-group run counts,
    success rates (within ``tol_success``) and mean round counts (within
    ``tol_rounds``), plus the scenario/mode/cell-count envelope.  Message
    counts, value ranges and provenance metadata are reported in the
    artifact but deliberately not gated.
    """
    validate_artifact(baseline)
    validate_artifact(current)
    report = ComparisonReport(scenario=str(current["scenario"]))

    for envelope in ("scenario", "mode"):
        if baseline[envelope] != current[envelope]:
            report.drifts.append(
                Drift(envelope, "<artifact>", baseline[envelope], current[envelope])
            )
    if baseline["totals"]["cells"] != current["totals"]["cells"]:
        report.drifts.append(
            Drift(
                "cell-count",
                "<artifact>",
                baseline["totals"]["cells"],
                current["totals"]["cells"],
            )
        )

    baseline_groups = {_group_key(group): group for group in baseline["groups"]}
    current_groups = {_group_key(group): group for group in current["groups"]}
    for key in baseline_groups:
        if key not in current_groups:
            report.drifts.append(Drift("missing-group", key, "present", "absent"))
    for key in current_groups:
        if key not in baseline_groups:
            report.drifts.append(Drift("new-group", key, "absent", "present"))

    for key in sorted(set(baseline_groups) & set(current_groups)):
        before, after = baseline_groups[key], current_groups[key]
        report.groups_checked += 1
        if before["runs"] != after["runs"]:
            report.drifts.append(Drift("runs", key, before["runs"], after["runs"]))
            continue
        if abs(before["success_rate"] - after["success_rate"]) > tol_success:
            report.drifts.append(
                Drift("success-rate", key, before["success_rate"], after["success_rate"])
            )
        if abs(before["mean_rounds"] - after["mean_rounds"]) > tol_rounds:
            report.drifts.append(
                Drift("mean-rounds", key, before["mean_rounds"], after["mean_rounds"])
            )
    return report


def compare_files(
    baseline_path: PathLike,
    current_path: PathLike,
    tol_success: float = 0.0,
    tol_rounds: float = 0.0,
) -> ComparisonReport:
    """:func:`compare` over two artifact files."""
    return compare(
        load_artifact(baseline_path),
        load_artifact(current_path),
        tol_success=tol_success,
        tol_rounds=tol_rounds,
    )


__all__ = [
    "ARTIFACT_KIND",
    "SCHEMA_VERSION",
    "ComparisonReport",
    "Drift",
    "artifact_cells",
    "artifact_payload",
    "compare",
    "compare_files",
    "dumps_canonical",
    "environment_metadata",
    "git_metadata",
    "load_artifact",
    "validate_artifact",
    "write_artifact",
    "write_payload",
]
