"""Experiment runner: drivers, sweep orchestration, artifacts and reporting.

The runner is layered like a small pipeline::

    GridSpec ──expand──> SweepCell* ──run_cell──> CellResult* ──fold──> GroupAggregate*
        │                                                                   │
        └── scenarios.py (named grids)              artifacts.py (JSON) <───┘

**Grid-spec format.**  A :class:`~repro.runner.harness.GridSpec` declares a
sweep as the cross product of six axes plus shared execution parameters:

``name``
    Scenario name; together with each cell's index it derives the cell's RNG
    seed (:func:`~repro.runner.harness.derive_cell_seed`), making results
    independent of execution order, sharding and worker count.
``algorithms``
    Names resolved through the :data:`~repro.registry.ALGORITHMS` registry
    (each an :class:`~repro.runner.algorithms.AlgorithmSpec`): consensus
    drivers (``"bw"``, ``"clique"``, ``"crash"``, ``"iterative"``,
    ``"local-average"``) or condition checks (``"check-reach"``,
    ``"check-table1"``, ``"check-table2"``, ``"check-necessity"``) — plus
    anything registered by user code.
``topologies``
    :class:`~repro.runner.harness.TopologySpec` entries — a
    :data:`~repro.registry.TOPOLOGIES` family name plus construction
    parameters, e.g.  ``TopologySpec.make("clique", n=4)`` or
    ``TopologySpec.make("two-cliques", clique_size=5, forward_bridges=2,
    backward_bridges=2)``.  Workers rebuild graphs locally from the spec.
``f_values`` / ``behaviors`` / ``placements`` / ``seeds``
    Fault bounds, Byzantine behaviour specs resolved through
    :data:`~repro.registry.BEHAVIORS` — a registered name, optionally
    parametrized ``name:arg,...`` (``"offset:2.5"``) — fault-placement
    strategies from :data:`~repro.registry.PLACEMENTS` (``"random"``,
    ``"max-out-degree"``, ``"max-in-degree"``, ``"bridges"``, ``"last"``,
    ``"none"``) and the user-facing seed axis.  Every referenced name is
    validated at ``expand()`` time — before any worker pool forks — and an
    unknown name raises :class:`~repro.exceptions.UnknownPluginError`
    listing the registered alternatives (``python -m repro.runner list
    --plugins`` shows them too).

Grids also live declaratively on disk: the nine built-in scenarios are
committed as TOML files under ``src/repro/runner/scenarios/`` (format in
:mod:`repro.runner.scenario_files`) and user scenario files run via
``python -m repro.runner run --scenario-file path.toml``.  The curated,
versioned import surface for all of this is :mod:`repro.api`.

**Sessions, journals, resume (api v2).**  The run surface is the streaming
:class:`~repro.runner.session.ExperimentSession`: ``session.events()``
yields typed events (``RunStarted`` / ``CellCompleted`` / ``GroupUpdated``
/ ``CheckpointWritten`` / ``RunFinished``) as cells finish — identically
for serial and sharded execution — ``session.iter_results()`` is the
cell-level view and ``session.run()`` the blocking form.  With a run
directory, completed cells are appended (flushed per record, fsynced at
checkpoints) to the schema-versioned JSONL journal in
:mod:`repro.runner.journal`;
``ExperimentSession.resume(run_dir)`` verifies the journal's spec hash,
skips completed cell indexes and continues, producing an artifact
byte-identical to the uninterrupted run.  ``StopPolicy`` plugins
(:data:`~repro.registry.STOP_POLICIES`: ``max-cells`` / ``max-wall-time``
/ ``group-converged``) watch the event stream and seal a run early.

**The sweep fabric (multi-host).**  ``run --fabric N`` executes a grid
through the coordinator/worker lease protocol in
:mod:`repro.runner.fabric`: N worker processes lease contiguous cell
ranges (atomic-rename lease files, mtime heartbeats, epoch fencing),
append results to per-worker shards, and the coordinator merges the
shards into the canonical journal in strict index order — so ``fold()``
of a fabric journal is byte-identical to the serial run.  The protocol is
pure shared-directory filesystem state, so extra machines join the same
run with ``fabric worker --run-dir /nfs/dir`` (``--fabric 0`` starts a
coordinator with no local pool); ``fabric status --run-dir`` inspects a
live run.  The wire format is specified in ``docs/fabric-protocol.md``.

**The results store + serving layer.**  :mod:`repro.store` folds every
sweep output — journals, schema-v1 artifacts, ``BENCH_*.json`` perf
records — into one sqlite database, idempotently keyed by spec hash ×
scenario × git commit × mode, and answers cross-run queries: per-commit
metric trends (run- or group-level), per-cell variance by group, bench
trajectories.  The CLI wraps it as ``store init [--bootstrap]`` /
``ingest PATH...`` / ``query``, and ``serve`` exposes the same queries
over stdlib HTTP plus an SSE endpoint (``/v1/live/<run>/events``) that
streams a run's journal live — header as ``RunStarted``, cells as
``CellCompleted`` in strict index order, the seal as ``RunFinished`` —
using the same incremental tail reader as the fabric.  Schema:
``docs/store-schema.md``.

**Run-directory layout.**  A journaled (``--journal``) run directory
contains just ``journal.jsonl``.  A fabric run directory adds, next to
the same canonical journal:

- ``fabric.json`` — the run manifest (spec hash, lease TTL, cadences);
  its mtime is the coordinator's liveness heartbeat
- ``leases/`` — ``<start>-<end>.lease`` (available) /
  ``<start>-<end>.owned.<worker-id>`` (claimed) work ranges, plus the
  append-only ``fence.log`` of epoch bumps
- ``shards/<worker-id>.jsonl`` — each worker's append-only result shard
- ``workers/<worker-id>.json`` — observability-only worker status
- ``stop.json`` — the stop sentinel the coordinator writes on
  completion, policy stop or interruption; workers exit when they see it

**CLI exit codes** (``python -m repro.runner``, implemented in
:mod:`repro.runner.cli`):

====  ==============================================================
code  meaning
====  ==============================================================
0     success — including ``run`` sealed early by a ``--stop-policy``
      (the CLI names the policy that sealed the run)
1     ``compare`` found drift against the baseline artifact
2     usage / configuration error (any :class:`~repro.exceptions.ReproError`)
3     a ``--journal`` run was interrupted (e.g. SIGINT); completed cells
      are durable and the printed ``run --resume RUN_DIR`` continues it
      (for fabric runs: ``run --resume RUN_DIR --fabric N``)
4     a ``fabric worker`` aborted because the coordinator's manifest
      heartbeat went stale for ``orphan_grace`` seconds; its shard is
      intact and the worker may simply be restarted
====  ==============================================================
``epsilon`` / ``input_low`` / ``input_high`` / ``inputs`` / ``path_policy`` / ``rounds``
    Shared execution parameters: the agreement parameter, the known input
    range, the input generator (``"spread"`` or ``"random"``), the BW
    flooding policy and the round budget for synchronous baselines.

Run a grid with :class:`~repro.runner.harness.SweepEngine` (``workers > 1``
shards cells across a ``multiprocessing`` pool in chunked batches), write
the result with :func:`~repro.runner.artifacts.write_artifact`, and gate a
regenerated artifact against a committed baseline with
:func:`~repro.runner.artifacts.compare`.  The ``python -m repro.runner``
CLI (:mod:`repro.runner.cli`) wraps exactly that pipeline, and its
``profile`` subcommand cProfiles one scenario with a per-phase breakdown.

**Chunking heuristic.**  Sharded runs split the cell list into pool tasks of
``chunk_size`` cells; the CLI exposes it as ``run --chunk-size N``.  The
default is ``ceil(cells / (workers * 4))`` — about four batches per worker,
which amortizes IPC per task while leaving enough batches for the pool to
rebalance when cell durations are skewed.  Cells are dispatched grouped by
``(topology, f, algorithm)`` so a chunk rarely spans topologies, letting the
per-worker topology cache (:func:`~repro.runner.scenarios.cached_graph` /
:func:`~repro.runner.scenarios.cached_topology_knowledge`, pre-warmed in the
parent before forking) build each topology's precomputation at most once per
worker.  Pass an explicit ``--chunk-size`` when cells are extremely uneven
(smaller chunks rebalance better) or extremely cheap (larger chunks cut IPC).
Results are re-folded in cell-index order, so chunking never changes the
artifact.
"""

from repro.runner.artifacts import (
    ComparisonReport,
    artifact_payload,
    compare,
    compare_files,
    load_artifact,
    write_artifact,
)
from repro.runner.experiment import (
    DEFAULT_MAX_EVENTS,
    run_bw_experiment,
    run_clique_experiment,
    run_crash_experiment,
    run_iterative_experiment,
    run_local_average_experiment,
)
from repro.runner.fabric import (
    FabricConfig,
    FabricCoordinator,
    FabricReport,
    FabricWorker,
    fabric_status,
)
from repro.runner.harness import (
    CellResult,
    GridSpec,
    GroupAggregate,
    StopSweep,
    SweepCell,
    SweepEngine,
    SweepResult,
    SweepRunResult,
    TopologySpec,
    aggregate_cells,
    derive_cell_seed,
    random_inputs,
    run_grid,
    spread_inputs,
    sweep_behaviors,
)
from repro.runner.journal import (
    Journal,
    JournalWriter,
    journal_from_artifact,
    journal_path,
    load_journal,
    tail_records,
)
from repro.runner.leases import Lease, read_lease, replay_fence_log
from repro.runner.metrics import (
    ConsensusOutcome,
    aggregate_success_rate,
    geometric_bound_satisfied,
    per_round_ranges,
    rounds_until,
)
from repro.runner.reporting import (
    SessionProgress,
    banner,
    format_check,
    format_table,
    print_table,
    render_fabric_status,
    render_sweep_groups,
    sweep_group_rows,
)
from repro.runner.session import (
    CellCompleted,
    CheckpointWritten,
    ExperimentSession,
    GroupUpdated,
    RunFinished,
    RunStarted,
    SessionEvent,
    StopPolicy,
    expected_group_count,
    make_stop_policy,
    run_session,
)
from repro.runner.scenario_files import (
    Scenario,
    dump_scenario_toml,
    load_scenario_file,
    load_scenario_text,
)
from repro.runner.scenarios import SCENARIOS, get_scenario, run_cell, scenario_names
from repro.runner.worker_cache import (
    cache_snapshot,
    cached_graph,
    cached_topology_knowledge,
    clear_worker_caches,
    warm_worker_caches,
    worker_cache_stats,
)

__all__ = [
    "dump_scenario_toml",
    "load_scenario_file",
    "load_scenario_text",
    "cache_snapshot",
    "cached_graph",
    "cached_topology_knowledge",
    "clear_worker_caches",
    "warm_worker_caches",
    "worker_cache_stats",
    "FabricConfig",
    "FabricCoordinator",
    "FabricReport",
    "FabricWorker",
    "Lease",
    "expected_group_count",
    "fabric_status",
    "read_lease",
    "render_fabric_status",
    "replay_fence_log",
    "tail_records",
    "DEFAULT_MAX_EVENTS",
    "run_bw_experiment",
    "run_clique_experiment",
    "run_crash_experiment",
    "run_iterative_experiment",
    "run_local_average_experiment",
    "CellCompleted",
    "CellResult",
    "CheckpointWritten",
    "ExperimentSession",
    "GridSpec",
    "GroupAggregate",
    "GroupUpdated",
    "Journal",
    "JournalWriter",
    "RunFinished",
    "RunStarted",
    "SessionEvent",
    "SessionProgress",
    "StopPolicy",
    "StopSweep",
    "SweepCell",
    "SweepEngine",
    "SweepResult",
    "SweepRunResult",
    "TopologySpec",
    "aggregate_cells",
    "journal_from_artifact",
    "journal_path",
    "load_journal",
    "make_stop_policy",
    "run_session",
    "derive_cell_seed",
    "random_inputs",
    "run_grid",
    "spread_inputs",
    "sweep_behaviors",
    "ComparisonReport",
    "artifact_payload",
    "compare",
    "compare_files",
    "load_artifact",
    "write_artifact",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "run_cell",
    "scenario_names",
    "ConsensusOutcome",
    "aggregate_success_rate",
    "geometric_bound_satisfied",
    "per_round_ranges",
    "rounds_until",
    "banner",
    "format_check",
    "format_table",
    "print_table",
    "render_sweep_groups",
    "sweep_group_rows",
]
