"""Experiment runner: drivers, metrics, sweeps and plain-text reporting."""

from repro.runner.experiment import (
    DEFAULT_MAX_EVENTS,
    run_bw_experiment,
    run_clique_experiment,
    run_crash_experiment,
    run_iterative_experiment,
    run_local_average_experiment,
)
from repro.runner.harness import SweepResult, random_inputs, spread_inputs, sweep_behaviors
from repro.runner.metrics import (
    ConsensusOutcome,
    aggregate_success_rate,
    geometric_bound_satisfied,
    per_round_ranges,
    rounds_until,
)
from repro.runner.reporting import banner, format_check, format_table, print_table

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "run_bw_experiment",
    "run_clique_experiment",
    "run_crash_experiment",
    "run_iterative_experiment",
    "run_local_average_experiment",
    "SweepResult",
    "random_inputs",
    "spread_inputs",
    "sweep_behaviors",
    "ConsensusOutcome",
    "aggregate_success_rate",
    "geometric_bound_satisfied",
    "per_round_ranges",
    "rounds_until",
    "banner",
    "format_check",
    "format_table",
    "print_table",
]
