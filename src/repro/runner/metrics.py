"""Metrics extracted from consensus executions.

A :class:`ConsensusOutcome` is the normalized result record every experiment
produces regardless of which algorithm ran: the honest outputs, whether the
three properties of Definition 1 held (ε-agreement, validity, termination),
the per-round value range (the quantity Lemma 15 bounds by ``K/2^r``), and
cost counters (messages, rounds, simulated time).  The benchmark harness
prints tables of these records; the test-suite asserts on their fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

NodeId = Hashable


@dataclass
class ConsensusOutcome:
    """Normalized result of one consensus execution."""

    algorithm: str
    graph_name: str
    f: int
    epsilon: float
    faulty_nodes: frozenset
    honest_inputs: Dict[NodeId, float]
    outputs: Dict[NodeId, float]
    all_decided: bool
    rounds: int
    messages_sent: int = 0
    messages_delivered: int = 0
    simulated_time: float = 0.0
    per_round_ranges: List[float] = field(default_factory=list)
    behavior: str = ""
    seed: Optional[int] = None
    #: Fault-injection provenance (policy spec, control-trace digest and the
    #: loss/duplication counters); ``None`` unless the run had an *active*
    #: fault schedule, so fault-free outcomes serialize exactly as before.
    fault_summary: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Definition 1 properties
    # ------------------------------------------------------------------
    @property
    def output_range(self) -> float:
        """``max - min`` of honest outputs (infinite when someone never decided)."""
        if not self.outputs or not self.all_decided:
            return float("inf")
        values = list(self.outputs.values())
        return max(values) - min(values)

    @property
    def epsilon_agreement(self) -> bool:
        """Convergence property: all honest outputs within ``ε`` of each other."""
        return self.all_decided and self.output_range < self.epsilon

    @property
    def validity(self) -> bool:
        """Validity property: every honest output within the honest input range."""
        if not self.all_decided or not self.honest_inputs:
            return False
        low = min(self.honest_inputs.values())
        high = max(self.honest_inputs.values())
        tolerance = 1e-9
        return all(low - tolerance <= value <= high + tolerance for value in self.outputs.values())

    @property
    def termination(self) -> bool:
        """Termination property: every honest node produced an output."""
        return self.all_decided

    @property
    def correct(self) -> bool:
        """All three properties of Definition 1 at once."""
        return self.termination and self.validity and self.epsilon_agreement

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human readable summary."""
        range_text = "∞" if self.output_range == float("inf") else f"{self.output_range:.6g}"
        if self.behavior:
            fault_text = self.behavior
        elif self.faulty_nodes:
            fault_text = f"{len(self.faulty_nodes)} faulty"
        else:
            fault_text = "no faults"
        return (
            f"{self.algorithm} on {self.graph_name} (f={self.f}, {fault_text}): "
            f"range={range_text} ε={self.epsilon} "
            f"agree={self.epsilon_agreement} valid={self.validity} "
            f"rounds={self.rounds} msgs={self.messages_delivered}"
        )


def per_round_ranges(value_histories: Mapping[NodeId, Sequence[float]]) -> List[float]:
    """``U[r] - µ[r]`` across nodes for every round index present in all histories.

    Histories may have different lengths when some node is a round ahead at
    the instant the run stopped; only the common prefix is reported.
    """
    if not value_histories:
        return []
    depth = min(len(history) for history in value_histories.values())
    ranges: List[float] = []
    for round_index in range(depth):
        values = [history[round_index] for history in value_histories.values()]
        ranges.append(max(values) - min(values))
    return ranges


def geometric_bound_satisfied(
    ranges: Sequence[float], initial_range: float, slack: float = 1e-9
) -> bool:
    """Check the repeated-Lemma-15 bound ``U[r] - µ[r] ≤ K / 2^r``."""
    for round_index, observed in enumerate(ranges):
        if observed > initial_range / (2 ** round_index) + slack:
            return False
    return True


def rounds_until(ranges: Sequence[float], epsilon: float) -> Optional[int]:
    """First round index whose range drops below ``ε`` (``None`` if never)."""
    for round_index, observed in enumerate(ranges):
        if observed < epsilon:
            return round_index
    return None


def aggregate_success_rate(outcomes: Iterable[ConsensusOutcome]) -> float:
    """Fraction of outcomes satisfying all of Definition 1."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    return sum(1 for outcome in outcomes if outcome.correct) / len(outcomes)
