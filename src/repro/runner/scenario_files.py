"""Declarative scenario files: TOML <-> :class:`Scenario` round-tripping.

A *scenario* couples a :class:`~repro.runner.harness.GridSpec` (the full
grid behind one paper artefact) with a cheaper ``quick`` variant used by CI
shards and smoke tests.  The nine built-in scenarios are committed as TOML
files under ``src/repro/runner/scenarios/`` and loaded through this module;
user scenarios use the same format and run via
``python -m repro.runner run --scenario-file path.toml``.

File format (one scenario per file)::

    schema_version = 1
    name = "my_sweep"
    description = "what the grid measures"
    artefact = "which paper artefact it reproduces"

    [spec]                      # the full grid (axes + shared parameters)
    algorithms = ["bw"]
    f_values = [1]
    behaviors = ["crash", "offset:2.5"]
    placements = ["random"]
    seeds = [1, 2, 3]
    epsilon = 0.25
    path_policy = "simple"

    [[spec.topologies]]
    family = "two-cliques"
    params = { clique_size = 5, forward_bridges = 2, backward_bridges = 2 }

    [quick]                     # optional reduced CI grid; defaults to spec
    ...

Axis names (topology families, behaviours, placements, algorithms) resolve
through the registries in :mod:`repro.registry`; unknown names raise
:class:`~repro.exceptions.UnknownPluginError` when the grid expands —
before any worker pool forks.  Structural problems (unknown keys, wrong
types) raise :class:`~repro.exceptions.ScenarioFileError` at load time.

Parsing uses :mod:`tomllib` where available (Python >= 3.11) and falls back
to a small built-in parser covering the subset this module itself emits
(tables, arrays of tables, inline tables, strings, numbers, booleans,
single- or multi-line arrays) — the library stays dependency-free on 3.9.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple, Union

try:  # Python >= 3.11
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised on py3.9/3.10 CI
    _tomllib = None

from repro.exceptions import ScenarioFileError
from repro.runner.harness import GridSpec

#: Directory holding the committed built-in scenario files.
SCENARIO_DIR = pathlib.Path(__file__).resolve().parent / "scenarios"

#: Canonical listing order of the built-in scenarios (the historical
#: registration order; any extra committed file sorts after these).
BUILTIN_SCENARIO_ORDER = (
    "figure1a",
    "figure1b",
    "definition1",
    "baselines_zoo",
    "crash_baseline",
    "resilience",
    "table1",
    "table2",
    "necessity",
    "scaling",
    "churn",
    "congestion",
    "phase_density",
    "phase_smallworld",
)

SCENARIO_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# the scenario model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named sweep: the full grid plus a CI-friendly quick variant."""

    name: str
    description: str
    artefact: str
    spec: GridSpec
    quick: GridSpec

    def grid(self, quick: bool = False) -> GridSpec:
        return self.quick if quick else self.spec

    def to_dict(self) -> Dict[str, object]:
        """JSON/TOML-ready payload; inverse of :meth:`from_dict`."""
        return {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "artefact": self.artefact,
            "spec": self.spec.as_dict(),
            "quick": self.quick.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Scenario":
        """Build a scenario from a parsed file payload, with validation.

        ``quick`` is optional (defaults to the full grid); the grids inherit
        the scenario ``name`` when their tables omit it.  Raises
        :class:`~repro.exceptions.ScenarioFileError` on structural problems.
        """
        if not isinstance(payload, Mapping):
            raise ScenarioFileError(f"scenario payload must be a table, got {payload!r}")
        known = {"schema_version", "name", "description", "artefact", "spec", "quick"}
        unknown = set(payload) - known
        if unknown:
            raise ScenarioFileError(f"unknown scenario keys {sorted(unknown)}")
        version = payload.get("schema_version", SCENARIO_SCHEMA_VERSION)
        if version != SCENARIO_SCHEMA_VERSION:
            raise ScenarioFileError(
                f"unsupported scenario schema_version {version!r} "
                f"(this library reads version {SCENARIO_SCHEMA_VERSION})"
            )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ScenarioFileError(f"scenario 'name' must be a non-empty string, got {name!r}")
        description = payload.get("description", "")
        artefact = payload.get("artefact", "")
        for key, value in (("description", description), ("artefact", artefact)):
            if not isinstance(value, str):
                raise ScenarioFileError(f"scenario {key!r} must be a string, got {value!r}")
        if "spec" not in payload:
            raise ScenarioFileError("scenario is missing its [spec] table")

        def grid_from(key: str) -> GridSpec:
            table = payload[key]
            if not isinstance(table, Mapping):
                raise ScenarioFileError(f"[{key}] must be a table, got {table!r}")
            if "name" not in table:
                table = {**table, "name": name}
            try:
                return GridSpec.from_dict(table)
            except ScenarioFileError as error:
                raise ScenarioFileError(f"[{key}] of scenario {name!r}: {error}") from None

        spec = grid_from("spec")
        quick = grid_from("quick") if "quick" in payload else spec
        return cls(name=name, description=description, artefact=artefact, spec=spec, quick=quick)


# ----------------------------------------------------------------------
# TOML reading (tomllib, or the built-in subset parser on older pythons)
# ----------------------------------------------------------------------
_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


class _MiniTomlParser:
    """Line-oriented parser for the TOML subset :func:`dump_scenario_toml`
    emits (and hand-written scenario files stick to in practice)."""

    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.root: Dict[str, object] = {}
        self.current: Dict[str, object] = self.root

    def parse(self) -> Dict[str, object]:
        index = 0
        while index < len(self.lines):
            line = self._strip_comment(self.lines[index]).strip()
            index += 1
            if not line:
                continue
            if line.startswith("[["):
                self._enter_header(line[2:-2].strip(), array=True, raw=line)
            elif line.startswith("["):
                self._enter_header(line[1:-1].strip(), array=False, raw=line)
            else:
                key, _, rest = line.partition("=")
                key = key.strip()
                if not _BARE_KEY.match(key):
                    raise ScenarioFileError(f"cannot parse TOML line {line!r}")
                rest = rest.strip()
                # Multi-line arrays: keep consuming until brackets balance.
                while self._open_brackets(rest) > 0 and index < len(self.lines):
                    rest += " " + self._strip_comment(self.lines[index]).strip()
                    index += 1
                value, tail = self._parse_value(rest)
                if tail.strip():
                    raise ScenarioFileError(f"trailing text after value in line {line!r}")
                if key in self.current:
                    raise ScenarioFileError(f"duplicate key {key!r}")
                self.current[key] = value
        return self.root

    @staticmethod
    def _strip_comment(line: str) -> str:
        in_string = False
        for position, char in enumerate(line):
            if char == '"' and (position == 0 or line[position - 1] != "\\"):
                in_string = not in_string
            elif char == "#" and not in_string:
                return line[:position]
        return line

    @staticmethod
    def _open_brackets(text: str) -> int:
        depth = 0
        in_string = False
        for position, char in enumerate(text):
            if char == '"' and (position == 0 or text[position - 1] != "\\"):
                in_string = not in_string
            elif not in_string:
                if char in "[{":
                    depth += 1
                elif char in "]}":
                    depth -= 1
        return depth

    def _enter_header(self, dotted: str, array: bool, raw: str) -> None:
        if not dotted:
            raise ScenarioFileError(f"cannot parse TOML header {raw!r}")
        parts = [part.strip() for part in dotted.split(".")]
        if not all(_BARE_KEY.match(part) for part in parts):
            raise ScenarioFileError(f"cannot parse TOML header {raw!r}")
        node: Dict[str, object] = self.root
        for part in parts[:-1]:
            child = node.setdefault(part, {})
            if isinstance(child, list):
                child = child[-1]
            if not isinstance(child, dict):
                raise ScenarioFileError(f"TOML header {raw!r} collides with a value")
            node = child
        leaf = parts[-1]
        if array:
            bucket = node.setdefault(leaf, [])
            if not isinstance(bucket, list):
                raise ScenarioFileError(f"TOML header {raw!r} collides with a value")
            entry: Dict[str, object] = {}
            bucket.append(entry)
            self.current = entry
        else:
            child = node.setdefault(leaf, {})
            if not isinstance(child, dict):
                raise ScenarioFileError(f"TOML header {raw!r} collides with a value")
            self.current = child

    def _parse_value(self, text: str) -> Tuple[object, str]:
        text = text.lstrip()
        if not text:
            raise ScenarioFileError("missing value")
        head = text[0]
        if head == '"':
            return self._parse_string(text)
        if head == "[":
            return self._parse_array(text)
        if head == "{":
            return self._parse_inline_table(text)
        return self._parse_scalar(text)

    @staticmethod
    def _parse_string(text: str) -> Tuple[str, str]:
        position = 1
        while position < len(text):
            if text[position] == "\\":
                position += 2
                continue
            if text[position] == '"':
                token = text[: position + 1]
                try:
                    return json.loads(token), text[position + 1 :]
                except json.JSONDecodeError:
                    raise ScenarioFileError(f"cannot parse TOML string {token!r}") from None
            position += 1
        raise ScenarioFileError(f"unterminated TOML string in {text!r}")

    def _parse_array(self, text: str) -> Tuple[List[object], str]:
        items: List[object] = []
        rest = text[1:].lstrip()
        while True:
            if not rest:
                raise ScenarioFileError(f"unterminated TOML array in {text!r}")
            if rest[0] == "]":
                return items, rest[1:]
            value, rest = self._parse_value(rest)
            items.append(value)
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:].lstrip()

    def _parse_inline_table(self, text: str) -> Tuple[Dict[str, object], str]:
        table: Dict[str, object] = {}
        rest = text[1:].lstrip()
        while True:
            if not rest:
                raise ScenarioFileError(f"unterminated TOML inline table in {text!r}")
            if rest[0] == "}":
                return table, rest[1:]
            key, eq, rest = rest.partition("=")
            key = key.strip()
            if not eq or not _BARE_KEY.match(key):
                raise ScenarioFileError(f"cannot parse TOML inline table near {rest!r}")
            value, rest = self._parse_value(rest)
            table[key] = value
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:].lstrip()

    @staticmethod
    def _parse_scalar(text: str) -> Tuple[object, str]:
        match = re.match(r"[^,\]\}\s]+", text)
        if not match:
            raise ScenarioFileError(f"cannot parse TOML value near {text!r}")
        token = match.group(0)
        rest = text[match.end() :]
        if token == "true":
            return True, rest
        if token == "false":
            return False, rest
        try:
            return int(token), rest
        except ValueError:
            pass
        try:
            return float(token), rest
        except ValueError:
            raise ScenarioFileError(f"cannot parse TOML value {token!r}") from None


def parse_toml(text: str) -> Dict[str, object]:
    """Parse TOML text into plain dicts/lists (tomllib or the fallback)."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as error:
            raise ScenarioFileError(f"invalid TOML: {error}") from None
    return _MiniTomlParser(text).parse()


# ----------------------------------------------------------------------
# TOML writing (the canonical emission the fallback parser round-trips)
# ----------------------------------------------------------------------
def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        return text if ("." in text or "e" in text or "inf" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    raise ScenarioFileError(f"cannot serialize {value!r} to TOML")


def _grid_section(section: str, payload: Mapping[str, object], scenario_name: str) -> List[str]:
    lines = [f"[{section}]"]
    if payload["name"] != scenario_name:
        # Grids normally inherit the scenario name (and from_dict re-injects
        # it), but the grid name keys the derived cell seeds — a divergent
        # name must survive the round trip exactly.
        lines.append(f'name = {_format_value(payload["name"])}')
    for key, value in payload.items():
        if key in ("topologies", "name"):
            continue  # topologies get their own tables below
        lines.append(f"{key} = {_format_value(value)}")
    for topology in payload["topologies"]:  # type: ignore[index]
        lines.append("")
        lines.append(f"[[{section}.topologies]]")
        lines.append(f'family = {_format_value(topology["family"])}')
        params = topology.get("params") or {}
        if params:
            inner = ", ".join(f"{key} = {_format_value(val)}" for key, val in params.items())
            lines.append(f"params = {{ {inner} }}")
    return lines


def dump_scenario_toml(scenario: Scenario) -> str:
    """Serialize a scenario to the canonical TOML text (committed format)."""
    payload = scenario.to_dict()
    lines = [
        f"schema_version = {payload['schema_version']}",
        f"name = {_format_value(payload['name'])}",
        f"description = {_format_value(payload['description'])}",
        f"artefact = {_format_value(payload['artefact'])}",
        "",
    ]
    name = str(payload["name"])
    lines.extend(_grid_section("spec", payload["spec"], name))  # type: ignore[arg-type]
    lines.append("")
    lines.extend(_grid_section("quick", payload["quick"], name))  # type: ignore[arg-type]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_scenario_text(text: str, source: str = "<string>") -> Scenario:
    """Parse one scenario from TOML text."""
    try:
        return Scenario.from_dict(parse_toml(text))
    except ScenarioFileError as error:
        raise ScenarioFileError(f"{source}: {error}") from None


def load_scenario_file(path: Union[str, pathlib.Path]) -> Scenario:
    """Load one scenario from a TOML file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ScenarioFileError(f"cannot read scenario file {path}: {error}") from None
    return load_scenario_text(text, source=str(path))


def builtin_scenario_paths() -> List[pathlib.Path]:
    """The committed scenario files, in canonical listing order."""
    order = {name: index for index, name in enumerate(BUILTIN_SCENARIO_ORDER)}
    paths = sorted(SCENARIO_DIR.glob("*.toml"))
    return sorted(paths, key=lambda path: (order.get(path.stem, len(order)), path.stem))


def load_builtin_scenarios() -> Dict[str, Scenario]:
    """Load every committed scenario file into a name-keyed dict."""
    scenarios: Dict[str, Scenario] = {}
    for path in builtin_scenario_paths():
        scenario = load_scenario_file(path)
        if scenario.name != path.stem:
            raise ScenarioFileError(
                f"{path}: scenario name {scenario.name!r} must match the file stem"
            )
        if scenario.name in scenarios:
            raise ScenarioFileError(f"{path}: duplicate scenario name {scenario.name!r}")
        scenarios[scenario.name] = scenario
    return scenarios


def validate_builtin_scenarios(verbose: bool = False) -> List[Scenario]:
    """Schema- and plugin-validate every committed scenario file.

    Loads each TOML, expands both grids (which resolves every referenced
    plugin name through the registries), and returns the scenarios.  CI runs
    this to keep the committed files honest.
    """
    scenarios = load_builtin_scenarios()
    missing = set(BUILTIN_SCENARIO_ORDER) - set(scenarios)
    if missing:
        raise ScenarioFileError(f"missing committed scenario files for {sorted(missing)}")
    for scenario in scenarios.values():
        for grid in (scenario.spec, scenario.quick):
            cells = grid.expand()
            if verbose:
                print(f"{scenario.name}: {grid.name} ok ({len(cells)} cells)")
    return list(scenarios.values())


__all__ = [
    "BUILTIN_SCENARIO_ORDER",
    "SCENARIO_DIR",
    "SCENARIO_SCHEMA_VERSION",
    "Scenario",
    "builtin_scenario_paths",
    "dump_scenario_toml",
    "load_builtin_scenarios",
    "load_scenario_file",
    "load_scenario_text",
    "parse_toml",
    "validate_builtin_scenarios",
]
