"""Plain-text reporting helpers.

The benchmarks regenerate the paper's tables as aligned ASCII tables printed
to stdout (and captured into ``bench_output.txt``); no plotting dependencies
are required.  The helpers here keep the formatting consistent across all
benchmarks, the sweep CLI and the examples.  Machine-readable output is the
job of :mod:`repro.runner.artifacts`; everything here is for humans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runner.harness import GroupAggregate
    from repro.runner.session import RunFinished, SessionEvent


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table with a header separator."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_check(value: bool) -> str:
    """Render a boolean as the table-friendly ``yes`` / ``no``."""
    return "yes" if value else "no"


def banner(title: str, width: int = 72) -> str:
    """A section banner used between benchmark tables."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Print (and return) a titled table — the standard benchmark output unit."""
    text = f"{banner(title)}\n{format_table(headers, rows)}\n"
    print(text)
    return text


# ----------------------------------------------------------------------
# sweep-engine aggregate tables
# ----------------------------------------------------------------------
SWEEP_HEADERS = (
    "algorithm",
    "topology",
    "f",
    "behavior",
    "placement",
    "runs",
    "success",
    "mean rounds",
    "mean msgs",
    "worst range",
)


def sweep_group_rows(
    groups: Iterable["GroupAggregate"], with_faults: bool = False
) -> List[List[str]]:
    """Render :class:`~repro.runner.harness.GroupAggregate` records as rows.

    ``with_faults`` inserts the fault-policy column after ``placement`` —
    the degradation-curve view for sweeps that include a faults axis.
    """
    rows: List[List[str]] = []
    for group in groups:
        worst = "inf" if group.undecided else f"{group.worst_range:.4g}"
        row = [
            group.algorithm,
            group.topology,
            str(group.f),
            group.behavior,
            group.placement,
        ]
        if with_faults:
            row.append(group.faults)
        row.extend(
            [
                str(group.runs),
                f"{group.success_rate:.2f}",
                f"{group.mean_rounds:.1f}",
                f"{group.mean_messages:.0f}",
                worst,
            ]
        )
        rows.append(row)
    return rows


def render_sweep_groups(title: str, groups: Iterable["GroupAggregate"]) -> str:
    """The standard human-readable summary of a sweep run.

    The fault-policy column appears only when some group actually swept a
    fault schedule, so fault-free reports render exactly as before.
    """
    groups = list(groups)
    with_faults = any(group.faults != "none" for group in groups)
    headers = SWEEP_HEADERS
    if with_faults:
        headers = SWEEP_HEADERS[:5] + ("faults",) + SWEEP_HEADERS[5:]
    return f"{banner(title)}\n{format_table(headers, sweep_group_rows(groups, with_faults))}\n"


# ----------------------------------------------------------------------
# session event consumers (api v2)
# ----------------------------------------------------------------------
class SessionProgress:
    """Fold a session's event stream into live progress and summary state.

    The api-v2 reporting surface is *event-driven*: this consumer never
    touches a finished :class:`~repro.runner.harness.SweepRunResult` — it
    derives everything (cell counts, per-group aggregates, checkpoint
    cadence, the final verdict) from the
    :class:`~repro.runner.session.SessionEvent` stream, so the same object
    renders a live ``--progress`` line mid-run and the final group table
    after :class:`~repro.runner.session.RunFinished`.
    """

    def __init__(self) -> None:
        self.scenario: Optional[str] = None
        self.mode: Optional[str] = None
        self.total = 0
        self.completed = 0
        self.replayed = 0
        self.successes = 0
        self.failures = 0
        self.checkpoints = 0
        self.cells_journaled = 0
        self.finished: Optional["RunFinished"] = None
        self._groups: Dict[Tuple, "GroupAggregate"] = {}

    def observe(self, event: "SessionEvent") -> None:
        """Absorb one event (any :class:`SessionEvent` subclass)."""
        from repro.runner import session as _session

        if isinstance(event, _session.RunStarted):
            self.scenario = event.scenario
            self.mode = event.mode
            self.total = event.total_cells
        elif isinstance(event, _session.CellCompleted):
            self.completed = event.completed
            if event.replayed:
                self.replayed += 1
            if event.result.success:
                self.successes += 1
            else:
                self.failures += 1
        elif isinstance(event, _session.GroupUpdated):
            self._groups[event.key] = event.group
        elif isinstance(event, _session.CheckpointWritten):
            self.checkpoints += 1
            self.cells_journaled = event.cells_recorded
        elif isinstance(event, _session.RunFinished):
            self.finished = event

    @property
    def groups(self) -> List["GroupAggregate"]:
        """Per-group aggregates in first-seen order (snapshot copies)."""
        return list(self._groups.values())

    def render_line(self) -> str:
        """One-line live progress view (the CLI's ``--progress`` output)."""
        if self.total:
            percent = f"{self.completed / self.total * 100:3.0f}%"
        else:
            percent = "  -"
        parts = [
            f"[{self.scenario or '?'}]",
            f"{self.completed}/{self.total} cells",
            percent,
            f"ok={self.successes}",
            f"fail={self.failures}",
        ]
        if self.replayed:
            parts.append(f"replayed={self.replayed}")
        if self.cells_journaled:
            parts.append(f"journaled={self.cells_journaled}")
        if self.finished is not None:
            reason = self.finished.reason
            parts.append("done" if reason == "completed" else reason)
        return " ".join(parts)

    def render_summary(self) -> str:
        """The standard group table, derived purely from observed events."""
        title = f"{self.scenario or '?'} ({self.mode or '?'} grid)"
        return render_sweep_groups(title, self.groups)


# ----------------------------------------------------------------------
# fabric status (the `fabric status --run-dir` view)
# ----------------------------------------------------------------------
def _age_text(age: Optional[float]) -> str:
    return "-" if age is None else f"{age:.1f}s"


def render_fabric_status(snapshot: Dict) -> str:
    """Render a :func:`repro.runner.fabric.fabric_status` snapshot for humans.

    Pure formatting over the snapshot dict — never touches the run
    directory itself, so it is safe to call from any host at any time.
    """
    lines: List[str] = []
    journal = snapshot.get("journal") or {}
    manifest = snapshot.get("manifest") or {}
    stop = snapshot.get("stop")
    scenario = journal.get("scenario", "?")
    merged = journal.get("cells", 0)
    total = journal.get("total", 0)
    state = "running"
    if journal.get("sealed"):
        state = f"sealed ({journal.get('seal_reason')})"
    elif stop is not None:
        state = f"stopping ({stop.get('reason')})"
    lines.append(banner(f"fabric {snapshot.get('run_dir', '?')}"))
    lines.append(
        f"{scenario} ({journal.get('mode', '?')} grid): {merged}/{total} cells merged, "
        f"{state}; coordinator heartbeat {_age_text(snapshot.get('coordinator_age'))} ago "
        f"(lease ttl {manifest.get('lease_ttl', '?')}s)"
    )
    leases = snapshot.get("leases") or []
    if leases:
        rows = [
            [
                entry.get("range", "?"),
                str(entry.get("epoch", "?")),
                entry.get("state", "?"),
                entry.get("owner") or "-",
                _age_text(entry.get("age")),
            ]
            for entry in leases
        ]
        lines.append(format_table(["lease", "epoch", "state", "owner", "heartbeat"], rows))
    else:
        lines.append("no outstanding leases")
    shards = snapshot.get("shards") or {}
    workers = snapshot.get("workers") or {}
    if shards or workers:
        rows = []
        for worker_id in sorted(set(shards) | set(workers)):
            shard = shards.get(worker_id) or {}
            status = workers.get(worker_id) or {}
            rows.append(
                [
                    worker_id,
                    status.get("state", "?"),
                    str(shard.get("cells", 0)),
                    status.get("lease") or "-",
                    _age_text(status.get("age")),
                ]
            )
        lines.append(format_table(["worker", "state", "shard cells", "lease", "seen"], rows))
    lines.append(
        f"fenced indexes: {snapshot.get('fenced_indexes', 0)} "
        f"(max epoch {snapshot.get('max_epoch', 0)})"
    )
    return "\n".join(lines) + "\n"
