"""Plain-text reporting helpers.

The benchmarks regenerate the paper's tables as aligned ASCII tables printed
to stdout (and captured into ``bench_output.txt``); no plotting dependencies
are required.  The helpers here keep the formatting consistent across all
benchmarks, the sweep CLI and the examples.  Machine-readable output is the
job of :mod:`repro.runner.artifacts`; everything here is for humans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runner.harness import GroupAggregate


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table with a header separator."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_check(value: bool) -> str:
    """Render a boolean as the table-friendly ``yes`` / ``no``."""
    return "yes" if value else "no"


def banner(title: str, width: int = 72) -> str:
    """A section banner used between benchmark tables."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Print (and return) a titled table — the standard benchmark output unit."""
    text = f"{banner(title)}\n{format_table(headers, rows)}\n"
    print(text)
    return text


# ----------------------------------------------------------------------
# sweep-engine aggregate tables
# ----------------------------------------------------------------------
SWEEP_HEADERS = (
    "algorithm",
    "topology",
    "f",
    "behavior",
    "placement",
    "runs",
    "success",
    "mean rounds",
    "mean msgs",
    "worst range",
)


def sweep_group_rows(groups: Iterable["GroupAggregate"]) -> List[List[str]]:
    """Render :class:`~repro.runner.harness.GroupAggregate` records as rows."""
    rows: List[List[str]] = []
    for group in groups:
        worst = "inf" if group.undecided else f"{group.worst_range:.4g}"
        rows.append(
            [
                group.algorithm,
                group.topology,
                str(group.f),
                group.behavior,
                group.placement,
                str(group.runs),
                f"{group.success_rate:.2f}",
                f"{group.mean_rounds:.1f}",
                f"{group.mean_messages:.0f}",
                worst,
            ]
        )
    return rows


def render_sweep_groups(title: str, groups: Iterable["GroupAggregate"]) -> str:
    """The standard human-readable summary of a sweep run."""
    return f"{banner(title)}\n{format_table(SWEEP_HEADERS, sweep_group_rows(groups))}\n"
