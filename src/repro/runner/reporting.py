"""Plain-text reporting helpers.

The benchmarks regenerate the paper's tables as aligned ASCII tables printed
to stdout (and captured into ``bench_output.txt``); no plotting dependencies
are required.  The helpers here keep the formatting consistent across all
benchmarks and examples.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table with a header separator."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_check(value: bool) -> str:
    """Render a boolean as the table-friendly ``yes`` / ``no``."""
    return "yes" if value else "no"


def banner(title: str, width: int = 72) -> str:
    """A section banner used between benchmark tables."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Print (and return) a titled table — the standard benchmark output unit."""
    text = f"{banner(title)}\n{format_table(headers, rows)}\n"
    print(text)
    return text
