"""Per-worker topology memoisation and the pre-fork warm-up.

Rebuilding a topology's precomputation per *cell* — the DiGraph, its shared
BitsetIndex, and above all the TopologyKnowledge redundant-path enumeration
— used to dominate sweep time (and made a 2-worker sharded run *slower*
than serial).  Cells are pure functions of their spec, so the expensive
objects only depend on (topology recipe, f, path policy): they are cached
process-globally and thereby once per worker.  SweepEngine groups
same-topology cells into the same pool chunk so each worker pays each
build at most once.  Caching is invisible in the results: cell outcomes
depend only on the cell's derived seed and the (deterministic) topology.

Graphs are constructed through the :data:`~repro.registry.TOPOLOGIES`
registry (via :meth:`~repro.runner.harness.TopologySpec.build`), so a
topology registered by third-party code is cached and warmed exactly like a
built-in family.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.graphs.digraph import DiGraph
from repro.runner.harness import GridSpec, SweepCell, TopologySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.topology import TopologyKnowledge

_GRAPH_CACHE: Dict[TopologySpec, DiGraph] = {}
_KNOWLEDGE_CACHE: Dict[Tuple[TopologySpec, int, str], "TopologyKnowledge"] = {}
#: Bound on either cache: big nightly grids sweep hundreds of topologies and
#: must not hold every graph alive; oldest entries are evicted first.
WORKER_CACHE_LIMIT = 64


def _bounded_put(cache: Dict, key, value) -> None:
    if len(cache) >= WORKER_CACHE_LIMIT:
        cache.pop(next(iter(cache)))  # insertion order: evict the oldest
    cache[key] = value


def cached_graph(spec: TopologySpec) -> DiGraph:
    """The worker-cached :class:`DiGraph` of a topology spec.

    The graph instance also carries its shared
    :class:`~repro.graphs.bitset.BitsetIndex`, so reach/SCC memos warm up
    across every cell of the same topology.
    """
    graph = _GRAPH_CACHE.get(spec)
    if graph is None:
        graph = spec.build()
        _bounded_put(_GRAPH_CACHE, spec, graph)
    return graph


def cached_topology_knowledge(
    spec: TopologySpec, f: int, path_policy: str
) -> "TopologyKnowledge":
    """Worker-cached :class:`~repro.algorithms.topology.TopologyKnowledge`.

    Keyed on ``(topology recipe, f, path policy)`` — everything the
    precomputation depends on.  The knowledge shares the graph from
    :func:`cached_graph`, so its engine and reach caches are shared too.
    """
    from repro.algorithms.topology import TopologyKnowledge

    key = (spec, f, path_policy)
    knowledge = _KNOWLEDGE_CACHE.get(key)
    if knowledge is None:
        knowledge = TopologyKnowledge(cached_graph(spec), f, path_policy)
        _bounded_put(_KNOWLEDGE_CACHE, key, knowledge)
    return knowledge


def warm_worker_caches(spec: GridSpec, cells: List[SweepCell]) -> None:
    """Pre-build every topology object the cells of ``spec`` will need.

    Called by :class:`~repro.runner.harness.SweepEngine` in the parent
    process *before* forking the worker pool: on fork-based platforms the
    children then share the graphs, bitmask indexes and TopologyKnowledge
    (including any eager per-algorithm machinery) via copy-on-write instead
    of each worker rebuilding them.  On spawn platforms the call is
    wasted-but-harmless parent work.

    What an algorithm needs warmed is the algorithm's business: each
    registered :class:`~repro.runner.algorithms.AlgorithmSpec` may declare a
    ``warm(spec, cell)`` hook, invoked once per distinct
    ``(algorithm, topology, f)`` combination.
    """
    from repro.registry import ALGORITHMS

    # Cell-seeded topologies (``seed = "cell"``) sample a distinct graph per
    # cell; warming every sample in the parent would serialize the whole
    # sweep's graph construction, so only the first cell of each recipe is
    # warmed — enough to surface parameter errors before the fork and to
    # share one sample copy-on-write.  Deduplication keys use the
    # *unresolved* spec for exactly that reason.
    seen_graphs = set()
    seen_warms = set()
    for cell in cells:
        if cell.topology not in seen_graphs:
            seen_graphs.add(cell.topology)
            cached_graph(cell.resolved_topology)
        warm = ALGORITHMS.get(cell.algorithm).warm
        if warm is None:
            continue
        key = (cell.algorithm, cell.topology, cell.f)
        if key in seen_warms:
            continue
        seen_warms.add(key)
        warm(spec, cell)


def worker_cache_stats() -> Dict[str, int]:
    """Sizes of this process's topology caches (diagnostics)."""
    return {"graphs": len(_GRAPH_CACHE), "knowledge": len(_KNOWLEDGE_CACHE)}


def bitset_cache_stats() -> Dict[str, int]:
    """Aggregate bitset-memo sizes across the cached graphs (diagnostics).

    Counts only indexes that already exist (:meth:`BitsetIndex.peek` never
    builds one), so reading the stats cannot perturb what it measures.
    ``indexes`` is the number of cached graphs carrying a live index;
    ``reach_exclusions`` / ``source_components`` sum their memo sizes.
    """
    from repro.graphs.bitset import BitsetIndex

    stats = {"indexes": 0, "reach_exclusions": 0, "source_components": 0}
    for graph in _GRAPH_CACHE.values():
        index = BitsetIndex.peek(graph)
        if index is None:
            continue
        stats["indexes"] += 1
        for key, size in index.memo_sizes().items():
            stats[key] += size
    return stats


def cache_snapshot() -> Dict[str, Dict[str, int]]:
    """Combined topology + bitset cache stats, as one JSON-ready object.

    The shape fabric workers embed in their ``workers/<id>.json`` status
    files, so ``fabric status`` can show how warm each worker's caches are
    without attaching to the process.
    """
    return {"worker": worker_cache_stats(), "bitset": bitset_cache_stats()}


def clear_worker_caches() -> None:
    """Drop the process-global topology caches (tests / cold-start benches)."""
    _GRAPH_CACHE.clear()
    _KNOWLEDGE_CACHE.clear()


__all__ = [
    "WORKER_CACHE_LIMIT",
    "bitset_cache_stats",
    "cache_snapshot",
    "cached_graph",
    "cached_topology_knowledge",
    "clear_worker_caches",
    "warm_worker_caches",
    "worker_cache_stats",
]
