"""Scenario registry: every benchmark grid as a named, declarative spec.

A *scenario* couples a :class:`~repro.runner.harness.GridSpec` (the full
grid behind one paper artefact) with a cheaper ``quick`` variant used by CI
shards and smoke tests.  The registries below resolve the string axes of a
grid — topology family, algorithm, behaviour, placement — into concrete
objects *inside the worker process*, so cells travel between processes as
small tuples of primitives and a sharded run needs nothing unpicklable.

:func:`run_cell` is the single cell-execution entry point used by
:class:`~repro.runner.harness.SweepEngine`.  Two kinds of cells exist:

* consensus cells (``bw``, ``clique``, ``crash``, ``iterative``,
  ``local-average``) run one full execution through the drivers in
  :mod:`repro.runner.experiment`;
* check cells (``check-reach``, ``check-table1``, ``check-table2``,
  ``check-necessity``) evaluate the paper's feasibility conditions and
  constructions, recording their verdicts as the cell's success flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.topology import TopologyKnowledge

from repro.adversary.adversary import FaultPlan
from repro.adversary.behaviors import HonestBehavior, STANDARD_BEHAVIOR_FACTORIES
from repro.adversary.placement import (
    place_bridge_nodes,
    place_max_in_degree,
    place_max_out_degree,
    place_random,
)
from repro.algorithms.base import ConsensusConfig
from repro.analysis.feasibility import (
    compare_undirected,
    directed_feasibility_row,
    equivalences_hold,
)
from repro.analysis.necessity import build_schedule, demonstrate_disagreement, find_violation
from repro.conditions.reach_conditions import check_one_reach, check_three_reach, check_two_reach
from repro.exceptions import ExperimentError
from repro.graphs import generators
from repro.graphs.digraph import DiGraph
from repro.runner.experiment import (
    run_bw_experiment,
    run_clique_experiment,
    run_crash_experiment,
    run_iterative_experiment,
    run_local_average_experiment,
)
from repro.runner.harness import (
    CellResult,
    GridSpec,
    SweepCell,
    TopologySpec,
    random_inputs,
    spread_inputs,
)

NodeId = Hashable


# ----------------------------------------------------------------------
# topology registry
# ----------------------------------------------------------------------
TOPOLOGY_FAMILIES: Dict[str, Callable[..., DiGraph]] = {
    "clique": generators.complete_digraph,
    "figure-1a": generators.figure_1a,
    "figure-1b": generators.figure_1b,
    "directed-cycle": generators.directed_cycle,
    "bidirected-cycle": generators.bidirected_cycle,
    "wheel": generators.bidirected_wheel,
    "undirected-complete": generators.bidirected_complete,
    "random-bidirected": generators.random_bidirected_graph,
    "random-digraph": generators.random_digraph,
    "random-k-out": generators.random_k_out_digraph,
    "two-cliques": generators.two_cliques_bridged,
    "clique-with-feeders": generators.clique_with_feeders,
    "layered-relay": generators.layered_relay_digraph,
    "star-out": generators.star_out,
}


def build_topology(spec: TopologySpec) -> DiGraph:
    """Construct the graph a :class:`TopologySpec` describes."""
    try:
        factory = TOPOLOGY_FAMILIES[spec.family]
    except KeyError:
        raise ExperimentError(f"unknown topology family {spec.family!r}") from None
    return factory(**{key: value for key, value in spec.params})


# ----------------------------------------------------------------------
# per-worker topology memoisation
# ----------------------------------------------------------------------
# Rebuilding a topology's precomputation per *cell* — the DiGraph, its shared
# BitsetIndex, and above all the TopologyKnowledge redundant-path enumeration
# — used to dominate sweep time (and made a 2-worker sharded run *slower*
# than serial).  Cells are pure functions of their spec, so the expensive
# objects only depend on (topology recipe, f, path policy): they are cached
# process-globally and thereby once per worker.  SweepEngine groups
# same-topology cells into the same pool chunk so each worker pays each
# build at most once.  Caching is invisible in the results: cell outcomes
# depend only on the cell's derived seed and the (deterministic) topology.

_GRAPH_CACHE: Dict[TopologySpec, DiGraph] = {}
_KNOWLEDGE_CACHE: Dict[Tuple[TopologySpec, int, str], "TopologyKnowledge"] = {}
#: Bound on either cache: big nightly grids sweep hundreds of topologies and
#: must not hold every graph alive; oldest entries are evicted first.
WORKER_CACHE_LIMIT = 64


def _bounded_put(cache: Dict, key, value) -> None:
    if len(cache) >= WORKER_CACHE_LIMIT:
        cache.pop(next(iter(cache)))  # insertion order: evict the oldest
    cache[key] = value


def cached_graph(spec: TopologySpec) -> DiGraph:
    """The worker-cached :class:`DiGraph` of a topology spec.

    The graph instance also carries its shared
    :class:`~repro.graphs.bitset.BitsetIndex`, so reach/SCC memos warm up
    across every cell of the same topology.
    """
    graph = _GRAPH_CACHE.get(spec)
    if graph is None:
        graph = build_topology(spec)
        _bounded_put(_GRAPH_CACHE, spec, graph)
    return graph


def cached_topology_knowledge(
    spec: TopologySpec, f: int, path_policy: str
) -> "TopologyKnowledge":
    """Worker-cached :class:`~repro.algorithms.topology.TopologyKnowledge`.

    Keyed on ``(topology recipe, f, path policy)`` — everything the
    precomputation depends on.  The knowledge shares the graph from
    :func:`cached_graph`, so its engine and reach caches are shared too.
    """
    from repro.algorithms.topology import TopologyKnowledge

    key = (spec, f, path_policy)
    knowledge = _KNOWLEDGE_CACHE.get(key)
    if knowledge is None:
        knowledge = TopologyKnowledge(cached_graph(spec), f, path_policy)
        _bounded_put(_KNOWLEDGE_CACHE, key, knowledge)
    return knowledge


def warm_worker_caches(spec: GridSpec, cells: List[SweepCell]) -> None:
    """Pre-build every topology object the cells of ``spec`` will need.

    Called by :class:`~repro.runner.harness.SweepEngine` in the parent
    process *before* forking the worker pool: on fork-based platforms the
    children then share the graphs, bitmask indexes and TopologyKnowledge
    (including the eager fullness machinery forced here) via copy-on-write
    instead of each worker rebuilding them.  On spawn platforms the call is
    wasted-but-harmless parent work.
    """
    seen = set()
    for cell in cells:
        cached_graph(cell.topology)
        if cell.algorithm in ("bw", "crash"):
            policy = spec.path_policy if cell.algorithm == "bw" else "simple"
            key = (cell.topology, cell.f, policy)
            if key in seen:
                continue
            seen.add(key)
            knowledge = cached_topology_knowledge(*key)
            if cell.algorithm == "bw":
                # The eager fullness machinery (required paths + reverse
                # index) is a BW-only structure; the crash baseline reads
                # just fault_candidates and the lazily-warmed reach cache.
                for node in knowledge.nodes:
                    knowledge.required_index(node)


def worker_cache_stats() -> Dict[str, int]:
    """Sizes of this process's topology caches (diagnostics)."""
    return {"graphs": len(_GRAPH_CACHE), "knowledge": len(_KNOWLEDGE_CACHE)}


def clear_worker_caches() -> None:
    """Drop the process-global topology caches (tests / cold-start benches)."""
    _GRAPH_CACHE.clear()
    _KNOWLEDGE_CACHE.clear()


# ----------------------------------------------------------------------
# behaviour registries
# ----------------------------------------------------------------------
#: Asynchronous (message-intercepting) behaviours, by name.
BEHAVIOR_FACTORIES: Dict[str, Callable[[], object]] = {
    "honest": lambda: HonestBehavior(),
    **STANDARD_BEHAVIOR_FACTORIES,
}


def _sync_fixed_high(node, round_index, receiver, value) -> float:
    return 1e6


def _sync_fixed_low(node, round_index, receiver, value) -> float:
    return -1e6


def _sync_offset(node, round_index, receiver, value) -> float:
    return value + 25.0


#: Synchronous-model behaviours (value-reporting functions); ``None`` means
#: the faulty nodes behave honestly.
SYNC_BYZANTINE_VALUES: Dict[str, Optional[Callable]] = {
    "honest": None,
    "fixed-high": _sync_fixed_high,
    "fixed-low": _sync_fixed_low,
    "offset": _sync_offset,
}

#: Placeholder axis value for check cells (no adversary involved).
NOT_APPLICABLE = "-"


def resolve_placement(name: str, graph: DiGraph, f: int, seed: int) -> FrozenSet[NodeId]:
    """Resolve a placement-strategy name into a concrete faulty set."""
    if name in ("none", NOT_APPLICABLE) or f == 0:
        return frozenset()
    if name == "random":
        return place_random(graph, f, seed=seed)
    if name == "max-out-degree":
        return place_max_out_degree(graph, f)
    if name == "max-in-degree":
        return place_max_in_degree(graph, f)
    if name == "bridges":
        return place_bridge_nodes(graph, f)
    if name == "last":
        # Integer labels sort numerically (repr order would put 10 before 2);
        # everything else falls back to repr order, mixed universes last.
        def order(node: NodeId):
            if isinstance(node, bool) or not isinstance(node, int):
                return (1, 0, repr(node))
            return (0, node, "")

        return frozenset(sorted(graph.nodes, key=order)[-f:])
    raise ExperimentError(f"unknown placement strategy {name!r}")


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
CONSENSUS_ALGORITHMS = ("bw", "clique", "crash", "iterative", "local-average")
CHECK_ALGORITHMS = ("check-reach", "check-table1", "check-table2", "check-necessity")


def run_cell(spec: GridSpec, cell: SweepCell) -> CellResult:
    """Execute one sweep cell; the engine's default (picklable) cell runner."""
    graph = cached_graph(cell.topology)
    if cell.algorithm in CHECK_ALGORITHMS:
        return _run_check_cell(spec, cell, graph)
    if cell.algorithm in CONSENSUS_ALGORITHMS:
        return _run_consensus_cell(spec, cell, graph)
    raise ExperimentError(f"unknown algorithm {cell.algorithm!r}")


def _run_consensus_cell(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    config = ConsensusConfig(
        f=cell.f,
        epsilon=spec.epsilon,
        input_low=spec.input_low,
        input_high=spec.input_high,
        path_policy=spec.path_policy,
    )
    if spec.inputs == "random":
        inputs = random_inputs(graph, spec.input_low, spec.input_high, seed=cell.derived_seed)
    elif spec.inputs == "spread":
        inputs = spread_inputs(graph, spec.input_low, spec.input_high)
    else:
        raise ExperimentError(f"unknown input generator {spec.inputs!r}")
    faulty = resolve_placement(cell.placement, graph, cell.f, seed=cell.derived_seed)

    if cell.algorithm in ("iterative", "local-average"):
        try:
            byzantine_value = SYNC_BYZANTINE_VALUES[cell.behavior]
        except KeyError:
            raise ExperimentError(
                f"behaviour {cell.behavior!r} has no synchronous-model equivalent"
            ) from None
        driver = (
            run_iterative_experiment
            if cell.algorithm == "iterative"
            else run_local_average_experiment
        )
        outcome = driver(
            graph,
            inputs,
            config,
            rounds=spec.rounds,
            faulty_nodes=faulty,
            byzantine_value=byzantine_value,
            behavior_name=cell.behavior,
        )
        return CellResult.from_outcome(cell, graph, outcome)

    try:
        factory = BEHAVIOR_FACTORIES[cell.behavior]
    except KeyError:
        raise ExperimentError(f"unknown behaviour {cell.behavior!r}") from None
    plan = FaultPlan(faulty, lambda node: factory(), seed=cell.derived_seed)
    if cell.algorithm == "bw":
        outcome = run_bw_experiment(
            graph,
            inputs,
            config,
            plan,
            seed=cell.derived_seed,
            topology=cached_topology_knowledge(cell.topology, cell.f, spec.path_policy),
            behavior_name=cell.behavior,
        )
    elif cell.algorithm == "clique":
        outcome = run_clique_experiment(
            graph, inputs, config, plan, seed=cell.derived_seed, behavior_name=cell.behavior
        )
    else:
        # The crash baseline only uses simple-path machinery regardless of
        # the grid's flooding policy (crash faults never lie).
        outcome = run_crash_experiment(
            graph,
            inputs,
            config,
            plan,
            seed=cell.derived_seed,
            topology=cached_topology_knowledge(cell.topology, cell.f, "simple"),
            behavior_name=cell.behavior,
        )
    return CellResult.from_outcome(cell, graph, outcome)


def _check_cell_result(
    cell: SweepCell, graph: DiGraph, success: bool, metrics: Dict[str, object]
) -> CellResult:
    return CellResult(
        index=cell.index,
        algorithm=cell.algorithm,
        topology=cell.topology.label,
        n=graph.num_nodes,
        f=cell.f,
        behavior=cell.behavior,
        placement=cell.placement,
        seed=cell.seed,
        derived_seed=cell.derived_seed,
        success=success,
        metrics=metrics,
    )


def _run_check_cell(spec: GridSpec, cell: SweepCell, graph: DiGraph) -> CellResult:
    if cell.algorithm == "check-reach":
        reach_1 = check_one_reach(graph, cell.f).holds
        reach_2 = check_two_reach(graph, cell.f).holds
        reach_3 = check_three_reach(graph, cell.f).holds
        return _check_cell_result(
            cell,
            graph,
            success=reach_3,
            metrics={"reach_1": reach_1, "reach_2": reach_2, "reach_3": reach_3},
        )
    if cell.algorithm == "check-table1":
        row = compare_undirected(graph, cell.f)
        return _check_cell_result(
            cell,
            graph,
            success=row.consistent,
            metrics={
                "kappa": row.kappa,
                "classical_crash_sync": row.classical_crash_sync,
                "classical_crash_async": row.classical_crash_async,
                "classical_byz": row.classical_byz,
                "reach_1": row.reach_1,
                "reach_2": row.reach_2,
                "reach_3": row.reach_3,
            },
        )
    if cell.algorithm == "check-table2":
        row = directed_feasibility_row(graph, cell.f)
        return _check_cell_result(
            cell,
            graph,
            success=equivalences_hold(row),
            metrics={
                "crash_sync": bool(row.verdict("crash/sync")),
                "crash_async": bool(row.verdict("crash/async")),
                "byz_sync": bool(row.verdict("byz/sync")),
                "byz_async": bool(row.verdict("byz/async")),
                "ccs": bool(row.verdict("CCS")),
                "cca": bool(row.verdict("CCA")),
                "bcs": bool(row.verdict("BCS")),
            },
        )
    if cell.algorithm == "check-necessity":
        if check_three_reach(graph, cell.f).holds:
            raise ExperimentError(
                f"{graph.name} satisfies 3-reach for f={cell.f}; "
                "the necessity construction needs a violating graph"
            )
        violation = find_violation(graph, cell.f)
        schedule = build_schedule(graph, violation, epsilon=1.0)
        result = demonstrate_disagreement(graph, violation, epsilon=1.0, rounds=spec.rounds)
        return _check_cell_result(
            cell,
            graph,
            success=schedule.structural_facts_hold and result.convergence_violated,
            metrics={
                "witness_pair": f"{violation.u!r}/{violation.v!r}",
                "structural_facts_hold": schedule.structural_facts_hold,
                "disagreement": result.disagreement,
                "convergence_violated": result.convergence_violated,
            },
        )
    raise ExperimentError(f"unknown check algorithm {cell.algorithm!r}")


# ----------------------------------------------------------------------
# the scenario registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named sweep: the full grid plus a CI-friendly quick variant."""

    name: str
    description: str
    artefact: str
    spec: GridSpec
    quick: GridSpec

    def grid(self, quick: bool = False) -> GridSpec:
        return self.quick if quick else self.spec


def _check_axes(**overrides: object) -> Dict[str, object]:
    """Common axis values for check-cell grids (no adversary axes)."""
    axes: Dict[str, object] = {
        "behaviors": (NOT_APPLICABLE,),
        "placements": (NOT_APPLICABLE,),
        "seeds": (0,),
    }
    axes.update(overrides)
    return axes


def _build_scenarios() -> Dict[str, Scenario]:
    clique4 = TopologySpec.make("clique", n=4)
    fig1a = TopologySpec.make("figure-1a")
    fig1b = TopologySpec.make("figure-1b")

    scenarios: List[Scenario] = []

    scenarios.append(
        Scenario(
            name="figure1a",
            description="Byzantine-Witness on the Figure 1(a) graph under a behaviour sweep",
            artefact="Figure 1(a) / Theorem 4 (f=1 feasibility on the 5-node graph)",
            spec=GridSpec(
                name="figure1a",
                algorithms=("bw",),
                topologies=(fig1a,),
                f_values=(1,),
                behaviors=("crash", "fixed-high", "equivocate"),
                placements=("random",),
                seeds=(1, 2, 3),
                epsilon=0.25,
                path_policy="simple",
            ),
            quick=GridSpec(
                name="figure1a",
                algorithms=("bw",),
                topologies=(fig1a,),
                f_values=(1,),
                behaviors=("crash", "fixed-high"),
                placements=("random",),
                seeds=(1,),
                epsilon=0.25,
                path_policy="simple",
            ),
        )
    )

    scenarios.append(
        Scenario(
            name="figure1b",
            description="synchronous baselines on the Figure 1(b) two-clique graph (f=2)",
            artefact="Figure 1(b): the 14-node separation graph as a consensus workload",
            spec=GridSpec(
                name="figure1b",
                algorithms=("iterative", "local-average"),
                topologies=(fig1b,),
                f_values=(2,),
                behaviors=("honest", "fixed-high", "offset"),
                placements=("random", "max-out-degree"),
                seeds=(1, 2, 3),
                epsilon=0.25,
                rounds=15,
            ),
            quick=GridSpec(
                name="figure1b",
                algorithms=("iterative",),
                topologies=(fig1b,),
                f_values=(2,),
                behaviors=("honest", "fixed-high"),
                placements=("random",),
                seeds=(1,),
                epsilon=0.25,
                rounds=15,
            ),
        )
    )

    scenarios.append(
        Scenario(
            name="definition1",
            description="Definition 1 properties for BW on the 4-clique across all behaviours",
            artefact="Lemma 15 / Section 4.6 behaviour sweep (definition1_sweep table)",
            spec=GridSpec(
                name="definition1",
                algorithms=("bw",),
                topologies=(clique4,),
                f_values=(1,),
                behaviors=tuple(STANDARD_BEHAVIOR_FACTORIES),
                placements=("random",),
                seeds=(1, 2),
                epsilon=0.25,
                path_policy="redundant",
            ),
            quick=GridSpec(
                name="definition1",
                algorithms=("bw",),
                topologies=(clique4,),
                f_values=(1,),
                behaviors=("crash", "fixed-high", "equivocate"),
                placements=("random",),
                seeds=(1,),
                epsilon=0.25,
                path_policy="redundant",
            ),
        )
    )

    scenarios.append(
        Scenario(
            name="baselines_zoo",
            description="every Byzantine-tolerant algorithm against the same fixed-value adversary",
            artefact="Experiment B2 (baselines_b2_zoo table)",
            spec=GridSpec(
                name="baselines_zoo",
                algorithms=("bw", "clique", "iterative", "local-average"),
                topologies=(clique4,),
                f_values=(1,),
                behaviors=("fixed-high",),
                placements=("last",),
                seeds=(1, 2, 3),
                epsilon=0.25,
                path_policy="redundant",
                rounds=20,
            ),
            quick=GridSpec(
                name="baselines_zoo",
                algorithms=("bw", "clique", "iterative", "local-average"),
                topologies=(clique4,),
                f_values=(1,),
                behaviors=("fixed-high",),
                placements=("last",),
                seeds=(1,),
                epsilon=0.25,
                path_policy="redundant",
                rounds=20,
            ),
        )
    )

    scenarios.append(
        Scenario(
            name="crash_baseline",
            description="the crash-tolerant 2-reach baseline under crash faults",
            artefact="Experiment B2 (crash-tolerant row of the zoo)",
            spec=GridSpec(
                name="crash_baseline",
                algorithms=("crash",),
                topologies=(clique4,),
                f_values=(1,),
                behaviors=("crash",),
                placements=("random",),
                seeds=(1, 2, 3),
                epsilon=0.25,
            ),
            quick=GridSpec(
                name="crash_baseline",
                algorithms=("crash",),
                topologies=(clique4,),
                f_values=(1,),
                behaviors=("crash",),
                placements=("random",),
                seeds=(1,),
                epsilon=0.25,
            ),
        )
    )

    clique_sizes = (2, 3, 4, 5, 6, 7, 8, 9)
    bridge_counts = (1, 2, 3, 4, 5)
    resilience_topologies = tuple(
        [TopologySpec.make("clique", n=n) for n in clique_sizes]
        + [
            TopologySpec.make("two-cliques", clique_size=5, forward_bridges=b, backward_bridges=b)
            for b in bridge_counts
        ]
    )
    scenarios.append(
        Scenario(
            name="resilience",
            description="reach-condition verdicts across clique sizes and bridge counts",
            artefact="Appendix A closed forms + the Figure 1(b) family resilience sweep",
            spec=GridSpec(
                name="resilience",
                algorithms=("check-reach",),
                topologies=resilience_topologies,
                f_values=(1, 2),
                **_check_axes(),
            ),
            quick=GridSpec(
                name="resilience",
                algorithms=("check-reach",),
                topologies=tuple(
                    [TopologySpec.make("clique", n=n) for n in (3, 5, 7)]
                    + [
                        TopologySpec.make(
                            "two-cliques", clique_size=5, forward_bridges=b, backward_bridges=b
                        )
                        for b in (1, 5)
                    ]
                ),
                f_values=(1,),
                **_check_axes(),
            ),
        )
    )

    table1_topologies = (
        TopologySpec.make("bidirected-cycle", n=6),
        TopologySpec.make("bidirected-cycle", n=8),
        TopologySpec.make("wheel", n=6),
        TopologySpec.make("wheel", n=8),
        TopologySpec.make("undirected-complete", n=5),
        TopologySpec.make("undirected-complete", n=7),
        TopologySpec.make("random-bidirected", n=7, p=0.6, seed=11),
        TopologySpec.make("random-bidirected", n=8, p=0.5, seed=12),
    )
    scenarios.append(
        Scenario(
            name="table1",
            description="classical counting conditions vs reach conditions on undirected families",
            artefact="Table 1",
            spec=GridSpec(
                name="table1",
                algorithms=("check-table1",),
                topologies=table1_topologies,
                f_values=(1, 2),
                **_check_axes(),
            ),
            quick=GridSpec(
                name="table1",
                algorithms=("check-table1",),
                topologies=table1_topologies[:4],
                f_values=(1,),
                **_check_axes(),
            ),
        )
    )

    table2_topologies = (
        TopologySpec.make("clique", n=4),
        TopologySpec.make("clique", n=7),
        TopologySpec.make("directed-cycle", n=6),
        fig1a,
        TopologySpec.make("clique-with-feeders", core_size=4, feeders=2),
        TopologySpec.make("layered-relay", width=3, depth=2),
        TopologySpec.make("two-cliques", clique_size=4, forward_bridges=3, backward_bridges=3),
        TopologySpec.make("random-digraph", n=7, p=0.4, seed=3, ensure_connected=True),
        TopologySpec.make("random-digraph", n=7, p=0.25, seed=4, ensure_connected=True),
    )
    scenarios.append(
        Scenario(
            name="table2",
            description="per-cell condition verdicts + Theorem 17 cross-check on directed families",
            artefact="Table 2 / Theorem 17",
            spec=GridSpec(
                name="table2",
                algorithms=("check-table2",),
                topologies=table2_topologies,
                f_values=(1, 2),
                **_check_axes(),
            ),
            quick=GridSpec(
                name="table2",
                algorithms=("check-table2",),
                topologies=table2_topologies[:5],
                f_values=(1,),
                **_check_axes(),
            ),
        )
    )

    necessity_topologies = (
        TopologySpec.make("directed-cycle", n=6),
        TopologySpec.make("star-out", n=6),
        TopologySpec.make("two-cliques", clique_size=4, forward_bridges=1, backward_bridges=1),
        TopologySpec.make("random-k-out", n=7, k=1, seed=5),
    )
    scenarios.append(
        Scenario(
            name="necessity",
            description="Theorem 18 indistinguishability construction on 3-reach violators",
            artefact="Theorem 18 (necessity of 3-reach)",
            spec=GridSpec(
                name="necessity",
                algorithms=("check-necessity",),
                topologies=necessity_topologies,
                f_values=(1,),
                rounds=20,
                **_check_axes(),
            ),
            quick=GridSpec(
                name="necessity",
                algorithms=("check-necessity",),
                topologies=necessity_topologies[:2],
                f_values=(1,),
                rounds=20,
                **_check_axes(),
            ),
        )
    )

    return {scenario.name: scenario for scenario in scenarios}


SCENARIOS: Dict[str, Scenario] = _build_scenarios()


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error for typos."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ExperimentError(f"unknown scenario {name!r} (known: {known})") from None


__all__ = [
    "BEHAVIOR_FACTORIES",
    "CHECK_ALGORITHMS",
    "CONSENSUS_ALGORITHMS",
    "NOT_APPLICABLE",
    "SCENARIOS",
    "SYNC_BYZANTINE_VALUES",
    "Scenario",
    "TOPOLOGY_FAMILIES",
    "WORKER_CACHE_LIMIT",
    "build_topology",
    "cached_graph",
    "cached_topology_knowledge",
    "clear_worker_caches",
    "warm_worker_caches",
    "get_scenario",
    "resolve_placement",
    "run_cell",
    "scenario_names",
    "worker_cache_stats",
]
