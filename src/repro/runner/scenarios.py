"""Built-in scenarios and the registry-backed cell dispatcher.

The nine named sweep grids live as declarative TOML files under
``src/repro/runner/scenarios/`` (see :mod:`repro.runner.scenario_files` for
the format) and every string axis resolves through the typed registries in
:mod:`repro.registry`:

* topology families   -> :data:`~repro.registry.TOPOLOGIES`
* Byzantine behaviours-> :data:`~repro.registry.BEHAVIORS`
* fault placements    -> :data:`~repro.registry.PLACEMENTS`
* algorithms          -> :data:`~repro.registry.ALGORITHMS`
  (each an :class:`~repro.runner.algorithms.AlgorithmSpec`)

:func:`run_cell` is the single cell-execution entry point used by
:class:`~repro.runner.harness.SweepEngine`; it resolves the cell's algorithm
*by name inside the worker process*, so cells travel between processes as
small tuples of primitives and a sharded run needs nothing unpicklable.

This module also keeps the pre-registry call surface alive as thin
deprecation shims (:func:`build_topology`, :func:`resolve_placement` and the
``TOPOLOGY_FAMILIES`` / ``BEHAVIOR_FACTORIES`` / ``SYNC_BYZANTINE_VALUES``
mapping views).  New code should use the registries — preferably through
:mod:`repro.api` — instead; ``src/repro`` itself no longer calls the shims
(CI greps to keep it that way).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterator, List, Mapping, Optional

from repro.exceptions import ExperimentError
from repro.graphs.digraph import DiGraph
from repro.registry import ALGORITHMS, BEHAVIORS, TOPOLOGIES
from repro.runner import algorithms as _algorithms
from repro.runner.harness import NOT_APPLICABLE, CellResult, GridSpec, SweepCell, TopologySpec
from repro.runner.scenario_files import Scenario, load_builtin_scenarios
from repro.runner.worker_cache import (
    WORKER_CACHE_LIMIT,
    cached_graph,
    cached_topology_knowledge,
    clear_worker_caches,
    warm_worker_caches,
    worker_cache_stats,
)

NodeId = Hashable

#: Algorithm names by kind, derived from the registry (stays in sync with
#: whatever is registered at import time; third-party registrations made
#: later are still resolvable by name, just not listed here).
CONSENSUS_ALGORITHMS = tuple(
    name for name in ALGORITHMS.names() if ALGORITHMS.get(name).kind == "consensus"
)
CHECK_ALGORITHMS = tuple(
    name for name in ALGORITHMS.names() if ALGORITHMS.get(name).kind == "check"
)


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def run_cell(spec: GridSpec, cell: SweepCell) -> CellResult:
    """Execute one sweep cell; the engine's default (picklable) cell runner."""
    graph = cached_graph(cell.topology)
    return ALGORITHMS.get(cell.algorithm).run(spec, cell, graph)


# ----------------------------------------------------------------------
# the scenario registry (loaded from the committed TOML files)
# ----------------------------------------------------------------------
SCENARIOS: Dict[str, Scenario] = load_builtin_scenarios()


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error for typos."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ExperimentError(f"unknown scenario {name!r} (known: {known})") from None


# ----------------------------------------------------------------------
# deprecated shims (pre-registry API; kept for external callers)
# ----------------------------------------------------------------------
def build_topology(spec: TopologySpec) -> DiGraph:
    """Deprecated: use ``spec.build()`` (the TOPOLOGIES registry)."""
    return spec.build()


def resolve_placement(name: str, graph: DiGraph, f: int, seed: int) -> FrozenSet[NodeId]:
    """Deprecated: use :data:`repro.registry.PLACEMENTS` /
    :func:`repro.runner.algorithms.resolve_placement`."""
    return _algorithms.resolve_placement(name, graph, f, seed)


class _RegistryView(Mapping):
    """Read-only mapping view over a registry (deprecated dict shims)."""

    def __init__(self, registry, resolve: Callable, member: Callable = lambda entry: True):
        self._registry = registry
        self._resolve = resolve
        self._member = member

    def _names(self) -> List[str]:
        return [entry.name for entry in self._registry.entries() if self._member(entry)]

    def __getitem__(self, name: str):
        if name not in self._registry:
            raise KeyError(name)
        entry = self._registry.entry(name)
        if not self._member(entry):
            raise KeyError(name)
        return self._resolve(entry)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())


#: Deprecated: use :data:`repro.registry.TOPOLOGIES`.
TOPOLOGY_FAMILIES: Mapping[str, Callable[..., DiGraph]] = _RegistryView(
    TOPOLOGIES, lambda entry: entry.obj
)

#: Deprecated: use :data:`repro.registry.BEHAVIORS` (factories accept their
#: registered parameters; called with none they build the default variant).
BEHAVIOR_FACTORIES: Mapping[str, Callable[[], object]] = _RegistryView(
    BEHAVIORS, lambda entry: entry.obj, lambda entry: entry.metadata.get("min_params", 0) == 0
)

#: Deprecated: use :func:`repro.runner.algorithms.resolve_sync_behavior`.
#: Maps each behaviour with a synchronous-model equivalent to its default
#: value-reporting function (``None`` = the faulty nodes behave honestly).
SYNC_BYZANTINE_VALUES: Mapping[str, Optional[Callable]] = _RegistryView(
    BEHAVIORS,
    lambda entry: entry.metadata["sync"](),
    lambda entry: "sync" in entry.metadata and entry.metadata.get("min_params", 0) == 0,
)


__all__ = [
    "BEHAVIOR_FACTORIES",
    "CHECK_ALGORITHMS",
    "CONSENSUS_ALGORITHMS",
    "NOT_APPLICABLE",
    "SCENARIOS",
    "SYNC_BYZANTINE_VALUES",
    "Scenario",
    "TOPOLOGY_FAMILIES",
    "WORKER_CACHE_LIMIT",
    "build_topology",
    "cached_graph",
    "cached_topology_knowledge",
    "clear_worker_caches",
    "warm_worker_caches",
    "get_scenario",
    "resolve_placement",
    "run_cell",
    "scenario_names",
    "worker_cache_stats",
]
