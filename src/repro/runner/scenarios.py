"""Built-in scenarios and the registry-backed cell dispatcher.

The nine named sweep grids live as declarative TOML files under
``src/repro/runner/scenarios/`` (see :mod:`repro.runner.scenario_files` for
the format) and every string axis resolves through the typed registries in
:mod:`repro.registry`:

* topology families   -> :data:`~repro.registry.TOPOLOGIES`
* Byzantine behaviours-> :data:`~repro.registry.BEHAVIORS`
* fault placements    -> :data:`~repro.registry.PLACEMENTS`
* algorithms          -> :data:`~repro.registry.ALGORITHMS`
  (each an :class:`~repro.runner.algorithms.AlgorithmSpec`)

:func:`run_cell` is the single cell-execution entry point used by
:class:`~repro.runner.harness.SweepEngine`; it resolves the cell's algorithm
*by name inside the worker process*, so cells travel between processes as
small tuples of primitives and a sharded run needs nothing unpicklable.

The pre-registry call surface (``build_topology``, ``resolve_placement``
and the ``TOPOLOGY_FAMILIES`` / ``BEHAVIOR_FACTORIES`` /
``SYNC_BYZANTINE_VALUES`` mapping views) lived here as deprecation shims
through api v1; they are gone — use the registries, preferably through
:mod:`repro.api` (CI greps ``src/repro`` to keep duplicate loader paths
from creeping back).
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import ExperimentError
from repro.registry import ALGORITHMS
from repro.runner.harness import NOT_APPLICABLE, CellResult, GridSpec, SweepCell
from repro.runner.scenario_files import Scenario, load_builtin_scenarios
from repro.runner.worker_cache import (
    WORKER_CACHE_LIMIT,
    cached_graph,
    cached_topology_knowledge,
    clear_worker_caches,
    warm_worker_caches,
    worker_cache_stats,
)

#: Algorithm names by kind, derived from the registry (stays in sync with
#: whatever is registered at import time; third-party registrations made
#: later are still resolvable by name, just not listed here).
CONSENSUS_ALGORITHMS = tuple(
    name for name in ALGORITHMS.names() if ALGORITHMS.get(name).kind == "consensus"
)
CHECK_ALGORITHMS = tuple(
    name for name in ALGORITHMS.names() if ALGORITHMS.get(name).kind == "check"
)


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def run_cell(spec: GridSpec, cell: SweepCell) -> CellResult:
    """Execute one sweep cell; the engine's default (picklable) cell runner.

    The graph is built (and worker-cached) from the cell's *resolved*
    topology, so a ``seed = "cell"`` random family samples a fresh graph per
    seed cell, deterministically from the cell's derived seed.
    """
    graph = cached_graph(cell.resolved_topology)
    return ALGORITHMS.get(cell.algorithm).run(spec, cell, graph)


# ----------------------------------------------------------------------
# the scenario registry (loaded from the committed TOML files)
# ----------------------------------------------------------------------
SCENARIOS: Dict[str, Scenario] = load_builtin_scenarios()


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error for typos."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ExperimentError(f"unknown scenario {name!r} (known: {known})") from None


__all__ = [
    "CHECK_ALGORITHMS",
    "CONSENSUS_ALGORITHMS",
    "NOT_APPLICABLE",
    "SCENARIOS",
    "Scenario",
    "WORKER_CACHE_LIMIT",
    "cached_graph",
    "cached_topology_knowledge",
    "clear_worker_caches",
    "warm_worker_caches",
    "get_scenario",
    "run_cell",
    "scenario_names",
    "worker_cache_stats",
]
