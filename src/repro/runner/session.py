"""Streaming execution sessions: the api-v2 run surface.

An :class:`ExperimentSession` wraps one :class:`~repro.runner.harness.GridSpec`
(optionally plus a run directory) and replaces the blocking
``SweepEngine.run(spec)`` call with an **event-driven, journaled, resumable**
execution model:

* :meth:`ExperimentSession.events` yields typed events — :class:`RunStarted`,
  :class:`CellCompleted`, :class:`GroupUpdated`, :class:`CheckpointWritten`,
  :class:`RunFinished` — as cells finish.  The stream is produced by
  :meth:`SweepEngine.stream`, the engine's observer surface, so the serial
  and the ``workers > 1`` sharded path emit the *identical* sequence.
  :meth:`ExperimentSession.iter_results` is the thin cell-level view.
* With a ``run_dir``, every completed cell is appended (flushed per record,
  fsynced at every checkpoint) to the canonical JSONL journal
  (:mod:`repro.runner.journal`) before its event is emitted, so an
  interrupted run keeps all paid-for work.
  :meth:`ExperimentSession.resume` re-expands the grid, verifies the
  journal's spec hash, skips the durably completed cell indexes — per-cell
  seeds derive from ``(scenario, index)``, so a resumed run is
  byte-identical to an uninterrupted one — and continues on the pool.
* :class:`StopPolicy` instances (resolved by name through the
  :data:`~repro.registry.STOP_POLICIES` registry: ``max-cells:N``,
  ``max-wall-time:SECONDS``, ``group-converged:RUNS``) watch the event
  stream and can end the session early; the journal is then *sealed* with
  the policy's reason and the partial artifact is still valid.

The blocking call is one line on top of the stream::

    from repro.api import ExperimentSession

    session = ExperimentSession(spec, workers=4, run_dir="runs/table2.full")
    for event in session.events():
        ...  # render progress, feed dashboards, evaluate policies
    payload = session.write_artifact("benchmarks/results/table2.full.json")

``ExperimentSession(spec).run()`` is the drop-in replacement for the
deprecated v1 ``run_grid(spec)``.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ExperimentError, JournalError
from repro.registry import STOP_POLICIES, parse_plugin_spec, validate_plugin_args
from repro.runner.artifacts import (
    artifact_payload,
    environment_metadata,
    write_payload,
)
from repro.runner.harness import (
    CellResult,
    CellRunner,
    GridSpec,
    GroupAggregate,
    SweepEngine,
    SweepRunResult,
    _fold_into,
    aggregate_cells,
)
from repro.runner.journal import Journal, JournalWriter, journal_path, load_journal

PathLike = Union[str, pathlib.Path]

#: A :class:`CheckpointWritten` event is emitted — and the journal fsynced —
#: every this many fresh cells.  Records are flushed as they are appended
#: (process crashes lose nothing); the checkpoint fsync is the machine-crash
#: durability barrier.
DEFAULT_CHECKPOINT_INTERVAL = 16


def expected_group_count(spec: GridSpec, total: Optional[int] = None) -> int:
    """Number of aggregation groups a full run of ``spec`` produces.

    Groups collapse the seed axis, so the count is the grid size divided by
    the seed count (0 for an empty grid).  Pass ``total`` when the expanded
    cell count is already known, to avoid re-expanding the grid; sessions
    and the fabric coordinator both size their progress views with this.
    """
    if total is None:
        total = len(spec.expand())
    return max(1, total // max(1, len(spec.seeds))) if total else 0


# ----------------------------------------------------------------------
# the typed event stream
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionEvent:
    """Base class of every event a session emits."""


@dataclass(frozen=True)
class RunStarted(SessionEvent):
    """First event: the run's envelope, before any cell executes."""

    scenario: str
    mode: str
    total_cells: int
    #: Number of cells replayed from the journal (resumed runs; 0 otherwise).
    completed_cells: int
    #: Number of distinct aggregation groups the grid will produce.
    expected_groups: int
    workers: int
    run_dir: Optional[str] = None


@dataclass(frozen=True)
class CellCompleted(SessionEvent):
    """One cell finished (or was replayed from the journal on resume)."""

    result: CellResult
    completed: int
    total: int
    #: ``True`` when the cell was read back from the journal rather than
    #: executed by this session.
    replayed: bool = False


@dataclass(frozen=True)
class GroupUpdated(SessionEvent):
    """The aggregate of one group absorbed a new cell (snapshot copy)."""

    key: Tuple[str, str, int, str, str, str]
    group: GroupAggregate


@dataclass(frozen=True)
class CheckpointWritten(SessionEvent):
    """The journal has durably recorded ``cells_recorded`` cells."""

    path: str
    cells_recorded: int
    sealed: bool = False


@dataclass(frozen=True)
class RunFinished(SessionEvent):
    """Last event: the run completed or a stop policy sealed it early."""

    scenario: str
    reason: str  # "completed" | "policy:<name>"
    completed: int
    total: int
    successes: int
    wall_seconds: float
    #: The stop policy's explanation when ``reason`` is ``policy:<name>``.
    detail: Optional[str] = None


# ----------------------------------------------------------------------
# stop policies
# ----------------------------------------------------------------------
class StopPolicy:
    """Watches the event stream; returns a reason string to stop the run.

    Subclasses override :meth:`observe`; returning a non-``None`` string
    ends the session after the current cell, seals the journal with
    ``policy:<name>`` and leaves a valid partial artifact.  Policies are
    registered in :data:`~repro.registry.STOP_POLICIES` and addressable
    from the CLI as ``run --stop-policy name:args``.
    """

    name: str = "stop"

    def observe(self, event: SessionEvent) -> Optional[str]:
        raise NotImplementedError


class MaxCellsPolicy(StopPolicy):
    """Stop once ``limit`` cells are complete (replayed cells count)."""

    name = "max-cells"

    def __init__(self, limit: int) -> None:
        limit = int(limit)
        if limit < 1:
            raise ExperimentError(f"max-cells limit must be >= 1, got {limit}")
        self.limit = limit

    def observe(self, event: SessionEvent) -> Optional[str]:
        if isinstance(event, CellCompleted) and event.completed >= self.limit:
            return f"completed {event.completed} of {event.total} cells (limit {self.limit})"
        return None


class MaxWallTimePolicy(StopPolicy):
    """Stop once the session has run for ``seconds`` of wall-clock time."""

    name = "max-wall-time"

    def __init__(self, seconds: float) -> None:
        seconds = float(seconds)
        if seconds < 0:
            raise ExperimentError(f"max-wall-time seconds must be >= 0, got {seconds}")
        self.seconds = seconds
        self._started: Optional[float] = None

    def observe(self, event: SessionEvent) -> Optional[str]:
        if isinstance(event, RunStarted):
            self._started = time.monotonic()
            return None
        if self._started is None or not isinstance(event, CellCompleted):
            return None
        elapsed = time.monotonic() - self._started
        if elapsed >= self.seconds:
            return f"ran {elapsed:.1f}s (budget {self.seconds:g}s)"
        return None


class GroupConvergedPolicy(StopPolicy):
    """Stop once every aggregation group has at least ``min_runs`` runs.

    Useful on grids with long seed axes: the sweep ends as soon as each
    (algorithm, topology, f, behaviour, placement) group has collected the
    requested number of repetitions, instead of draining every seed.
    """

    name = "group-converged"

    def __init__(self, min_runs: int) -> None:
        min_runs = int(min_runs)
        if min_runs < 1:
            raise ExperimentError(f"group-converged min_runs must be >= 1, got {min_runs}")
        self.min_runs = min_runs
        self._expected_groups: Optional[int] = None
        self._runs: Dict[Tuple, int] = {}

    def observe(self, event: SessionEvent) -> Optional[str]:
        if isinstance(event, RunStarted):
            self._expected_groups = event.expected_groups
            return None
        if not isinstance(event, GroupUpdated):
            return None
        self._runs[event.key] = event.group.runs
        if self._expected_groups is None or len(self._runs) < self._expected_groups:
            return None
        if all(runs >= self.min_runs for runs in self._runs.values()):
            return f"all {len(self._runs)} groups reached {self.min_runs} run(s)"
        return None


STOP_POLICIES.register(
    "max-cells",
    MaxCellsPolicy,
    summary="stop after N completed cells",
    metadata={"params": ("limit",), "min_params": 1},
)
STOP_POLICIES.register(
    "max-wall-time",
    MaxWallTimePolicy,
    summary="stop after a wall-clock budget in seconds",
    metadata={"params": ("seconds",), "min_params": 1},
)
STOP_POLICIES.register(
    "group-converged",
    GroupConvergedPolicy,
    summary="stop once every group has N runs",
    metadata={"params": ("min_runs",), "min_params": 1},
)


def make_stop_policy(spec_text: str) -> StopPolicy:
    """Build a policy from CLI syntax (``"max-cells:100"``) via the registry."""
    entry = validate_plugin_args(STOP_POLICIES, spec_text)
    name, args = parse_plugin_spec(spec_text)
    policy = entry.obj(*args)
    if not isinstance(policy, StopPolicy):
        raise ExperimentError(
            f"stop-policy {name!r} factory returned {type(policy).__name__}, "
            "expected a StopPolicy"
        )
    return policy


# ----------------------------------------------------------------------
# the session
# ----------------------------------------------------------------------
@dataclass
class _SessionState:
    """Mutable run state shared between events() and the public accessors."""

    results: List[CellResult] = field(default_factory=list)
    groups: Dict[Tuple[str, str, int, str, str, str], GroupAggregate] = field(default_factory=dict)
    finished: Optional[RunFinished] = None


class ExperimentSession:
    """One resumable, observable execution of a grid (api v2).

    Parameters
    ----------
    spec:
        The grid to execute.
    mode:
        Artifact mode recorded in the journal header and derived artifact
        (``"full"`` or ``"quick"``).
    workers / chunk_size / runner:
        Forwarded to the underlying :class:`SweepEngine`; semantics are
        unchanged — a 4-worker session produces the same events, journal
        and artifact bytes as a serial one.
    run_dir:
        Enables durable journaling: completed cells are appended to
        ``<run_dir>/journal.jsonl`` (flushed per record, fsynced every
        ``checkpoint_interval`` cells and at the seal).  ``None`` runs in
        memory (no journal, no checkpoints, not resumable).
    stop_policies:
        :class:`StopPolicy` instances or ``"name:args"`` specs resolved
        through :data:`~repro.registry.STOP_POLICIES`.
    checkpoint_interval:
        Cells between :class:`CheckpointWritten` events on journaled runs.
    """

    def __init__(
        self,
        spec: GridSpec,
        *,
        mode: str = "full",
        workers: int = 1,
        chunk_size: Optional[int] = None,
        runner: Optional[CellRunner] = None,
        run_dir: Optional[PathLike] = None,
        stop_policies: Iterable[Union[StopPolicy, str]] = (),
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if mode not in ("quick", "full"):
            raise ExperimentError(f"mode must be 'quick' or 'full', got {mode!r}")
        if checkpoint_interval < 1:
            raise ExperimentError("checkpoint_interval must be >= 1")
        self.spec = spec
        self.mode = mode
        self.run_dir = pathlib.Path(run_dir) if run_dir is not None else None
        self.checkpoint_interval = checkpoint_interval
        self.stop_policies: List[StopPolicy] = [
            policy if isinstance(policy, StopPolicy) else make_stop_policy(policy)
            for policy in stop_policies
        ]
        self._engine = SweepEngine(workers=workers, chunk_size=chunk_size)
        self._runner = runner
        self._resumed_journal: Optional[Journal] = None
        self._provenance: Optional[Dict[str, object]] = None
        self._state = _SessionState()
        self._consumed = False

    # -- construction from a run directory -------------------------------
    @classmethod
    def resume(
        cls,
        run_dir: PathLike,
        *,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        runner: Optional[CellRunner] = None,
        stop_policies: Iterable[Union[StopPolicy, str]] = (),
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> "ExperimentSession":
        """Continue an interrupted journaled run from its run directory.

        Loads and validates the journal (spec hash verified against the
        recorded grid — :mod:`repro.runner.journal`), re-expands the grid
        and schedules only the cells whose indexes are not yet durably
        recorded.  Per-cell seeds derive from ``(scenario, index)``, so the
        resumed run's artifact is byte-identical to an uninterrupted one.
        A sealed journal (completed or policy-stopped) refuses to resume.
        """
        journal = load_journal(run_dir)
        if journal.sealed:
            raise JournalError(
                f"journal {journal.path} is already sealed ({journal.seal_reason!r}); "
                "nothing to resume — delete the run directory (or pick a fresh "
                "--run-dir) to run the grid again"
            )
        spec = journal.grid_spec()
        grid_indices = {cell.index for cell in spec.expand()}
        stray = sorted(journal.completed_indices() - grid_indices)
        if stray:
            raise JournalError(
                f"journal {journal.path} records cell indexes {stray[:5]} outside the "
                f"{len(grid_indices)}-cell grid it declares"
            )
        current_environment = environment_metadata()
        if journal.environment is not None and journal.environment != current_environment:
            warnings.warn(
                f"resuming journal {journal.path} under a different environment "
                f"({journal.environment} -> {current_environment}); results stay "
                "deterministic but floating-point behaviour across interpreter "
                "versions is not contractually identical",
                RuntimeWarning,
                stacklevel=2,
            )
        session = cls(
            spec,
            mode=journal.mode,
            workers=workers,
            chunk_size=chunk_size,
            runner=runner,
            run_dir=journal.path.parent,
            stop_policies=stop_policies,
            checkpoint_interval=checkpoint_interval,
        )
        session._resumed_journal = journal
        return session

    # -- introspection ----------------------------------------------------
    @property
    def workers(self) -> int:
        return self._engine.workers

    @property
    def journaling(self) -> bool:
        return self.run_dir is not None

    @property
    def journal_path(self) -> Optional[pathlib.Path]:
        return journal_path(self.run_dir) if self.run_dir is not None else None

    @property
    def finished(self) -> Optional[RunFinished]:
        """The terminal event, once the session has run to its seal."""
        return self._state.finished

    @property
    def result(self) -> SweepRunResult:
        """The folded :class:`SweepRunResult` (after the session finished)."""
        finished = self._state.finished
        if finished is None:
            raise ExperimentError("session has not finished; drain events() or run() first")
        cells = sorted(self._state.results, key=lambda cell: cell.index)
        return SweepRunResult(
            spec=self.spec,
            cells=cells,
            groups=aggregate_cells(cells),
            workers=self._engine.workers,
            wall_seconds=finished.wall_seconds,
            stop_reason=None if finished.reason == "completed" else finished.reason,
        )

    def provenance(self) -> Optional[Dict[str, object]]:
        """Journal-header provenance for journaled runs, else ``None``.

        Passed to :func:`~repro.runner.artifacts.artifact_payload` so a
        resumed run's artifact carries the provenance of the run that
        *started* the journal — byte-identical to the uninterrupted run.
        """
        return dict(self._provenance) if self._provenance is not None else None

    # -- the event stream -------------------------------------------------
    def events(self) -> Iterator[SessionEvent]:
        """Yield the session's typed event stream, executing the grid.

        One-shot: a session runs at most once (resume constructs a new
        session over the same run directory).  Closing the iterator early —
        or a ``KeyboardInterrupt`` in the consuming loop — releases the
        worker pool deterministically and leaves the journal *unsealed*,
        i.e. resumable; the journal is sealed only on completion or when a
        stop policy ends the run.
        """
        if self._consumed:
            raise ExperimentError(
                "session already executed; construct a new ExperimentSession "
                "(or ExperimentSession.resume) to run again"
            )
        self._consumed = True
        return self._event_stream()

    def iter_results(self) -> Iterator[CellResult]:
        """Thin cell-level view of :meth:`events` (fresh and replayed cells)."""
        for event in self.events():
            if isinstance(event, CellCompleted):
                yield event.result

    def run(self) -> SweepRunResult:
        """Drain the event stream and return the folded result (v2 blocking
        form; replaces the v1 ``run_grid``)."""
        for _ in self.events():
            pass
        return self.result

    # -- artifacts --------------------------------------------------------
    def artifact_payload(self) -> Dict[str, object]:
        """Canonical artifact payload for the finished session."""
        return artifact_payload(self.result, mode=self.mode, provenance=self.provenance())

    def write_artifact(self, path: PathLike) -> Dict[str, object]:
        """Serialize the finished session's artifact to ``path`` (atomic)."""
        payload = self.artifact_payload()
        write_payload(path, payload)
        return payload

    # -- internals --------------------------------------------------------
    def _observe_policies(self, event: SessionEvent) -> Optional[Tuple[str, str]]:
        for policy in self.stop_policies:
            detail = policy.observe(event)
            if detail is not None:
                return policy.name, detail
        return None

    def _open_writer(self) -> Optional[JournalWriter]:
        if not self.journaling:
            self._provenance = None
            return None
        if self._resumed_journal is not None:
            writer = JournalWriter.resume(self._resumed_journal)
            self._provenance = self._resumed_journal.provenance()
        else:
            writer = JournalWriter.create(self.run_dir, self.spec, mode=self.mode)
            header = load_journal(self.run_dir)
            self._provenance = header.provenance()
        return writer

    def _event_stream(self) -> Iterator[SessionEvent]:
        spec = self.spec
        all_cells = spec.expand()
        total = len(all_cells)
        expected_groups = expected_group_count(spec, total=total)
        replayed: List[CellResult] = []
        if self._resumed_journal is not None:
            replayed = sorted(self._resumed_journal.cells, key=lambda cell: cell.index)
        completed_indices = {cell.index for cell in replayed}
        pending = [cell for cell in all_cells if cell.index not in completed_indices]

        state = self._state
        writer = self._open_writer()
        start = time.perf_counter()
        stop: Optional[Tuple[str, str]] = None
        try:
            started = RunStarted(
                scenario=spec.name,
                mode=self.mode,
                total_cells=total,
                completed_cells=len(replayed),
                expected_groups=expected_groups,
                workers=self._engine.workers,
                run_dir=str(self.run_dir) if self.run_dir is not None else None,
            )
            self._observe_policies(started)
            yield started

            def absorb(result: CellResult, is_replay: bool) -> List[SessionEvent]:
                state.results.append(result)
                _fold_into(state.groups, result)
                events: List[SessionEvent] = [
                    CellCompleted(
                        result=result,
                        completed=len(state.results),
                        total=total,
                        replayed=is_replay,
                    ),
                    GroupUpdated(
                        key=result.group_key,
                        group=dataclasses.replace(state.groups[result.group_key]),
                    ),
                ]
                return events

            # Replayed cells are absorbed unconditionally: they are already
            # durably recorded, so a stop policy firing mid-replay must not
            # seal the journal with totals contradicting its own cell
            # records.  Policies observe the replay events (max-cells counts
            # them) but their verdict only takes effect before *fresh* work.
            for result in replayed:
                for event in absorb(result, True):
                    stop = stop or self._observe_policies(event)
                    yield event

            fresh = 0
            if stop is None:
                stream = self._engine.stream(spec, runner=self._runner, cells=pending)
                try:
                    for result in stream:
                        if writer is not None:
                            writer.append_cell(result)
                        fresh += 1
                        for event in absorb(result, False):
                            stop = stop or self._observe_policies(event)
                            yield event
                        if writer is not None and fresh % self.checkpoint_interval == 0:
                            writer.checkpoint()
                            yield CheckpointWritten(
                                path=str(writer.path),
                                cells_recorded=writer.cells_recorded,
                            )
                        if stop is not None:
                            break
                finally:
                    stream.close()

            reason = "completed" if stop is None else f"policy:{stop[0]}"
            if writer is not None:
                writer.seal(reason, state.results)
                yield CheckpointWritten(
                    path=str(writer.path),
                    cells_recorded=writer.cells_recorded,
                    sealed=True,
                )
            successes = sum(1 for cell in state.results if cell.success)
            finished = RunFinished(
                scenario=spec.name,
                reason=reason,
                completed=len(state.results),
                total=total,
                successes=successes,
                wall_seconds=time.perf_counter() - start,
                detail=stop[1] if stop is not None else None,
            )
            state.finished = finished
            yield finished
        finally:
            if writer is not None:
                writer.close()


def run_session(
    spec: GridSpec,
    *,
    mode: str = "full",
    workers: int = 1,
    chunk_size: Optional[int] = None,
    runner: Optional[CellRunner] = None,
    run_dir: Optional[PathLike] = None,
    stop_policies: Iterable[Union[StopPolicy, str]] = (),
) -> SweepRunResult:
    """One-call convenience wrapper: build a session, drain it, return the
    result — the v2 equivalent of the deprecated ``run_grid``."""
    return ExperimentSession(
        spec,
        mode=mode,
        workers=workers,
        chunk_size=chunk_size,
        runner=runner,
        run_dir=run_dir,
        stop_policies=stop_policies,
    ).run()


__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "CellCompleted",
    "CheckpointWritten",
    "ExperimentSession",
    "GroupConvergedPolicy",
    "GroupUpdated",
    "MaxCellsPolicy",
    "MaxWallTimePolicy",
    "RunFinished",
    "RunStarted",
    "SessionEvent",
    "StopPolicy",
    "expected_group_count",
    "make_stop_policy",
    "run_session",
]
