"""Shared topology precomputation for the Byzantine-Witness algorithm.

Algorithm 1 has every node reason about *candidate fault sets*: it runs one
parallel thread per ``F_v ⊆ V \\ {v}`` with ``|F_v| ≤ f``, checks fullness of
its message set against all redundant paths of ``G_{V \\ F_v}`` terminating
at itself, waits for COMPLETE announcements from every node of
``reach_v(F_v)`` over every simple path inside that reach set, and evaluates
the Completeness condition against source components ``S_{F_u, F_w}``.

All of those objects depend only on the graph and ``f`` — not on the
execution — so they are computed once per experiment by
:class:`TopologyKnowledge` and shared by every process (matching the paper's
assumption that nodes know the topology).  Reach sets and source components
run on the per-graph shared bitmask engine
(:class:`~repro.graphs.bitset.BitsetIndex`) through the mask-keyed memo
caches of :mod:`repro.graphs.reach` — one cache per experiment run, shared
across every round and every candidate fault-set pair, with explicit
:meth:`clear_caches` / :meth:`cache_stats` accounting.  The structure also
exposes cost counters (number of threads, required paths, source components)
consumed by the message/thread-complexity benchmark (experiment M1 in
DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Tuple

from repro.exceptions import ProtocolError
from repro.graphs.bitset import BitsetIndex, PathCodec
from repro.graphs.digraph import DiGraph
from repro.graphs.paths import (
    enumerate_redundant_paths_to,
    enumerate_simple_paths_to,
    is_fully_contained,
)
from repro.graphs.reach import ReachSetCache, SourceComponentCache
from repro.conditions.reach_conditions import iter_subsets

NodeId = Hashable
Path = Tuple[NodeId, ...]
FaultSet = FrozenSet[NodeId]

#: Flooding policies supported by the algorithm.  ``"redundant"`` is the
#: faithful policy of the paper (Algorithm 4); ``"simple"`` floods only along
#: simple paths and exists as a documented cost/fidelity ablation.
PATH_POLICIES = ("redundant", "simple")

#: Safety bound on the per-experiment path memos (ids, policy verdicts,
#: relay targets).  Honest executions stay far below it — the path universe
#: is the graph's redundant paths, which the precomputation materializes
#: anyway — but a hostile behaviour forging unbounded fresh paths must not
#: grow a worker-cached knowledge instance without limit.
PATH_MEMO_LIMIT = 1 << 17


class TopologyKnowledge:
    """Precomputed topological objects shared by every BW process.

    Parameters
    ----------
    graph:
        The communication graph ``G``.
    f:
        Fault bound.
    path_policy:
        ``"redundant"`` (paper-faithful) or ``"simple"`` (cheaper ablation).
    """

    def __init__(self, graph: DiGraph, f: int, path_policy: str = "redundant") -> None:
        if path_policy not in PATH_POLICIES:
            raise ProtocolError(f"unknown path policy {path_policy!r}; expected one of {PATH_POLICIES}")
        if f < 0:
            raise ProtocolError("the fault bound f must be non-negative")
        self.graph = graph
        self.f = f
        self.path_policy = path_policy
        self.nodes: List[NodeId] = sorted(graph.nodes, key=repr)

        #: shared bitmask engine (one per graph; also used by the condition
        #: checkers and by mask-level queries on the BW verification path).
        self.engine: BitsetIndex = BitsetIndex.for_graph(graph)

        #: shared path codec: graph nodes use the engine's bits, forged hops
        #: (Byzantine senders may invent them) intern beyond the graph.  One
        #: codec per experiment keeps member masks comparable across every
        #: process and every round.
        self.path_codec: PathCodec = PathCodec.for_engine(self.engine)

        #: every candidate fault set ``F ⊆ V`` with ``|F| ≤ f`` (used by Completeness).
        self.fault_sets: List[FaultSet] = list(iter_subsets(self.nodes, f))

        #: per node, the candidate sets ``F_v ⊆ V \ {v}`` of its parallel threads.
        self.fault_candidates: Dict[NodeId, List[FaultSet]] = {
            node: [fs for fs in self.fault_sets if node not in fs] for node in self.nodes
        }

        self._required_paths: Dict[Tuple[NodeId, FaultSet], FrozenSet[Path]] = {}
        self._required_path_ids: Dict[Tuple[NodeId, FaultSet], FrozenSet[int]] = {}
        self._required_index: Dict[NodeId, Dict[int, Tuple[FaultSet, ...]]] = {}
        #: path → small int, shared by every process of the experiment, so the
        #: fullness check of Definition 9 is integer-set membership instead of
        #: tuple hashing (tuples re-hash on every lookup).
        self._path_ids: Dict[Path, int] = {}
        self._simple_paths_in_reach: Dict[Tuple[NodeId, FaultSet], Dict[NodeId, Tuple[Path, ...]]] = {}
        #: per-path hot record ``path → [policy verdict, member mask, path
        #: id, relay targets]`` (Algorithm 4's per-message and per-neighbour
        #: policy tests).  Every field depends only on the path, the graph
        #: and the policy — all fixed per instance — so every process, round
        #: and (through the sweep worker cache) cell sharing this knowledge
        #: reuses the same records.  The relay-target slot is filled lazily
        #: by the path's terminal node.
        self.path_info: Dict[Path, List] = {}
        #: one memo cache per experiment run, shared across rounds and across
        #: every process — repeated reach / source-component queries hit the
        #: memo instead of rebuilding subgraphs.
        self._reach_cache = ReachSetCache(graph)
        self._source_cache = SourceComponentCache(graph)

    # ------------------------------------------------------------------
    # lazily computed, memoised queries
    # ------------------------------------------------------------------
    def required_paths(self, node: NodeId, fault_set: FaultSet) -> FrozenSet[Path]:
        """All flooding paths of ``G_{V \\ F}`` terminating at ``node``.

        This is the path set the fullness check of the Maximal-Consistency
        condition compares against (Definition 9).  Redundant paths under the
        faithful policy, simple paths under the ablation policy; the trivial
        path ``(node,)`` is always included (a node knows its own value).
        """
        key = (node, frozenset(fault_set))
        if key not in self._required_paths:
            subgraph = self.graph.exclude_nodes(key[1])
            if self.path_policy == "redundant":
                paths = enumerate_redundant_paths_to(subgraph, node)
            else:
                paths = enumerate_simple_paths_to(subgraph, node)
            self._required_paths[key] = frozenset(paths) | {(node,)}
        return self._required_paths[key]

    def path_id(self, path: Path, force: bool = False) -> int:
        """Stable small-integer id of ``path`` within this experiment.

        Interned on first sight; ids are only meaningful relative to this
        :class:`TopologyKnowledge` instance (all processes share one).  Past
        :data:`PATH_MEMO_LIMIT` new paths stop being interned and map to
        ``-1`` (never a required id) unless ``force`` is set — required
        paths must always intern so fullness stays exact.
        """
        ids = self._path_ids
        known = ids.get(path)
        if known is None:
            if not force and len(ids) >= PATH_MEMO_LIMIT:
                return -1
            known = len(ids)
            ids[path] = known
        return known

    def required_path_ids(self, node: NodeId, fault_set: FaultSet) -> FrozenSet[int]:
        """:meth:`required_paths` as a frozen set of interned path ids.

        The Maximal-Consistency fullness check (Definition 9) runs once per
        received message per thread; integer membership avoids re-hashing
        path tuples in that innermost loop.
        """
        key = (node, frozenset(fault_set))
        cached = self._required_path_ids.get(key)
        if cached is None:
            cached = frozenset(
                self.path_id(path, force=True) for path in self.required_paths(node, key[1])
            )
            self._required_path_ids[key] = cached
        return cached

    def required_index(self, node: NodeId) -> Dict[int, Tuple[FaultSet, ...]]:
        """Reverse fullness index: path id → the candidate fault sets of
        ``node`` whose required-path set contains it.

        The per-message fullness update of the Maximal-Consistency condition
        walks this list (typically shorter than the thread count) instead of
        testing the path against every thread's required set.
        """
        cached = self._required_index.get(node)
        if cached is None:
            mapping: Dict[int, List[FaultSet]] = {}
            for fault_set in self.fault_candidates[node]:
                for path_id in self.required_path_ids(node, fault_set):
                    entry = mapping.get(path_id)
                    if entry is None:
                        mapping[path_id] = [fault_set]
                    else:
                        entry.append(fault_set)
            cached = {path_id: tuple(entry) for path_id, entry in mapping.items()}
            self._required_index[node] = cached
        return cached

    def reach(self, node: NodeId, fault_set: FaultSet) -> FrozenSet[NodeId]:
        """``reach_node(F)`` (Definition 2), memoised on the canonical mask."""
        return self._reach_cache.get(node, fault_set)

    def reach_mask(self, node: NodeId, fault_set: Iterable[NodeId]) -> int:
        """``reach_node(F)`` as a bitmask of the shared engine (hot-path
        variant used by the Verify containment checks)."""
        excluded_mask = self.engine.mask_of(fault_set, ignore_missing=True)
        return self.engine.reach_mask(node, excluded_mask)

    def simple_paths_within_reach(
        self, node: NodeId, fault_set: FaultSet
    ) -> Dict[NodeId, Tuple[Path, ...]]:
        """For every ``c ∈ reach_node(F)``, the simple ``(c, node)``-paths fully
        inside ``reach_node(F)`` — the paths the FIFO-Receive-All condition
        (Algorithm 1 line 12) waits on."""
        key = (node, frozenset(fault_set))
        if key not in self._simple_paths_in_reach:
            reach = self.reach(node, fault_set)
            subgraph = self.graph.induced_subgraph(reach)
            per_origin: Dict[NodeId, List[Path]] = {c: [] for c in reach}
            for path in enumerate_simple_paths_to(subgraph, node):
                if is_fully_contained(path, reach):
                    per_origin.setdefault(path[0], []).append(path)
            self._simple_paths_in_reach[key] = {
                origin: tuple(sorted(paths)) for origin, paths in per_origin.items()
            }
        return self._simple_paths_in_reach[key]

    def source_component(self, f1: Iterable[NodeId], f2: Iterable[NodeId] = ()) -> FrozenSet[NodeId]:
        """``S_{F1, F2}`` (Definition 6), memoised on the union's mask."""
        return self._source_cache.get(f1, f2)

    # ------------------------------------------------------------------
    # cache accounting
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size statistics of the per-run memo caches.

        The ``shared_engine`` entry reports the per-*graph* engine memos,
        which every consumer of the same graph (other topology instances,
        condition checkers) contributes to — it is diagnostic context, not
        part of this run's accounting.
        """
        return {
            "reach": self._reach_cache.stats,
            "source_components": self._source_cache.stats,
            "shared_engine": self.engine.memo_sizes(),
        }

    def clear_caches(self) -> None:
        """Drop this run's reach / source-component memos.

        The path enumerations (``required_paths``, simple paths in reach) are
        kept: they are part of the precomputation contract, not a growing
        per-round cache.  The shared engine's memos are deliberately left
        alone — they belong to the graph, may be warm for other consumers,
        and are self-bounding (:attr:`BitsetIndex.MEMO_LIMIT`).
        """
        self._reach_cache.clear()
        self._source_cache.clear()

    # ------------------------------------------------------------------
    # cost accounting (benchmark M1)
    # ------------------------------------------------------------------
    def thread_count(self, node: NodeId) -> int:
        """Number of parallel threads node ``node`` runs (candidate fault sets)."""
        return len(self.fault_candidates[node])

    def total_required_paths(self, node: NodeId) -> int:
        """Total number of required flooding paths across all of a node's threads."""
        return sum(
            len(self.required_paths(node, fault_set))
            for fault_set in self.fault_candidates[node]
        )

    def precompute_all(self) -> Dict[str, int]:
        """Force every memoised structure and return aggregate size counters.

        Called by experiments that want the precomputation excluded from the
        timed section, and by the complexity benchmark that reports the
        counters themselves.
        """
        total_paths = 0
        total_threads = 0
        for node in self.nodes:
            total_threads += self.thread_count(node)
            for fault_set in self.fault_candidates[node]:
                total_paths += len(self.required_paths(node, fault_set))
                self.simple_paths_within_reach(node, fault_set)
        for f1 in self.fault_sets:
            for f2 in self.fault_sets:
                self.source_component(f1, f2)
        return {
            "nodes": len(self.nodes),
            "threads": total_threads,
            "required_paths": total_paths,
            "source_components": len(self._source_cache),
        }

    def __repr__(self) -> str:
        return (
            f"<TopologyKnowledge n={len(self.nodes)} f={self.f} "
            f"policy={self.path_policy!r} fault_sets={len(self.fault_sets)}>"
        )
