"""Filter-and-Average — Algorithm 3 of the paper.

Once a node's Byzantine-Witness round fires (Verify succeeded in one parallel
thread), the node turns its received message history into the next state
value:

1. sort all received ``(value, path)`` messages by value (line 1);
2. remove the longest *prefix* whose propagation paths admit an f-cover
   (values that a single fault set of size ``≤ f`` could have fabricated —
   line 2/4);
3. symmetrically remove the longest such *suffix* (line 3/4);
4. output the midpoint ``(max + min) / 2`` of what remains (line 5).

Interpretation note (see DESIGN.md): covers never contain the evaluating
node — every path terminates at it, so a literal cover could always be
``{v}`` and the whole vector would be trimmed, contradicting Theorem 11.
Consequently the node's own value (path ``⟨v⟩``) always survives trimming and
the trimmed vector is never empty for a correctly configured run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.algorithms.messagesets import MessageSet
from repro.exceptions import ProtocolError
from repro.graphs.paths import has_f_cover

NodeId = Hashable
Path = Tuple[NodeId, ...]
Entry = Tuple[float, Path]


@dataclass
class FilterResult:
    """Outcome of one Filter-and-Average invocation (kept for metrics/tests)."""

    new_value: float
    sorted_entries: List[Entry] = field(default_factory=list)
    trimmed_low: int = 0
    trimmed_high: int = 0

    @property
    def kept_entries(self) -> List[Entry]:
        """The entries that survived trimming."""
        end = len(self.sorted_entries) - self.trimmed_high
        return self.sorted_entries[self.trimmed_low:end]

    @property
    def kept_values(self) -> List[float]:
        """Values of the surviving entries."""
        return [value for value, _ in self.kept_entries]


def _longest_coverable_prefix(
    entries: List[Entry],
    f: int,
    evaluating_node: NodeId,
    masks: Optional[List[int]] = None,
    allowed_mask: int = 0,
) -> int:
    """Length of the longest prefix whose path set admits an f-cover.

    Monotone in the prefix length (a cover of a longer prefix covers every
    shorter one), so a linear scan that stops at the first uncoverable prefix
    is exact.  For ``f ≤ 1`` an incremental running-intersection computation
    is used (a single node covers a path set iff it lies on every path) —
    on member masks when the caller provides them (``masks[i]`` matching
    ``entries[i]``, ``allowed_mask`` clearing the evaluating node's bit);
    higher ``f`` falls back to the generic hitting-set search per prefix.
    """
    if f <= 0 or not entries:
        return 0
    if f == 1:
        if masks is not None:
            common = allowed_mask
            length = 0
            for index, mask in enumerate(masks):
                common &= mask
                if not common:
                    break
                length = index + 1
            return length
        common = None
        length = 0
        for index, (_, path) in enumerate(entries):
            nodes = set(path) - {evaluating_node}
            common = nodes if common is None else (common & nodes)
            if not common:
                break
            length = index + 1
        return length
    length = 0
    for end in range(1, len(entries) + 1):
        paths = [path for _, path in entries[:end]]
        if has_f_cover(paths, f, forbidden={evaluating_node}):
            length = end
        else:
            break
    return length


def filter_and_average(
    message_set: MessageSet, f: int, evaluating_node: NodeId
) -> FilterResult:
    """Run Algorithm 3 on a round's message history.

    Parameters
    ----------
    message_set:
        ``M_v`` at the moment Filter-and-Average is called.
    f:
        Fault bound used for the trimming covers.
    evaluating_node:
        The node running the computation (never part of a cover; its own
        value is therefore never trimmed).

    Raises
    ------
    ProtocolError
        If the trimmed vector ends up empty — impossible when the node's own
        value is present (as the BW algorithm guarantees), so an empty result
        indicates a mis-configured direct invocation.
    """
    entries = message_set.sorted_entries()
    if not entries:
        raise ProtocolError("Filter-and-Average called on an empty message set")

    masks: Optional[List[int]] = None
    allowed_mask = 0
    if f == 1:
        mask_on_path = message_set.mask_on_path
        masks = [mask_on_path(path) for _, path in entries]
        allowed_mask = ~(1 << message_set.codec.bit(evaluating_node))
    trimmed_low = _longest_coverable_prefix(
        entries, f, evaluating_node, masks=masks, allowed_mask=allowed_mask
    )
    trimmed_high = _longest_coverable_prefix(
        list(reversed(entries)),
        f,
        evaluating_node,
        masks=None if masks is None else masks[::-1],
        allowed_mask=allowed_mask,
    )

    kept = entries[trimmed_low: len(entries) - trimmed_high]
    if not kept:
        raise ProtocolError(
            "Filter-and-Average trimmed every value; the evaluating node's own "
            "value must be part of the message set"
        )
    values = [value for value, _ in kept]
    new_value = (max(values) + min(values)) / 2.0
    return FilterResult(
        new_value=new_value,
        sorted_entries=entries,
        trimmed_low=trimmed_low,
        trimmed_high=trimmed_high,
    )
