"""Message sets and their operations (Definitions 7–9).

A *message set* ``M`` is a collection of ``(value, propagation path)`` pairs.
The Byzantine-Witness algorithm manipulates message sets through three
operations, implemented here exactly as defined by the paper:

* **exclusion** ``M|_A`` — keep only messages whose path avoids ``A``
  (Definition 7);
* **consistency** — all paths starting at the same initial node report the
  same value (Definition 8), which makes ``value_v(M)`` well defined;
* **fullness** for ``(A, v)`` — every redundant path of ``G_{V\\A}``
  terminating at ``v`` appears in ``M`` (Definition 9).  Fullness is checked
  against a precomputed required-path set (see
  :class:`repro.algorithms.topology.TopologyKnowledge`).

The class stores at most one message per propagation path (the protocol only
accepts the first message received on each path, per Algorithm 4), and keeps
the insertion cheap because the BW algorithm adds messages one at a time from
inside an event handler.

Representation
--------------
Next to the tuple-keyed store every entry carries its *member mask* — the OR
of the path hops' bits under a :class:`~repro.graphs.bitset.PathCodec` — so
Definition 7 exclusion is one ``member_mask & excluded_mask`` test per entry
instead of a per-path ``set.intersection``.  The codec is shared with every
set derived through :meth:`exclude` (and can be shared process-wide by
passing one in), which keeps masks directly comparable across restrictions.
The tuple-level API (``entries``, ``paths``, ``value_on_path``, …) is an
unchanged thin view over the same store.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graphs.bitset import PathCodec

NodeId = Hashable
Path = Tuple[NodeId, ...]
Entry = Tuple[float, Path]


class MessageSet:
    """A set of ``(value, path)`` messages keyed by propagation path.

    Parameters
    ----------
    entries:
        Optional initial ``(value, path)`` pairs.
    codec:
        Optional shared :class:`~repro.graphs.bitset.PathCodec`.  When
        omitted a private codec is created that interns nodes on first
        sight; passing the codec of a shared bitmask engine makes the
        member masks interchangeable with engine masks (the BW hot path
        relies on this).
    """

    __slots__ = ("_by_path", "_mask_by_path", "_by_origin", "_origin_value_masks", "_codec")

    def __init__(
        self,
        entries: Optional[Iterable[Entry]] = None,
        codec: Optional[PathCodec] = None,
    ) -> None:
        self._by_path: Dict[Path, float] = {}
        #: path → member mask under ``self._codec`` (Definition 7 substrate).
        self._mask_by_path: Dict[Path, int] = {}
        # Per-origin index speeding up Algorithm 2's per-source-node queries.
        self._by_origin: Dict[NodeId, List[Path]] = {}
        #: origin → value → member masks; Algorithm 2's per-(source, value)
        #: confirming-path query without scanning the origin's path list.
        self._origin_value_masks: Dict[NodeId, Dict[float, List[int]]] = {}
        self._codec = codec if codec is not None else PathCodec()
        if entries is not None:
            for value, path in entries:
                self.add(value, path)

    @property
    def codec(self) -> PathCodec:
        """The path codec encoding this set's member masks."""
        return self._codec

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, value: float, path: Path, mask: Optional[int] = None) -> bool:
        """Add a message; returns ``False`` when the path was already present.

        Only the first message per path is kept — the protocol ignores
        duplicates, so a Byzantine node cannot overwrite an already-received
        value by re-sending on the same path.  ``mask`` lets a caller that
        already encoded the path (the BW hot path) skip re-encoding; it must
        equal ``codec.member_mask(path)``.
        """
        path = tuple(path)
        if path in self._by_path:
            return False
        if mask is None:
            mask = self._codec.member_mask(path)
        self._insert(path, float(value), mask)
        return True

    def add_encoded(self, path: Path, value: float, mask: int) -> bool:
        """:meth:`add` for an already-encoded path (hot-path variant).

        ``path`` must be a tuple and ``mask`` its member mask under this
        set's codec; skips re-normalization and re-encoding.  The insertion
        is inlined — this runs once per delivered protocol message.
        """
        by_path = self._by_path
        if path in by_path:
            return False
        value = float(value)
        origin = path[0]
        by_path[path] = value
        self._mask_by_path[path] = mask
        origin_paths = self._by_origin.get(origin)
        if origin_paths is None:
            self._by_origin[origin] = [path]
        else:
            origin_paths.append(path)
        by_value = self._origin_value_masks.get(origin)
        if by_value is None:
            self._origin_value_masks[origin] = {value: [mask]}
        else:
            masks = by_value.get(value)
            if masks is None:
                by_value[value] = [mask]
            else:
                masks.append(mask)
        return True

    def value_masks_by_origin(self) -> Dict[NodeId, Dict[float, List[int]]]:
        """The internal ``origin → value → member masks`` index (read-only).

        The BW flood path derives consistent value maps of Definition 7
        restrictions directly from this index; callers must not mutate it.
        """
        return self._origin_value_masks

    def _insert(self, path: Path, value: float, mask: int) -> None:
        """Raw insertion of an already-encoded entry (no duplicate check)."""
        origin = path[0]
        self._by_path[path] = value
        self._mask_by_path[path] = mask
        origin_paths = self._by_origin.get(origin)
        if origin_paths is None:
            self._by_origin[origin] = [path]
        else:
            origin_paths.append(path)
        by_value = self._origin_value_masks.get(origin)
        if by_value is None:
            self._origin_value_masks[origin] = {value: [mask]}
        else:
            masks = by_value.get(value)
            if masks is None:
                by_value[value] = [mask]
            else:
                masks.append(mask)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_path)

    def __iter__(self) -> Iterator[Entry]:
        for path, value in self._by_path.items():
            yield value, path

    def __contains__(self, path: Path) -> bool:
        return tuple(path) in self._by_path

    def entries(self) -> List[Entry]:
        """All ``(value, path)`` pairs."""
        return [(value, path) for path, value in self._by_path.items()]

    def paths(self) -> Set[Path]:
        """``P(M)`` — the propagation paths of the set."""
        return set(self._by_path.keys())

    def value_on_path(self, path: Path) -> Optional[float]:
        """The value received on a specific path (or ``None``)."""
        return self._by_path.get(tuple(path))

    def mask_on_path(self, path: Path) -> Optional[int]:
        """The member mask stored for ``path`` (or ``None`` when absent)."""
        return self._mask_by_path.get(tuple(path))

    def initial_nodes(self) -> Set[NodeId]:
        """All nodes appearing as ``init(p)`` for some message."""
        return set(self._by_origin)

    # ------------------------------------------------------------------
    # Definition 7: exclusion
    # ------------------------------------------------------------------
    def exclude(self, excluded: Iterable[NodeId]) -> "MessageSet":
        """``M|_A`` — messages whose propagation path avoids ``A``.

        One mask test per entry: a node the codec has never seen cannot lie
        on any stored path, so the exclusion mask only needs known bits.
        """
        excluded_mask = self._codec.mask_of(excluded, only_known=True)
        result = MessageSet(codec=self._codec)
        by_path = self._by_path
        for path, mask in self._mask_by_path.items():
            if mask & excluded_mask:
                continue
            result._insert(path, by_path[path], mask)
        return result

    # ------------------------------------------------------------------
    # Definition 8: consistency
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """``True`` when all paths sharing an initial node report one value."""
        by_path = self._by_path
        for paths in self._by_origin.values():
            value = by_path[paths[0]]
            for path in paths:
                if by_path[path] != value:
                    return False
        return True

    def value_of(self, origin: NodeId) -> Optional[float]:
        """``value_origin(M)`` — the unique value reported for ``origin``.

        Returns ``None`` when no message from ``origin`` is present.  The set
        must be consistent for the notion to be meaningful; when it is not,
        the value of the first stored path is returned (callers check
        :meth:`is_consistent` first, as the algorithm does).  O(1) via the
        per-origin index.
        """
        paths = self._by_origin.get(origin)
        if not paths:
            return None
        return self._by_path[paths[0]]

    def value_map(self) -> Dict[NodeId, float]:
        """``{origin: value_origin(M)}`` for every initial node present."""
        by_path = self._by_path
        return {origin: by_path[paths[0]] for origin, paths in self._by_origin.items()}

    # ------------------------------------------------------------------
    # Definition 9: fullness
    # ------------------------------------------------------------------
    def is_full_for(self, required_paths: Iterable[Path]) -> bool:
        """``True`` when every required path is present in the set.

        ``required_paths`` is the precomputed set of (redundant or simple,
        depending on the flooding policy) paths of ``G_{V\\A}`` terminating at
        the evaluating node.
        """
        return all(tuple(path) in self._by_path for path in required_paths)

    def missing_paths(self, required_paths: Iterable[Path]) -> List[Path]:
        """The required paths not yet received (diagnostics / tests)."""
        return [tuple(path) for path in required_paths if tuple(path) not in self._by_path]

    # ------------------------------------------------------------------
    # queries used by Completeness and Filter-and-Average
    # ------------------------------------------------------------------
    def paths_from_with_value(self, origin: NodeId, value: float) -> List[Path]:
        """Paths of messages initiating at ``origin`` that carry exactly ``value``.

        This is the set ``P(M')`` of Algorithm 2 line 4.
        """
        return [
            path
            for path in self._by_origin.get(origin, ())
            if self._by_path[path] == value
        ]

    def masks_from_with_value(self, origin: NodeId, value: float) -> List[int]:
        """Member masks of :meth:`paths_from_with_value`'s paths.

        The Completeness condition (Algorithm 2) runs its f-cover search on
        these masks instead of the path tuples — indexed by ``(origin,
        value)``, so the query is two dict lookups instead of a scan of the
        origin's paths.  Callers must not mutate the returned list.
        """
        by_value = self._origin_value_masks.get(origin)
        if by_value is None:
            return []
        return by_value.get(value, [])

    def sorted_entries(self) -> List[Entry]:
        """Messages sorted by value (ties broken by path) — Algorithm 3 line 1.

        The default tuple ordering on ``(value, path)`` is exactly the
        ``(value, path)`` key; sorting without a key function keeps the
        comparison entirely in C.
        """
        return sorted((value, path) for path, value in self._by_path.items())

    def values(self) -> List[float]:
        """All carried values (with multiplicity, one per path)."""
        return list(self._by_path.values())

    def __repr__(self) -> str:
        return f"<MessageSet paths={len(self._by_path)} origins={len(self._by_origin)}>"
