"""Message sets and their operations (Definitions 7–9).

A *message set* ``M`` is a collection of ``(value, propagation path)`` pairs.
The Byzantine-Witness algorithm manipulates message sets through three
operations, implemented here exactly as defined by the paper:

* **exclusion** ``M|_A`` — keep only messages whose path avoids ``A``
  (Definition 7);
* **consistency** — all paths starting at the same initial node report the
  same value (Definition 8), which makes ``value_v(M)`` well defined;
* **fullness** for ``(A, v)`` — every redundant path of ``G_{V\\A}``
  terminating at ``v`` appears in ``M`` (Definition 9).  Fullness is checked
  against a precomputed required-path set (see
  :class:`repro.algorithms.topology.TopologyKnowledge`).

The class stores at most one message per propagation path (the protocol only
accepts the first message received on each path, per Algorithm 4), and keeps
the insertion cheap because the BW algorithm adds messages one at a time from
inside an event handler.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

NodeId = Hashable
Path = Tuple[NodeId, ...]
Entry = Tuple[float, Path]


class MessageSet:
    """A set of ``(value, path)`` messages keyed by propagation path."""

    def __init__(self, entries: Optional[Iterable[Entry]] = None) -> None:
        self._by_path: Dict[Path, float] = {}
        # Per-origin index speeding up Algorithm 2's per-source-node queries.
        self._by_origin: Dict[NodeId, List[Path]] = {}
        if entries is not None:
            for value, path in entries:
                self.add(value, path)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, value: float, path: Path) -> bool:
        """Add a message; returns ``False`` when the path was already present.

        Only the first message per path is kept — the protocol ignores
        duplicates, so a Byzantine node cannot overwrite an already-received
        value by re-sending on the same path.
        """
        path = tuple(path)
        if path in self._by_path:
            return False
        self._by_path[path] = float(value)
        self._by_origin.setdefault(path[0], []).append(path)
        return True

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_path)

    def __iter__(self) -> Iterator[Entry]:
        for path, value in self._by_path.items():
            yield value, path

    def __contains__(self, path: Path) -> bool:
        return tuple(path) in self._by_path

    def entries(self) -> List[Entry]:
        """All ``(value, path)`` pairs."""
        return [(value, path) for path, value in self._by_path.items()]

    def paths(self) -> Set[Path]:
        """``P(M)`` — the propagation paths of the set."""
        return set(self._by_path.keys())

    def value_on_path(self, path: Path) -> Optional[float]:
        """The value received on a specific path (or ``None``)."""
        return self._by_path.get(tuple(path))

    def initial_nodes(self) -> Set[NodeId]:
        """All nodes appearing as ``init(p)`` for some message."""
        return {path[0] for path in self._by_path}

    # ------------------------------------------------------------------
    # Definition 7: exclusion
    # ------------------------------------------------------------------
    def exclude(self, excluded: Iterable[NodeId]) -> "MessageSet":
        """``M|_A`` — messages whose propagation path avoids ``A``."""
        excluded_set = set(excluded)
        result = MessageSet()
        for path, value in self._by_path.items():
            if not excluded_set.intersection(path):
                result.add(value, path)
        return result

    # ------------------------------------------------------------------
    # Definition 8: consistency
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """``True`` when all paths sharing an initial node report one value."""
        seen: Dict[NodeId, float] = {}
        for path, value in self._by_path.items():
            origin = path[0]
            if origin in seen:
                if seen[origin] != value:
                    return False
            else:
                seen[origin] = value
        return True

    def value_of(self, origin: NodeId) -> Optional[float]:
        """``value_origin(M)`` — the unique value reported for ``origin``.

        Returns ``None`` when no message from ``origin`` is present.  The set
        must be consistent for the notion to be meaningful; when it is not,
        the value of the first stored path is returned (callers check
        :meth:`is_consistent` first, as the algorithm does).
        """
        for path, value in self._by_path.items():
            if path[0] == origin:
                return value
        return None

    def value_map(self) -> Dict[NodeId, float]:
        """``{origin: value_origin(M)}`` for every initial node present."""
        result: Dict[NodeId, float] = {}
        for path, value in self._by_path.items():
            result.setdefault(path[0], value)
        return result

    # ------------------------------------------------------------------
    # Definition 9: fullness
    # ------------------------------------------------------------------
    def is_full_for(self, required_paths: Iterable[Path]) -> bool:
        """``True`` when every required path is present in the set.

        ``required_paths`` is the precomputed set of (redundant or simple,
        depending on the flooding policy) paths of ``G_{V\\A}`` terminating at
        the evaluating node.
        """
        return all(tuple(path) in self._by_path for path in required_paths)

    def missing_paths(self, required_paths: Iterable[Path]) -> List[Path]:
        """The required paths not yet received (diagnostics / tests)."""
        return [tuple(path) for path in required_paths if tuple(path) not in self._by_path]

    # ------------------------------------------------------------------
    # queries used by Completeness and Filter-and-Average
    # ------------------------------------------------------------------
    def paths_from_with_value(self, origin: NodeId, value: float) -> List[Path]:
        """Paths of messages initiating at ``origin`` that carry exactly ``value``.

        This is the set ``P(M')`` of Algorithm 2 line 4.
        """
        return [
            path
            for path in self._by_origin.get(origin, ())
            if self._by_path[path] == value
        ]

    def sorted_entries(self) -> List[Entry]:
        """Messages sorted by value (ties broken by path) — Algorithm 3 line 1."""
        return sorted(
            ((value, path) for path, value in self._by_path.items()),
            key=lambda entry: (entry[0], entry[1]),
        )

    def values(self) -> List[float]:
        """All carried values (with multiplicity, one per path)."""
        return list(self._by_path.values())

    def __repr__(self) -> str:
        return f"<MessageSet paths={len(self._by_path)} origins={len(self.initial_nodes())}>"
